"""SOAP envelope codec and RPC over PadicoTM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime
from repro.soap import (
    SoapClient,
    SoapError,
    SoapFault,
    SoapServer,
    decode_envelope,
    encode_envelope,
)


@pytest.fixture()
def runtime():
    topo = Topology()
    build_cluster(topo, "a", 2)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------

def test_envelope_roundtrip_scalars():
    data = encode_envelope("op", {"i": 7, "f": 2.5, "s": "hi",
                                  "b": True, "n": None})
    op, payload = decode_envelope(data)
    assert op == "op"
    assert payload == {"i": 7, "f": 2.5, "s": "hi", "b": True, "n": None}


def test_envelope_roundtrip_containers():
    data = encode_envelope("op", {
        "lst": [1, "two", 3.0],
        "struct": {"a": 1, "b": [True, None]},
    })
    _op, payload = decode_envelope(data)
    assert payload["lst"] == [1, "two", 3.0]
    assert payload["struct"] == {"a": 1, "b": [True, None]}


def test_envelope_roundtrip_array():
    arr = np.linspace(0, 1, 17)
    data = encode_envelope("op", {"arr": arr})
    _op, payload = decode_envelope(data)
    assert np.allclose(payload["arr"], arr)


def test_text_encoding_inflates_arrays():
    """The reason Web Services lose the bandwidth race (paper §5)."""
    arr = np.random.default_rng(0).random(1000)
    data = encode_envelope("op", {"arr": arr})
    assert len(data) > 2 * arr.nbytes


def test_fault_envelope_raises():
    data = encode_envelope("op", {}, fault=("soap:Server", "boom"))
    with pytest.raises(SoapFault) as ei:
        decode_envelope(data)
    assert ei.value.faultstring == "boom"


def test_malformed_envelope_rejected():
    with pytest.raises(SoapError):
        decode_envelope(b"<notsoap/>")
    with pytest.raises(SoapError):
        decode_envelope(b"garbage<")


def test_unencodable_value_rejected():
    with pytest.raises(SoapError):
        encode_envelope("op", {"x": object()})
    with pytest.raises(SoapError):
        encode_envelope("op", {"d": {1: "non-string key"}})


_values = st.recursive(
    st.one_of(st.integers(-2**31, 2**31 - 1), st.booleans(), st.none(),
              st.floats(allow_nan=False, allow_infinity=False),
              st.text(alphabet=st.characters(
                  blacklist_categories=("Cs", "Cc")), max_size=20)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(alphabet="abcdef", min_size=1, max_size=6),
                        children, max_size=4)),
    max_leaves=12)


@settings(max_examples=150, deadline=None)
@given(st.dictionaries(st.text(alphabet="abcxyz", min_size=1, max_size=8),
                       _values, max_size=5))
def test_envelope_roundtrip_property(payload):
    op, back = decode_envelope(encode_envelope("op", payload))
    assert back == payload


# ---------------------------------------------------------------------------
# RPC
# ---------------------------------------------------------------------------

def test_soap_rpc_roundtrip(runtime):
    server_p = runtime.create_process("a0", "ws")
    client_p = runtime.create_process("a1", "cli")
    server = SoapServer(server_p)
    server.register("add", lambda a, b: {"sum": a + b})
    server.register("echo", lambda **kw: kw)
    out = {}

    def cli(proc):
        client = SoapClient(client_p, server.url)
        out["sum"] = client.call(proc, "add", a=20, b=22)["sum"]
        out["echo"] = client.call(proc, "echo", msg="hello", n=3)
        client.close()

    client_p.spawn(cli)
    runtime.run()
    assert out["sum"] == 42
    assert out["echo"] == {"msg": "hello", "n": 3}


def test_soap_unknown_operation_faults(runtime):
    server_p = runtime.create_process("a0", "ws")
    client_p = runtime.create_process("a1", "cli")
    server = SoapServer(server_p)
    out = {}

    def cli(proc):
        client = SoapClient(client_p, server.url)
        try:
            client.call(proc, "nothing")
        except SoapFault as f:
            out["code"] = f.faultcode

    client_p.spawn(cli)
    runtime.run()
    assert out["code"] == "soap:Client"


def test_soap_handler_exception_becomes_server_fault(runtime):
    server_p = runtime.create_process("a0", "ws")
    client_p = runtime.create_process("a1", "cli")
    server = SoapServer(server_p)
    server.register("bad", lambda: 1 / 0)
    out = {}

    def cli(proc):
        client = SoapClient(client_p, server.url)
        try:
            client.call(proc, "bad")
        except SoapFault as f:
            out["fault"] = (f.faultcode, "ZeroDivisionError" in f.faultstring)

    client_p.spawn(cli)
    runtime.run()
    assert out["fault"] == ("soap:Server", True)


def test_soap_much_slower_than_corba_for_bulk(runtime):
    """§5: Web Services performance is poor — measurably."""
    server_p = runtime.create_process("a0", "ws")
    client_p = runtime.create_process("a1", "cli")
    server = SoapServer(server_p)
    server.register("sum", lambda arr: {"s": float(np.sum(arr))})
    out = {}
    arr = np.random.default_rng(1).random(20_000)

    def cli(proc):
        client = SoapClient(client_p, server.url)
        t0 = runtime.kernel.now
        res = client.call(proc, "sum", arr=arr)
        out["elapsed"] = runtime.kernel.now - t0
        out["sum"] = res["s"]

    client_p.spawn(cli)
    runtime.run()
    assert out["sum"] == pytest.approx(float(arr.sum()))
    # effective goodput well under 3 MB/s vs 240 for omniORB
    assert arr.nbytes / out["elapsed"] < 3e6


def test_soap_module_loaded(runtime):
    server_p = runtime.create_process("a0", "ws")
    SoapServer(server_p)
    assert server_p.modules.is_loaded("soap/gsoap-2.x")


def test_bad_url_rejected(runtime):
    p = runtime.create_process("a0", "cli")
    with pytest.raises(SoapError):
        SoapClient(p, "http://wrong")
