"""Command-line tools (idlc, gridccm_gen)."""

import pytest

from repro.tools import gridccm_gen, idlc

IDL = """
module T {
    typedef sequence<double> Vec;
    const long MAX = 16;
    exception Bad { string why; };
    interface Svc {
        double f(in Vec v) raises (Bad);
        readonly attribute long count;
    };
    component Comp { provides Svc port0; };
    home CompHome manages Comp {};
};
"""

XML = """
<parallelism component="T::Comp">
  <port name="port0">
    <operation name="f">
      <argument name="v" distribution="block"/>
      <result policy="sum"/>
    </operation>
  </port>
</parallelism>
"""


def test_idlc_summary(tmp_path, capsys):
    f = tmp_path / "t.idl"
    f.write_text(IDL)
    assert idlc.main([str(f)]) == 0
    out = capsys.readouterr().out
    assert "T::Svc" in out
    assert "double f(in sequence<double> v) raises(T::Bad)" in out
    assert "readonly attribute long count" in out
    assert "provides T::Svc port0" in out
    assert "T::CompHome manages T::Comp" in out
    assert "T::MAX = 16" in out


def test_idlc_repo_ids(tmp_path, capsys):
    f = tmp_path / "t.idl"
    f.write_text(IDL)
    assert idlc.main([str(f), "--repo-ids"]) == 0
    assert "[IDL:T/Svc:1.0]" in capsys.readouterr().out


def test_idlc_multiple_files_and_errors(tmp_path, capsys):
    a = tmp_path / "a.idl"
    a.write_text("struct A { long x; };")
    b = tmp_path / "b.idl"
    b.write_text("struct B { long y; };")
    assert idlc.main([str(a), str(b)]) == 0
    out = capsys.readouterr().out
    assert "A = struct A" in out and "B = struct B" in out

    bad = tmp_path / "bad.idl"
    bad.write_text("interface { broken")
    assert idlc.main([str(bad)]) == 1
    assert "bad.idl" in capsys.readouterr().err

    assert idlc.main([str(tmp_path / "missing.idl")]) == 2


def test_gridccm_gen_stdout(tmp_path, capsys):
    fi = tmp_path / "t.idl"
    fi.write_text(IDL)
    fx = tmp_path / "p.xml"
    fx.write_text(XML)
    assert gridccm_gen.main([str(fi), str(fx)]) == 0
    out = capsys.readouterr().out
    assert "interface GridCCM_Svc" in out
    assert "gridccm_request" in out
    assert "sequence<double> v_chunk" in out
    assert "GridCCMProxy_Svc : T::Svc" in out


def test_gridccm_gen_output_file(tmp_path):
    fi = tmp_path / "t.idl"
    fi.write_text(IDL)
    fx = tmp_path / "p.xml"
    fx.write_text(XML)
    dest = tmp_path / "gen.idl"
    assert gridccm_gen.main([str(fi), str(fx), "-o", str(dest)]) == 0
    assert "GridCCM_Svc" in dest.read_text()


def test_gridccm_gen_bad_inputs(tmp_path, capsys):
    fi = tmp_path / "t.idl"
    fi.write_text(IDL)
    fx = tmp_path / "p.xml"
    fx.write_text(XML.replace("port0", "ghostport"))
    assert gridccm_gen.main([str(fi), str(fx)]) == 1
    assert "no provides port" in capsys.readouterr().err
    assert gridccm_gen.main([str(fi), str(tmp_path / "nope.xml")]) == 2
