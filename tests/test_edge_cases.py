"""Assorted edge cases across subsystems."""

import numpy as np
import pytest

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import Circuit, PadicoRuntime, VLink
from repro.sim import SimKernel


# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------

def test_kernel_rejects_reentrant_run():
    with SimKernel() as k:
        def proc(p):
            with pytest.raises(RuntimeError):
                k.run()  # already running

        k.spawn(proc)
        k.run()


def test_kernel_schedule_negative_delay_rejected():
    with SimKernel() as k:
        with pytest.raises(ValueError):
            k.schedule(-1.0, lambda: None)


def test_spawn_during_run():
    with SimKernel() as k:
        log = []

        def child(p):
            log.append(("child", k.now))

        def parent(p):
            p.sleep(1.0)
            k.spawn(child)
            p.sleep(1.0)

        k.spawn(parent)
        k.run()
        assert log == [("child", 1.0)]


def test_run_until_before_first_event():
    with SimKernel() as k:
        fired = []
        k.schedule(5.0, fired.append, 1)
        k.run(until=1.0)
        assert k.now == 1.0 and fired == []
        k.run()  # resume
        assert fired == [1] and k.now == 5.0


# ---------------------------------------------------------------------------
# padicotm
# ---------------------------------------------------------------------------

@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 4)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def test_circuit_deliver_nowait(rt):
    procs = [rt.create_process(f"a{i}", f"p{i}") for i in range(2)]
    circuit = Circuit.establish(rt, "c", procs)
    got = []

    def receiver(proc):
        got.append(circuit.recv(proc, 1))

    procs[1].spawn(receiver)
    # kernel-context delivery (e.g. from a timer callback)
    rt.kernel.schedule(0.5, circuit.deliver_nowait, 1, 0, "timer-msg", 9)
    rt.run()
    assert got == [(0, "timer-msg", 9)]


def test_vlink_listener_poll_and_close(rt):
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    listener = VLink.listen(server, "p")
    states = {}

    def cli(proc):
        VLink.connect(proc, client, "server", "p")
        states["polled"] = listener.poll()
        listener.close()
        from repro.padicotm.abstraction.vlink import ConnectionRefusedError
        try:
            VLink.connect(proc, client, "server", "p")
        except ConnectionRefusedError:
            states["refused_after_close"] = True

    client.spawn(cli)
    rt.run()
    assert states == {"polled": True, "refused_after_close": True}


def test_vlink_endpoint_poll(rt):
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    listener = VLink.listen(server, "p")
    out = {}

    def srv(proc):
        ep = listener.accept(proc)
        proc.sleep(0.01)  # let the message land
        out["polled"] = ep.poll()
        out["msg"] = ep.recv(proc)
        out["polled_after"] = ep.poll()

    def cli(proc):
        ep = VLink.connect(proc, client, "server", "p")
        ep.send(proc, "x", 1)

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert out["polled"] is True
    assert out["msg"] == ("x", 1)
    assert out["polled_after"] is False


def test_runtime_process_lookup_errors(rt):
    with pytest.raises(ValueError):
        rt.process("ghost")


# ---------------------------------------------------------------------------
# orb odds and ends
# ---------------------------------------------------------------------------

def test_orb_restart_after_shutdown(rt):
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    idl_src = "interface E { long f(); };"
    s_orb = Orb(server, OMNIORB4, compile_idl(idl_src))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(idl_src))

    class E(s_orb.servant_base("E")):
        def f(self):
            return 7

    url = s_orb.object_to_string(s_orb.poa.activate_object(E()))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        out["first"] = stub.f()
        s_orb.shutdown()
        s_orb.start()  # rebind the listener
        proc.sleep(0.001)
        out["second"] = stub.f()  # client reconnects transparently? no —
        # its cached connection died; invoke() recreates it

    client.spawn(main)
    rt.run()
    assert out == {"first": 7, "second": 7}


def test_stub_repr_and_equality(rt):
    p = rt.create_process("a0", "p")
    orb = Orb(p, OMNIORB4, compile_idl("interface E { void f(); };"))
    orb.start()

    class E(orb.servant_base("E")):
        def f(self):
            pass

    ref = orb.poa.activate_object(E())
    again = orb.string_to_object(orb.object_to_string(ref))
    assert ref == again
    assert hash(ref) == hash(again)
    assert "corbaloc:padico:" in repr(ref)


def test_oneway_through_collocation(rt):
    p = rt.create_process("a0", "p")
    orb = Orb(p, OMNIORB4, compile_idl(
        "interface E { oneway void fire(in string m); };"))
    orb.start()
    seen = []

    class E(orb.servant_base("E")):
        def fire(self, m):
            seen.append(m)

    ref = orb.poa.activate_object(E())

    def main(proc):
        ref.fire("local oneway")

    p.spawn(main)
    rt.run()
    assert seen == ["local oneway"]
