"""The seeded-mutant harness and the committed golden corpora."""

from __future__ import annotations

import io
from pathlib import Path

from repro.analysis import mutants

CORPUS = Path(__file__).parent / "corpus"


def test_committed_corpora_score_perfectly():
    # the acceptance bar: 100% of seeded defects caught, zero false
    # positives, for every family
    failures = []
    for family in mutants.FAMILIES:
        failures.extend(mutants.run_family(family, CORPUS,
                                           out=io.StringIO()))
    assert failures == []


def test_main_is_a_usable_gate():
    assert mutants.main([str(CORPUS)]) == 0


def test_every_bad_file_is_annotated():
    for family in mutants.FAMILIES:
        for path in sorted((CORPUS / family / "bad").glob("*.py")):
            if path.name == "helper.py":   # support module, no defect
                continue
            assert mutants.expected_findings(path), \
                f"{family}/bad/{path.name} has no # expect: annotation"


def test_harness_reports_missed_defects(tmp_path):
    # a bad file whose expectation nothing matches must fail the gate
    bad = tmp_path / "bufsan" / "bad"
    good = tmp_path / "bufsan" / "good"
    bad.mkdir(parents=True)
    good.mkdir(parents=True)
    (bad / "nothing.py").write_text(
        "def f(x):\n"
        "    return x  # expect: buf-mutate-after-publish\n")
    failures = mutants.run_family("bufsan", tmp_path, out=io.StringIO())
    assert any("MISSED" in f for f in failures)


def test_harness_reports_false_positives(tmp_path):
    # a seeded defect placed in the good corpus must fail the gate
    bad = tmp_path / "bufsan" / "bad"
    good = tmp_path / "bufsan" / "good"
    bad.mkdir(parents=True)
    good.mkdir(parents=True)
    (bad / "seed.py").write_text(
        "def f(stream, b):\n"
        "    stream.write_bulk(b)\n"
        "    b[0] = 1  # expect: buf-mutate-after-publish\n")
    (good / "oops.py").write_text(
        "def f(stream, b):\n"
        "    stream.write_bulk(b)\n"
        "    b[0] = 1\n")
    failures = mutants.run_family("bufsan", tmp_path, out=io.StringIO())
    assert any("FALSE POSITIVE" in f for f in failures)
