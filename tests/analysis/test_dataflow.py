"""SCC condensation and summary-fixpoint framework."""

from __future__ import annotations

import pytest

from repro.analysis.dataflow import (
    FixpointError,
    reach_chain,
    solve,
    strongly_connected,
)


def test_acyclic_graph_is_singletons_callees_first():
    adj = {"root": ["mid1", "mid2"], "mid1": ["leaf"],
           "mid2": ["leaf"], "leaf": []}
    sccs = strongly_connected(adj, adj)
    assert [s for s in sccs if len(s) > 1] == []
    order = {scc[0]: i for i, scc in enumerate(sccs)}
    # every callee is emitted before its caller
    assert order["leaf"] < order["mid1"] < order["root"]
    assert order["leaf"] < order["mid2"] < order["root"]


def test_cycle_is_one_component():
    adj = {"a": ["b"], "b": ["a"], "c": ["a"]}
    sccs = strongly_connected(adj, adj)
    assert ["a", "b"] in sccs
    order = {tuple(s): i for i, s in enumerate(sccs)}
    assert order[("a", "b")] < order[("c",)]


def _reach_solver(adj, seeds):
    """Reachable-seed-set client: the shape all shipped checkers use."""
    def initial(node):
        return frozenset(seeds.get(node, ()))

    def transfer(node, summaries):
        out = set(initial(node))
        for callee in adj.get(node, ()):
            out |= summaries.get(callee, frozenset())
        return frozenset(out)

    return solve(adj, adj, initial, transfer)


def test_fixpoint_terminates_on_self_recursion():
    adj = {"f": ["f", "g"], "g": []}
    summaries = _reach_solver(adj, {"g": {"sleep"}})
    assert summaries["f"] == frozenset({"sleep"})


def test_fixpoint_terminates_on_mutual_recursion():
    adj = {"ping": ["pong"], "pong": ["ping", "nap"], "nap": []}
    summaries = _reach_solver(adj, {"nap": {"sleep"}})
    # both cycle members converge to the union
    assert summaries["ping"] == frozenset({"sleep"})
    assert summaries["pong"] == frozenset({"sleep"})


def test_three_cycle_with_outside_caller():
    adj = {"a": ["b"], "b": ["c"], "c": ["a"], "drive": ["a"]}
    summaries = _reach_solver(adj, {"b": {"x"}, "c": {"y"}})
    assert summaries["drive"] == frozenset({"x", "y"})


def test_non_monotone_transfer_raises_loudly():
    adj = {"a": ["b"], "b": ["a"]}

    def initial(node):
        return 0

    def transfer(node, summaries):
        # oscillates 0 -> 1 -> 0: never converges
        return 1 - summaries[node]

    with pytest.raises(FixpointError):
        solve(adj, adj, initial, transfer)


def test_reach_chain_formatting_and_elision():
    assert reach_chain(("m.a", "m.B.b")) == "a() -> b()"
    long = tuple(f"m.f{i}" for i in range(8))
    rendered = reach_chain(long)
    assert rendered.endswith("...")
    assert rendered.count("->") == 5
