"""The shared primitive registry must match the real primitives.

Both race detectors — the dynamic vector-clock sanitizer and the
static ``sim-race`` analysis — are driven by the one table in
:mod:`repro.sim.primitives`.  A registry entry naming a method that
does not exist (or a module that moved) would silently blind both
tools, so this is pinned here.
"""

import importlib

from repro.sim.primitives import (
    PRIMITIVES,
    YIELD_METHOD_FALLBACK,
    lock_classes,
    yield_seed_quals,
)


def _real_class(name):
    info = PRIMITIVES[name]
    module = importlib.import_module(info["module"])
    return getattr(module, name)


def test_every_registered_class_exists():
    for name in PRIMITIVES:
        assert _real_class(name) is not None


def test_every_registered_method_exists_on_the_class():
    for name, info in PRIMITIVES.items():
        cls = _real_class(name)
        for table in ("yields", "releases", "acquires"):
            for method in info[table]:
                assert callable(getattr(cls, method)), (
                    f"{name}.{method} in {table!r} is not a method of "
                    f"the real class")


def test_lock_classes_carry_acquire_and_release():
    locks = lock_classes()
    assert "SimLock" in locks and "SimSemaphore" in locks
    for name in locks:
        cls = _real_class(name)
        assert callable(getattr(cls, "acquire"))
        assert callable(getattr(cls, "release"))


def test_yield_seeds_resolve_to_real_functions():
    seeds = yield_seed_quals()
    assert seeds  # never empty: the analysis would be blind
    for qual in seeds:
        module_name, cls_name, method = qual.rsplit(".", 2)
        module = importlib.import_module(module_name)
        cls = getattr(module, cls_name)
        assert callable(getattr(cls, method)), qual


def test_fallback_names_do_not_include_ambiguous_ones():
    # ``get``/``put``/``set``/``join`` collide with dict/list/str
    # methods; the untyped-receiver fallback must never treat them as
    # yield points or every container in the tree becomes a primitive
    assert not YIELD_METHOD_FALLBACK & {"get", "put", "set", "join"}
