"""Zero-copy buffer-escape analysis (``buf-*`` family)."""

from __future__ import annotations

BUF_RULES = {"buf-mutate-after-publish", "buf-escape-mutation"}


def test_mutation_after_publish_reports_both_sites(lint_project):
    found = lint_project({"m.py": """\
        def marshal(stream, payload):
            stream.write_bulk(payload)
            payload[0] = 0
    """}, rules=BUF_RULES)
    (f,) = found
    assert f.rule == "buf-mutate-after-publish"
    assert f.line == 3                      # the mutation site
    assert "line 2" in f.message            # ...naming the publish site
    assert "write_bulk" in f.message


def test_view_wrapper_does_not_hide_the_alias(lint_project):
    found = lint_project({"m.py": """\
        def marshal(stream, buf):
            view = memoryview(buf)
            stream.write_bulk(view)
            buf.extend(b"x")
    """}, rules=BUF_RULES)
    assert [f.line for f in found] == [4]


def test_blocking_send_roundtrip_is_clean(lint_project):
    # the netbench ping-pong: blocking Send returns only after the
    # matching delivery, so immediate reuse is the sanctioned pattern
    found = lint_project({"bench.py": """\
        def pingpong(comm, buf, peer, rounds):
            for _ in range(rounds):
                comm.Send(buf, dest=peer)
                comm.Recv(buf, source=peer)
            return buf
    """}, rules=BUF_RULES)
    assert found == []


def test_isend_window_flagged_until_wait(lint_project):
    found = lint_project({"m.py": """\
        def bad(comm, buf, peer):
            req = comm.Isend(buf, dest=peer)
            buf[0] = 1
            req.wait()

        def good(comm, buf, peer):
            req = comm.Isend(buf, dest=peer)
            req.wait()
            buf[0] = 1
    """}, rules=BUF_RULES)
    assert [(f.line, f.rule) for f in found] == \
        [(3, "buf-mutate-after-publish")]


def test_publish_through_helper_summary(lint_project):
    found = lint_project({
        "helper.py": """\
            def send_zero_copy(stream, arr):
                stream.write_bulk(arr)
        """,
        "caller.py": """\
            from helper import send_zero_copy

            def run(stream, data):
                send_zero_copy(stream, data)
                data[0] = 1
        """,
    }, rules=BUF_RULES)
    (f,) = found
    assert f.path == "caller.py" and f.line == 5
    assert "send_zero_copy" in f.message


def test_escape_into_mutating_callee(lint_project):
    found = lint_project({"m.py": """\
        def fill(dst):
            dst.append(0)

        def run(stream, data):
            stream.write_bulk(data)
            fill(data)
    """}, rules=BUF_RULES)
    (f,) = found
    assert f.rule == "buf-escape-mutation"
    assert f.line == 6
    assert "fill" in f.message


def test_rebinding_kills_the_publish(lint_project):
    found = lint_project({"m.py": """\
        def marshal(stream, payload):
            stream.write_bulk(payload)
            payload = bytearray(8)
            payload[0] = 1
    """}, rules=BUF_RULES)
    assert found == []


def test_branch_local_publish_does_not_leak(lint_project):
    # conditional publish state is deliberately not propagated past the
    # branch (same FP-averse stance as the typestate checker)
    found = lint_project({"m.py": """\
        def marshal(stream, payload, eager):
            if eager:
                stream.write_bulk(payload)
            payload[0] = 1
    """}, rules=BUF_RULES)
    assert found == []


def test_inline_suppression_applies_to_project_findings(lint_project):
    found = lint_project({"m.py": """\
        def marshal(stream, payload):
            stream.write_bulk(payload)
            payload[0] = 0  # repro-lint: disable=buf-mutate-after-publish
    """}, rules=BUF_RULES)
    assert found == []
