"""``--stats``: per-checker wall time, per-rule counts, cache ratio."""

from __future__ import annotations

import textwrap

from repro.analysis.cache import AnalysisCache
from repro.analysis.cli import main as cli_main
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import run_analysis
from repro.analysis.stats import RunStats

RACY = """\
import time

def poll(process):
    t = time.time()
    return t
"""


def _project(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return tmp_path


def test_stats_accumulate_times_and_rule_counts(tmp_path):
    root = _project(tmp_path, {"prog.py": RACY})
    stats = RunStats()
    findings = run_analysis([root], DEFAULT_CONFIG, project_root=root,
                            stats=stats)
    assert stats.files_analyzed == 1
    assert stats.rule_counts.get("det-wallclock") == 1
    assert sum(stats.rule_counts.values()) == len(findings)
    # both phases measured: per-file checkers and project checkers
    assert "determinism" in stats.file_seconds
    assert "sim-race" in stats.project_seconds
    assert all(t >= 0 for t in stats.file_seconds.values())


def test_cache_ratio_cold_then_warm(tmp_path):
    root = _project(tmp_path, {"prog.py": RACY})
    cache = AnalysisCache(root / ".cache.json")
    cold = RunStats()
    run_analysis([root], DEFAULT_CONFIG, project_root=root,
                 cache=cache, stats=cold)
    assert (cold.cache_hits, cold.cache_misses) == (0, 1)
    assert cold.hit_ratio == 0.0
    cache.save()

    warm = RunStats()
    run_analysis([root], DEFAULT_CONFIG, project_root=root,
                 cache=AnalysisCache.load(root / ".cache.json"),
                 stats=warm)
    assert (warm.cache_hits, warm.cache_misses) == (1, 0)
    assert warm.hit_ratio == 1.0
    assert "100% hit ratio" in warm.render()


def test_no_cache_means_no_ratio_line(tmp_path):
    stats = RunStats()
    run_analysis([_project(tmp_path, {"prog.py": RACY})],
                 DEFAULT_CONFIG, project_root=tmp_path, stats=stats)
    assert stats.hit_ratio is None
    assert "cache" not in stats.render()


def test_cli_stats_flag_prints_the_report(tmp_path, capsys, monkeypatch):
    root = _project(tmp_path, {"prog.py": RACY,
                               "pyproject.toml": "[project]\n"})
    monkeypatch.chdir(root)
    rc = cli_main(["--stats", "prog.py"])
    err = capsys.readouterr().err
    assert rc == 1
    assert "repro-lint --stats:" in err
    assert "checker wall time" in err
    assert "det-wallclock" in err


def test_cli_without_stats_is_silent_about_them(tmp_path, capsys,
                                                monkeypatch):
    root = _project(tmp_path, {"prog.py": "x = 1\n",
                               "pyproject.toml": "[project]\n"})
    monkeypatch.chdir(root)
    rc = cli_main(["prog.py"])
    assert rc == 0
    assert "--stats" not in capsys.readouterr().err
