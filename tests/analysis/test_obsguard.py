"""Instrumentation guard-dominance analysis (``obs-guard``)."""

from __future__ import annotations

OBS = {"obs-guard"}


def test_unguarded_deref_flagged(lint_project):
    found = lint_project({"link.py": """\
        class Link:
            def __init__(self, monitor=None):
                self.monitor = monitor

            def send(self, pkt):
                self.monitor.on_send(pkt)
    """}, rules=OBS)
    (f,) = found
    assert f.line == 6
    assert "monitor" in f.message


def test_guarded_variants_are_clean(lint_project):
    found = lint_project({"link.py": """\
        class Link:
            def __init__(self, monitor=None):
                self.monitor = monitor
                self.debug = False

            def a(self, pkt):
                if self.monitor is not None:
                    self.monitor.on_send(pkt)

            def b(self, pkt):
                if self.monitor is None:
                    return
                self.monitor.on_send(pkt)

            def c(self, pkt):
                self.monitor is not None and self.monitor.on_send(pkt)

            def d(self, pkt):
                if self.monitor and self.debug:
                    self.monitor.on_debug(pkt)

            def e(self):
                mon = self.monitor
                assert mon is not None
                mon.on_flush()
    """}, rules=OBS)
    assert found == []


def test_branch_local_guard_does_not_dominate(lint_project):
    found = lint_project({"link.py": """\
        class Link:
            def __init__(self, monitor=None):
                self.monitor = monitor

            def send(self, pkt):
                mon = self.monitor
                if mon is not None:
                    mon.on_enqueue(pkt)
                mon.on_send(pkt)
    """}, rules=OBS)
    assert [f.line for f in found] == [9]


def test_guarding_the_wrong_instrument(lint_project):
    found = lint_project({"link.py": """\
        class Link:
            def __init__(self, monitor=None, tracer=None):
                self.monitor = monitor
                self.tracer = tracer

            def send(self, pkt):
                if self.tracer is not None:
                    self.monitor.on_send(pkt)
    """}, rules=OBS)
    assert [f.line for f in found] == [8]


def test_helper_param_contract_is_transitive(lint_project):
    files = {"link.py": """\
        def note_send(monitor, pkt):
            monitor.on_send(pkt)

        class Link:
            def __init__(self, monitor=None):
                self.monitor = monitor

            def bad(self, pkt):
                note_send(self.monitor, pkt)

            def good(self, pkt):
                if self.monitor is not None:
                    note_send(self.monitor, pkt)
    """}
    found = lint_project(files, rules=OBS)
    # the helper itself is clean (caller-guards contract); only the
    # unguarded pass-through is the bug
    assert [(f.line,) for f in found] == [(9,)]
    assert "note_send" in found[0].message
