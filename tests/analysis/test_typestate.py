"""The tys-* family: static VLink/Circuit lifecycle checking."""

TYS = {"tys-send-before-connect", "tys-use-after-close",
       "tys-double-bind", "tys-unreleased-claim"}


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# tys-send-before-connect
# ----------------------------------------------------------------------
def test_send_on_raw_endpoint_flagged(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLinkEndpoint

        def broken(sp, rt, p0, p1, choice):
            ep = VLinkEndpoint(rt, p0, p1, choice)
            ep.send(sp, "x", 8)
    """, rules=TYS)
    assert rules_of(findings) == ["tys-send-before-connect"]
    assert "never connected" in findings[0].message


def test_connected_endpoints_are_clean(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink, VLinkEndpoint

        def fine(sp, rt, p0, p1, choice, listener):
            a, b = VLinkEndpoint.make_pair(rt, p0, p1, choice)
            a.send(sp, "x", 8)
            b.recv(sp)
            c = VLink.connect(sp, p0, "peer", "port")
            c.send(sp, "y", 8)
            d = listener.accept(sp)
            d.recv(sp)
    """, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# tys-use-after-close
# ----------------------------------------------------------------------
def test_vlink_use_after_close_flagged(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            ep.send(sp, "x", 8)
            ep.close()
            ep.recv(sp)
    """, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_circuit_use_after_close_flagged(lint):
    findings = lint("""
        from repro.padicotm.abstraction.circuit import Circuit

        def broken(sp, rt, members):
            circ = Circuit.establish(rt, "ring", members)
            circ.close()
            circ.wait_message(sp, 0)
    """, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]
    assert "circuit" in findings[0].message


def test_conditional_close_does_not_poison_fall_through(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0, flaky):
            ep = VLink.connect(sp, p0, "peer", "port")
            if flaky:
                ep.close()
            ep.send(sp, "x", 8)
    """, rules=TYS)
    assert findings == []


def test_close_inside_branch_flags_later_use_in_same_branch(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0, flag):
            ep = VLink.connect(sp, p0, "peer", "port")
            if flag:
                ep.close()
                ep.send(sp, "x", 8)
    """, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_rebinding_variable_resets_tracking(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "a")
            ep.close()
            ep = VLink.connect(sp, p0, "peer", "b")
            ep.send(sp, "x", 8)
    """, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# tys-double-bind
# ----------------------------------------------------------------------
def test_double_bind_same_port_flagged(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def broken(p0):
            first = VLink.listen(p0, "svc")
            second = VLink.listen(p0, "svc")
    """, rules=TYS)
    assert rules_of(findings) == ["tys-double-bind"]
    assert "'svc'" in findings[0].message


def test_distinct_ports_and_processes_are_clean(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def fine(p0, p1):
            a = VLink.listen(p0, "svc")
            b = VLink.listen(p0, "other")
            c = VLink.listen(p1, "svc")
    """, rules=TYS)
    assert findings == []


def test_rebind_after_close_is_clean(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def fine(p0):
            listener = VLink.listen(p0, "svc")
            listener.close()
            again = VLink.listen(p0, "svc")
    """, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# tys-unreleased-claim
# ----------------------------------------------------------------------
def test_direct_claim_without_release_is_warned(lint):
    findings = lint("""
        def leak(process):
            process.arbitration.claim_nic(
                "san0", "BIP", "legacy", cooperative=False)
    """, rules=TYS)
    assert rules_of(findings) == ["tys-unreleased-claim"]
    assert findings[0].severity.name == "WARNING"


def test_balanced_direct_claim_is_clean(lint):
    findings = lint("""
        def balanced(process):
            process.arbitration.claim_nic(
                "san0", "BIP", "legacy", cooperative=False)
            try:
                pass
            finally:
                process.arbitration.release_claims("legacy")
    """, rules=TYS)
    assert findings == []


def test_cooperative_claims_need_no_release(lint):
    findings = lint("""
        def multiplexed(process):
            process.arbitration.claim_nic(
                "san0", "TCP", "PadicoTM/sockets", cooperative=True)
    """, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# integration with the framework
# ----------------------------------------------------------------------
def test_rules_are_registered():
    from repro.analysis.base import all_rules
    assert TYS <= set(all_rules())


def test_inline_suppression_applies(lint):
    findings = lint("""
        from repro.padicotm.abstraction.vlink import VLink

        def demo(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            ep.close()
            ep.send(sp, "x", 8)  # repro-lint: disable=tys-use-after-close
    """, rules=TYS)
    assert findings == []
