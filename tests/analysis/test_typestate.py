"""The tys-* family: interprocedural VLink/Circuit lifecycle checking.

v2 is a project checker — every test runs the full engine (call graph
+ summaries) over a mini-project via the ``lint_project`` fixture.
"""

TYS = {"tys-send-before-connect", "tys-use-after-close",
       "tys-double-bind", "tys-unreleased-claim", "tys-leak-on-raise"}


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# tys-send-before-connect
# ----------------------------------------------------------------------
def test_send_on_raw_endpoint_flagged(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLinkEndpoint

        def broken(sp, rt, p0, p1, choice):
            ep = VLinkEndpoint(rt, p0, p1, choice)
            ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-send-before-connect"]
    assert "never connected" in findings[0].message


def test_connected_endpoints_are_clean(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink, VLinkEndpoint

        def fine(sp, rt, p0, p1, choice, listener):
            a, b = VLinkEndpoint.make_pair(rt, p0, p1, choice)
            a.send(sp, "x", 8)
            b.recv(sp)
            c = VLink.connect(sp, p0, "peer", "port")
            c.send(sp, "y", 8)
            d = listener.accept(sp)
            d.recv(sp)
    """}, rules=TYS)
    assert findings == []


def test_raw_use_through_helper_is_flagged(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLinkEndpoint

        def pump(sp, link):
            link.send(sp, "x", 8)

        def broken(sp, rt, p0, p1, choice):
            ep = VLinkEndpoint(rt, p0, p1, choice)
            pump(sp, ep)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-send-before-connect"]
    assert "inside" in findings[0].message
    assert findings[0].line == 9  # the call site, not the helper


# ----------------------------------------------------------------------
# tys-use-after-close
# ----------------------------------------------------------------------
def test_vlink_use_after_close_flagged(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            ep.send(sp, "x", 8)
            ep.close()
            ep.recv(sp)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_circuit_use_after_close_flagged(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.circuit import Circuit

        def broken(sp, rt, members):
            circ = Circuit.establish(rt, "ring", members)
            circ.close()
            circ.wait_message(sp, 0)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]
    assert "circuit" in findings[0].message


def test_conditional_close_does_not_poison_fall_through(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0, flaky):
            ep = VLink.connect(sp, p0, "peer", "port")
            if flaky:
                ep.close()
            ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert findings == []


def test_close_inside_branch_flags_later_use_in_same_branch(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0, flag):
            ep = VLink.connect(sp, p0, "peer", "port")
            if flag:
                ep.close()
                ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_rebinding_variable_resets_tracking(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "a")
            ep.close()
            ep = VLink.connect(sp, p0, "peer", "b")
            ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert findings == []


def test_close_in_callee_is_seen_by_caller(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def shutdown(link):
            link.close()

        def broken(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            shutdown(ep)
            ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_close_in_callee_two_hops(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def inner(link):
            link.close()

        def outer(link):
            inner(link)

        def broken(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            outer(ep)
            ep.recv(sp)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_factory_return_types_the_caller(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def dial(sp, p0):
            return VLink.connect(sp, p0, "peer", "port")

        def broken(sp, p0):
            ep = dial(sp, p0)
            ep.close()
            ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_close_in_finally_applies_after_try(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            try:
                ep.send(sp, "x", 8)
            finally:
                ep.close()
            ep.recv(sp)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


def test_with_block_closes_on_exit(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0):
            with VLink.connect(sp, p0, "peer", "port") as ep:
                ep.send(sp, "x", 8)
            ep.recv(sp)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-use-after-close"]


# ----------------------------------------------------------------------
# tys-double-bind
# ----------------------------------------------------------------------
def test_double_bind_same_port_flagged(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def broken(p0):
            first = VLink.listen(p0, "svc")
            second = VLink.listen(p0, "svc")
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-double-bind"]
    assert "'svc'" in findings[0].message


def test_distinct_ports_and_processes_are_clean(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(p0, p1):
            a = VLink.listen(p0, "svc")
            b = VLink.listen(p0, "other")
            c = VLink.listen(p1, "svc")
    """}, rules=TYS)
    assert findings == []


def test_rebind_after_close_is_clean(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(p0):
            listener = VLink.listen(p0, "svc")
            listener.close()
            again = VLink.listen(p0, "svc")
    """}, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# tys-unreleased-claim
# ----------------------------------------------------------------------
def test_direct_claim_without_release_is_warned(lint_project):
    findings = lint_project({"prog.py": """
        def leak(process):
            process.arbitration.claim_nic(
                "san0", "BIP", "legacy", cooperative=False)
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-unreleased-claim"]
    assert findings[0].severity.name == "WARNING"


def test_balanced_direct_claim_is_clean(lint_project):
    findings = lint_project({"prog.py": """
        def balanced(process):
            process.arbitration.claim_nic(
                "san0", "BIP", "legacy", cooperative=False)
            try:
                pass
            finally:
                process.arbitration.release_claims("legacy")
    """}, rules=TYS)
    assert findings == []


def test_release_through_helper_balances_the_claim(lint_project):
    findings = lint_project({"prog.py": """
        def cleanup(process):
            process.arbitration.release_claims("legacy")

        def balanced(process):
            process.arbitration.claim_nic(
                "san0", "BIP", "legacy", cooperative=False)
            cleanup(process)
    """}, rules=TYS)
    assert findings == []


def test_cooperative_claims_need_no_release(lint_project):
    findings = lint_project({"prog.py": """
        def multiplexed(process):
            process.arbitration.claim_nic(
                "san0", "TCP", "PadicoTM/sockets", cooperative=True)
    """}, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# tys-leak-on-raise
# ----------------------------------------------------------------------
def test_raise_with_open_endpoint_is_warned(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def broken(sp, p0, ready):
            ep = VLink.connect(sp, p0, "peer", "port")
            if not ready:
                raise RuntimeError("peer not ready")
            ep.send(sp, "x", 8)
            ep.close()
    """}, rules=TYS)
    assert rules_of(findings) == ["tys-leak-on-raise"]
    assert findings[0].severity.name == "WARNING"
    assert "'ep'" in findings[0].message


def test_finally_close_protects_the_raise_edge(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0, ready):
            ep = VLink.connect(sp, p0, "peer", "port")
            try:
                if not ready:
                    raise RuntimeError("peer not ready")
                ep.send(sp, "x", 8)
            finally:
                ep.close()
    """}, rules=TYS)
    assert findings == []


def test_with_block_protects_the_raise_edge(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0, ready):
            with VLink.connect(sp, p0, "peer", "port") as ep:
                if not ready:
                    raise RuntimeError("peer not ready")
                ep.send(sp, "x", 8)
    """}, rules=TYS)
    assert findings == []


def test_caught_raise_is_not_a_leak_edge(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(sp, p0, ready):
            ep = VLink.connect(sp, p0, "peer", "port")
            try:
                if not ready:
                    raise RuntimeError("retry")
            except RuntimeError:
                pass
            ep.close()
    """}, rules=TYS)
    assert findings == []


def test_escaped_endpoint_is_not_reported_as_leak(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def fine(self, sp, p0, ready):
            ep = VLink.connect(sp, p0, "peer", "port")
            self.link = ep
            if not ready:
                raise RuntimeError("caller owns self.link now")
    """}, rules=TYS)
    assert findings == []


# ----------------------------------------------------------------------
# integration with the framework
# ----------------------------------------------------------------------
def test_rules_are_registered():
    from repro.analysis.base import all_rules
    assert TYS <= set(all_rules())


def test_inline_suppression_applies(lint_project):
    findings = lint_project({"prog.py": """
        from repro.padicotm.abstraction.vlink import VLink

        def demo(sp, p0):
            ep = VLink.connect(sp, p0, "peer", "port")
            ep.close()
            ep.send(sp, "x", 8)  # repro-lint: disable=tys-use-after-close
    """}, rules=TYS)
    assert findings == []
