"""Shared helpers for the analysis-framework tests."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.analysis import DEFAULT_CONFIG, ModuleContext, all_checkers
from repro.analysis.suppress import Suppressions


def lint_text(source: str, *, path: str = "src/repro/sim/snippet.py",
              module: str | None = "repro.sim.snippet",
              config=DEFAULT_CONFIG, rules: set[str] | None = None):
    """Run every registered checker over a source snippet.

    Mirrors the engine's per-file pipeline (suppressions + allowlist)
    without touching the filesystem.  ``rules`` filters the result.
    """
    source = textwrap.dedent(source)
    ctx = ModuleContext(path, source, ast.parse(source), module,
                        path.endswith("__init__.py"),
                        Suppressions.scan(source))
    findings = []
    for cls in all_checkers():
        checker = cls()
        if not checker.applicable(ctx):
            continue
        for f in checker.check(ctx, config):
            if ctx.suppressions.is_suppressed(f.rule, f.line):
                continue
            if config.is_allowed(f.path, f.rule):
                continue
            findings.append(f)
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings


def lint_tree(tmp_path, files, *, rules: set[str] | None = None,
              config=DEFAULT_CONFIG, cache=None):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and run
    the *full* engine — per-file checkers plus the call graph and the
    interprocedural project checkers — as one mini-project.

    This is the harness for the ``buf-*`` / ``ker-block-deep`` /
    ``obs-guard`` tests: unlike :func:`lint_text`, cross-file
    resolution, summaries and the fixpoint all run for real.
    """
    from repro.analysis.engine import run_analysis
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    findings = run_analysis([tmp_path], config, project_root=tmp_path,
                            cache=cache)
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return findings


@pytest.fixture
def lint():
    return lint_text


@pytest.fixture
def lint_project(tmp_path):
    """``lint_project(files, ...)`` — :func:`lint_tree` bound to this
    test's tmp directory."""
    def _run(files, **kwargs):
        return lint_tree(tmp_path, files, **kwargs)
    _run.root = tmp_path
    return _run
