"""IDL / parallelism-spec lint family."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.analysis import lint_compiled_idl, lint_parallelism_element
from repro.corba.idl.compiler import compile_idl
from tests.analysis.conftest import lint_text

IDL_RULES = {"idl-parse", "idl-dup-op", "idl-unknown-name",
             "idl-bad-redistribution"}

_GOOD_IDL = """
module App {
    typedef sequence<double> Vec;
    interface Solver {
        Vec scale(in Vec v, in double factor);
        double norm(in Vec v);
    };
    component SolverComp { provides Solver input; };
    home SolverHome manages SolverComp {};
};
"""


def _par(xml: str) -> ET.Element:
    return ET.fromstring(xml)


# ---------------------------------------------------------------------------
# programmatic API
# ---------------------------------------------------------------------------
def test_clean_idl_and_spec():
    idl = compile_idl(_GOOD_IDL)
    assert lint_compiled_idl(idl) == []
    spec = _par("""
        <parallelism component="App::SolverComp">
          <port name="input">
            <operation name="scale">
              <argument name="v" distribution="block"/>
            </operation>
          </port>
        </parallelism>""")
    assert lint_parallelism_element(idl, spec) == []


def test_diamond_duplicate_operation():
    idl = compile_idl("""
        module M {
            interface A { void ping(); };
            interface B { void ping(in long n); };
            interface AB : A, B {};
        };""")
    findings = lint_compiled_idl(idl)
    assert [f.rule for f in findings] == ["idl-dup-op"]
    assert "ping" in findings[0].message


def test_shared_grandparent_is_not_a_duplicate():
    idl = compile_idl("""
        module M {
            interface Root { void ping(); };
            interface A : Root {};
            interface B : Root {};
            interface AB : A, B {};
        };""")
    assert lint_compiled_idl(idl) == []


@pytest.mark.parametrize("spec,needle", [
    ('<parallelism component="App::Nope"><port name="input"/></parallelism>',
     "component 'App::Nope'"),
    ('<parallelism component="App::SolverComp"><port name="ghost"/>'
     '</parallelism>', "port 'ghost'"),
    ('<parallelism component="App::SolverComp"><port name="input">'
     '<operation name="nosuch"/></port></parallelism>',
     "operation 'nosuch'"),
    ('<parallelism component="App::SolverComp"><port name="input">'
     '<operation name="scale"><argument name="bogus"/></operation>'
     '</port></parallelism>', "parameter 'bogus'"),
    ('<parallelism component="App::SolverComp"><port name="input">'
     '<operation name="scale"><argument name="v" distribution="magic"/>'
     '</operation></port></parallelism>', "distribution 'magic'"),
], ids=["component", "port", "operation", "argument", "distribution"])
def test_unknown_names(spec, needle):
    idl = compile_idl(_GOOD_IDL)
    findings = lint_parallelism_element(idl, _par(spec))
    assert [f.rule for f in findings] == ["idl-unknown-name"]
    assert needle in findings[0].message


def test_non_array_redistribution():
    idl = compile_idl(_GOOD_IDL)
    spec = _par("""
        <parallelism component="App::SolverComp">
          <port name="input">
            <operation name="scale">
              <argument name="factor" distribution="block"/>
            </operation>
          </port>
        </parallelism>""")
    findings = lint_parallelism_element(idl, spec)
    assert [f.rule for f in findings] == ["idl-bad-redistribution"]
    assert "factor" in findings[0].message


# ---------------------------------------------------------------------------
# harvesting from Python modules (how the CLI sees examples/)
# ---------------------------------------------------------------------------
def test_idl_and_spec_harvested_from_python_literals():
    findings = lint_text('''
        IDL = """
        module App {
            interface I { void op(in double x); };
            component C { provides I p; };
            home H manages C {};
        };
        """
        PAR = """
        <parallelism component="App::C">
          <port name="p">
            <operation name="op">
              <argument name="x" distribution="block"/>
            </operation>
          </port>
        </parallelism>
        """
    ''', rules=IDL_RULES)
    assert [f.rule for f in findings] == ["idl-bad-redistribution"]


def test_parallelism_inside_softpkg_documents():
    findings = lint_text('''
        APP_IDL = """
        module App {
            interface I { void op(); };
            component C { provides I p; };
            home H manages C {};
        };
        """
        PKG = """
        <softpkg name="s" version="1.0">
          <implementation id="DCE:x">
            <component>App::Missing</component>
            <parallelism component="App::Missing">
              <port name="p"/>
            </parallelism>
          </implementation>
        </softpkg>
        """
    ''', rules=IDL_RULES)
    assert [f.rule for f in findings] == ["idl-unknown-name"]


def test_broken_idl_passed_to_compile_idl_is_reported():
    findings = lint_text('''
        from repro.corba.idl.compiler import compile_idl
        BAD_IDL = "module { nope"
        unit = compile_idl(BAD_IDL)
    ''', rules=IDL_RULES)
    assert [f.rule for f in findings] == ["idl-parse"]


def test_idl_looking_string_that_is_not_idl_stays_quiet():
    # a docstring-ish constant whose name mentions IDL but which is
    # never compiled must not produce noise
    findings = lint_text(
        'IDL_NOTES = "reminder: write the IDL for the solver"\n',
        rules=IDL_RULES)
    assert findings == []
