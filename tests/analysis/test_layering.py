"""Layering checker: the import DAG of the PadicoTM stack."""

from __future__ import annotations

import pytest

from repro.analysis import DEFAULT_CONFIG, AnalysisConfig
from tests.analysis.conftest import lint_text

LAY_RULES = {"lay-upward", "lay-escape", "lay-unknown"}


def lay(source: str, *, path: str, module: str,
        config=DEFAULT_CONFIG) -> list[str]:
    return [f.rule for f in lint_text(source, path=path, module=module,
                                      rules=LAY_RULES, config=config)]


# ---------------------------------------------------------------------------
# upward imports are rejected
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("module,path,source", [
    ("repro.sim.evil", "src/repro/sim/evil.py",
     "from repro.ccm.container import Container"),
    ("repro.sim.evil", "src/repro/sim/evil.py",
     "import repro.ccm.container"),
    ("repro.net.evil", "src/repro/net/evil.py",
     "from repro.padicotm.runtime import PadicoRuntime"),
    ("repro.padicotm.arbitration.evil",
     "src/repro/padicotm/arbitration/evil.py",
     "from repro.padicotm.abstraction.vlink import VLink"),
    ("repro.padicotm.abstraction.evil",
     "src/repro/padicotm/abstraction/evil.py",
     "from repro.padicotm.personality.bsd import BsdSocket"),
    ("repro.corba.evil", "src/repro/corba/evil.py",
     "from repro.ccm.component import ComponentImpl"),
    ("repro.ccm.evil", "src/repro/ccm/evil.py",
     "from repro.deploy.planner import DeploymentPlanner"),
], ids=["sim->ccm", "sim->ccm-import", "net->padicotm", "arb->abs",
        "abs->personality", "corba->ccm", "ccm->deploy"])
def test_upward_import_rejected(module, path, source):
    assert lay(source, path=path, module=module) == ["lay-upward"]


@pytest.mark.parametrize("module,path,source", [
    # downward and same-layer imports are the architecture working
    ("repro.ccm.ok", "src/repro/ccm/ok.py",
     "from repro.corba.orb import Orb"),
    ("repro.padicotm.personality.ok", "src/repro/padicotm/personality/ok.py",
     "from repro.padicotm.abstraction.vlink import VLink"),
    ("repro.net.ok", "src/repro/net/ok.py",
     "from repro.sim.kernel import SimKernel"),
    ("repro.sim.ok", "src/repro/sim/ok.py",
     "from repro.sim.sync import SimLock"),
    ("repro.corba.ok", "src/repro/corba/ok.py",
     "from repro.mpi.world import World"),  # same layer: corba <-> mpi
], ids=["ccm->corba", "personality->abs", "net->sim", "sim->sim",
        "corba<->mpi"])
def test_downward_import_allowed(module, path, source):
    assert lay(source, path=path, module=module) == []


def test_stdlib_and_unlayered_files_ignored():
    assert lay("import heapq\nimport numpy", path="src/repro/sim/x.py",
               module="repro.sim.x") == []
    # examples/tests have no module name: they sit above the stack
    assert lint_text("from repro.ccm.container import Container",
                     path="examples/demo.py", module=None,
                     rules=LAY_RULES) == []


# ---------------------------------------------------------------------------
# escape hatches: TYPE_CHECKING and lazy imports
# ---------------------------------------------------------------------------
_TYPE_CHECKING_SRC = """
    from typing import TYPE_CHECKING
    if TYPE_CHECKING:
        from repro.padicotm.runtime import PadicoProcess
"""

_LAZY_SRC = """
    def wire_up():
        from repro.padicotm.runtime import PadicoRuntime
        return PadicoRuntime
"""


@pytest.mark.parametrize("source", [_TYPE_CHECKING_SRC, _LAZY_SRC],
                         ids=["type-checking", "lazy"])
def test_unregistered_escape_hatch_rejected(source):
    empty = AnalysisConfig(layer_exceptions={})
    assert lay(source, path="src/repro/padicotm/arbitration/new.py",
               module="repro.padicotm.arbitration.new",
               config=empty) == ["lay-escape"]


def test_registered_escape_hatch_accepted():
    cfg = AnalysisConfig(layer_exceptions={
        ("src/repro/padicotm/arbitration/new.py", "repro.padicotm.runtime"):
            "test fixture",
    })
    for source in (_TYPE_CHECKING_SRC, _LAZY_SRC):
        assert lay(source, path="src/repro/padicotm/arbitration/new.py",
                   module="repro.padicotm.arbitration.new",
                   config=cfg) == []


def test_escape_hatch_never_covers_module_level():
    """A registered exception must not quietly bless a module-level
    upward import of the same module."""
    cfg = AnalysisConfig(layer_exceptions={
        ("src/repro/padicotm/arbitration/new.py", "repro.padicotm.runtime"):
            "test fixture",
    })
    assert lay("from repro.padicotm.runtime import PadicoRuntime",
               path="src/repro/padicotm/arbitration/new.py",
               module="repro.padicotm.arbitration.new",
               config=cfg) == ["lay-upward"]


def test_existing_hatches_are_registered_and_real():
    """Every committed exception refers to a file that exists and that
    still contains the guarded import (no stale registry entries)."""
    import pathlib
    root = pathlib.Path(__file__).resolve().parents[2]
    for (path, imported), why in DEFAULT_CONFIG.layer_exceptions.items():
        assert why.strip(), f"{path}: exception without justification"
        text = (root / path).read_text()
        assert "TYPE_CHECKING" in text
        assert imported in text, f"{path} no longer imports {imported}"


def test_unknown_layer_warns():
    assert lay("from repro.newpkg.thing import X",
               path="src/repro/sim/x.py",
               module="repro.sim.x") == ["lay-unknown"]
