"""SARIF 2.1.0 serialisation of repro-lint findings."""

import json

from repro.analysis.findings import Finding, Severity
from repro.analysis.sarif import SARIF_VERSION, to_sarif


def _sample_findings():
    return [
        Finding("det-wallclock", "time.time() is nondeterministic",
                "src/repro/net/flows.py", 42, 8, Severity.ERROR,
                "t = time.time()"),
        Finding("tys-unreleased-claim", "direct claim never released",
                "src/repro/mpi/api.py", 7, 0, Severity.WARNING,
                "claim_nic('san0', 'BIP', 'mw', cooperative=False)"),
    ]


def test_sarif_log_shape():
    log = to_sarif(_sample_findings())
    assert log["version"] == SARIF_VERSION
    assert len(log["runs"]) == 1
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert len(run["results"]) == 2


def test_results_carry_location_level_and_fingerprint():
    findings = _sample_findings()
    results = to_sarif(findings)["runs"][0]["results"]
    first = results[0]
    assert first["ruleId"] == "det-wallclock"
    assert first["level"] == "error"
    loc = first["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/repro/net/flows.py"
    assert loc["region"]["startLine"] == 42
    assert loc["region"]["startColumn"] == 9  # SARIF columns are 1-based
    assert loc["region"]["snippet"]["text"] == "t = time.time()"
    assert first["partialFingerprints"]["reproLintFingerprint/v1"] == \
        findings[0].fingerprint
    assert results[1]["level"] == "warning"


def test_rule_descriptors_are_deduplicated_and_indexed():
    findings = _sample_findings() + _sample_findings()
    run = to_sarif(findings)["runs"][0]
    rules = run["tool"]["driver"]["rules"]
    assert [r["id"] for r in rules] == sorted({f.rule for f in findings})
    for result in run["results"]:
        assert rules[result["ruleIndex"]]["id"] == result["ruleId"]


def test_whole_file_finding_has_no_region():
    finding = Finding("lay-unknown", "module maps to no layer",
                      "src/repro/new/mod.py", 0)
    result = to_sarif([finding])["runs"][0]["results"][0]
    assert "region" not in result["locations"][0]["physicalLocation"]


def test_empty_run_is_valid():
    log = to_sarif([])
    assert log["runs"][0]["results"] == []
    assert log["runs"][0]["tool"]["driver"]["rules"] == []


def test_sarif_is_json_serialisable():
    blob = json.dumps(to_sarif(_sample_findings()))
    assert json.loads(blob)["version"] == SARIF_VERSION


def test_cli_format_sarif(tmp_path, capsys):
    from repro.analysis.cli import main

    bad = tmp_path / "snippet.py"
    bad.write_text("import time\n\ndef f():\n    time.sleep(1)\n")
    exit_code = main(["--format", "sarif", "--no-baseline", str(bad)])
    out = capsys.readouterr().out
    log = json.loads(out)
    assert exit_code == 1
    assert any(r["ruleId"] == "ker-sleep"
               for r in log["runs"][0]["results"])
