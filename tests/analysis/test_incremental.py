"""``--changed`` incremental mode: content-addressed caching and
summary invalidation."""

from __future__ import annotations

import json

from repro.analysis.cache import AnalysisCache
from repro.analysis.cli import main as cli_main

HELPER_CLEAN = """\
def backoff(process, delay):
    process.sleep(delay)
"""

HELPER_BLOCKING = """\
import time

def backoff(process, delay):
    time.sleep(delay)
"""

CALLER = """\
from helper import backoff

def retry(process, task):
    task()
    backoff(process, 0.1)
"""


def _fingerprints(findings):
    return sorted(f.fingerprint for f in findings)


def test_second_run_hits_cache_and_agrees(lint_project, tmp_path):
    cache = AnalysisCache(tmp_path / ".cache.json")
    first = lint_project({"helper.py": HELPER_BLOCKING,
                          "caller.py": CALLER}, cache=cache)
    assert set(cache.misses) == {"helper.py", "caller.py"}
    cache.save()

    cache2 = AnalysisCache.load(tmp_path / ".cache.json")
    second = lint_project({}, cache=cache2)
    assert set(cache2.hits) == {"helper.py", "caller.py"}
    assert cache2.misses == []
    assert _fingerprints(second) == _fingerprints(first)


def test_callee_change_re_derives_cached_callers(lint_project, tmp_path):
    # caller.py stays byte-identical (cache hit), yet the deep finding
    # at its call site must appear/disappear with the callee's body —
    # the interprocedural phase is never cached
    cache = AnalysisCache(tmp_path / ".cache.json")
    clean = lint_project({"helper.py": HELPER_CLEAN,
                          "caller.py": CALLER}, cache=cache)
    assert [f for f in clean if f.rule == "ker-block-deep"] == []
    cache.save()

    cache2 = AnalysisCache.load(tmp_path / ".cache.json")
    changed = lint_project({"helper.py": HELPER_BLOCKING}, cache=cache2)
    assert cache2.hits == ["caller.py"]
    assert cache2.misses == ["helper.py"]
    deep = [f for f in changed if f.rule == "ker-block-deep"]
    assert [(f.path, f.line) for f in deep] == [("caller.py", 5)]


def test_rule_set_signature_invalidates_the_cache(lint_project, tmp_path):
    cache = AnalysisCache(tmp_path / ".cache.json")
    lint_project({"helper.py": HELPER_CLEAN}, cache=cache)
    cache.save()

    doc = json.loads((tmp_path / ".cache.json").read_text())
    doc["signature"] = "0" * 12          # a different checker generation
    (tmp_path / ".cache.json").write_text(json.dumps(doc))
    stale = AnalysisCache.load(tmp_path / ".cache.json")
    assert stale.entries == {}


def test_save_prunes_deleted_files(lint_project, tmp_path):
    cache = AnalysisCache(tmp_path / ".cache.json")
    lint_project({"helper.py": HELPER_CLEAN,
                  "gone.py": "X = 1\n"}, cache=cache)
    (tmp_path / "gone.py").unlink()
    cache.save()
    doc = json.loads((tmp_path / ".cache.json").read_text())
    assert sorted(doc["entries"]) == ["helper.py"]


def test_cli_changed_round_trip(tmp_path, capsys):
    (tmp_path / "mod.py").write_text("def f():\n    return 1\n")
    cache_path = tmp_path / ".cache.json"
    argv = ["--changed", "--cache", str(cache_path), str(tmp_path)]

    assert cli_main(argv) == 0
    assert cache_path.exists()
    assert "reused 0/1" in capsys.readouterr().err

    assert cli_main(argv) == 0
    assert "reused 1/1" in capsys.readouterr().err
