"""Tests for the perf-* hot-path performance rules."""

from __future__ import annotations

from tests.analysis.conftest import lint_text

PERF = {"perf-list-pop0", "perf-bytes-concat", "perf-getvalue-loop",
        "perf-tobytes-hot", "perf-route-in-loop"}

#: a module path inside the zero-copy wire directories
HOT_PATH = "src/repro/corba/snippet.py"


def perf_findings(source: str):
    return lint_text(source, rules=PERF)


# ---------------------------------------------------------------------------
# perf-list-pop0
# ---------------------------------------------------------------------------

def test_pop0_flagged():
    findings = perf_findings("""
        def drain(queue):
            while queue:
                item = queue.pop(0)
                handle(item)
    """)
    assert [f.rule for f in findings] == ["perf-list-pop0"]
    assert "deque" in findings[0].message


def test_pop0_flagged_outside_loops_too():
    # a single pop(0) is still O(n); the rule is positional, not loop-gated
    findings = perf_findings("""
        def first(waiters):
            return waiters.pop(0)
    """)
    assert [f.rule for f in findings] == ["perf-list-pop0"]


def test_pop_other_forms_clean():
    assert perf_findings("""
        def ok(queue, table):
            queue.pop()          # tail pop is O(1)
            queue.pop(-1)
            table.pop("key", 0)  # two-arg dict pop
            queue.popleft()
    """) == []


def test_pop0_suppressible():
    assert perf_findings("""
        def bounded(pair):
            return pair.pop(0)  # repro-lint: disable=perf-list-pop0
    """) == []


# ---------------------------------------------------------------------------
# perf-bytes-concat
# ---------------------------------------------------------------------------

def test_bytes_concat_in_loop_flagged():
    findings = perf_findings("""
        def assemble(chunks):
            buf = b""
            for chunk in chunks:
                buf += chunk
            return buf
    """)
    assert [f.rule for f in findings] == ["perf-bytes-concat"]
    assert "bytearray" in findings[0].message


def test_bytes_call_concat_in_while_flagged():
    findings = perf_findings("""
        def pad(n):
            out = bytes(4)
            while n > 0:
                out += b"\\x00"
                n -= 1
            return out
    """)
    assert [f.rule for f in findings] == ["perf-bytes-concat"]


def test_bytes_concat_outside_loop_clean():
    assert perf_findings("""
        def frame(header, body):
            msg = b"GIOP" + header
            msg += body
            return msg
    """) == []


def test_int_accumulation_clean():
    assert perf_findings("""
        def total(sizes):
            acc = 0
            for n in sizes:
                acc += n
            return acc
    """) == []


def test_bytearray_accumulation_clean():
    assert perf_findings("""
        def assemble(chunks):
            buf = bytearray()
            for chunk in chunks:
                buf += chunk
            return bytes(buf)
    """) == []


def test_loop_local_function_resets_depth():
    # the inner function body is not (lexically) running per iteration
    assert perf_findings("""
        def outer(items):
            for item in items:
                def once():
                    data = b"x"
                    data = data + item
                    return data
                yield once
    """) == []


# ---------------------------------------------------------------------------
# perf-getvalue-loop
# ---------------------------------------------------------------------------

def test_getvalue_in_loop_flagged():
    findings = perf_findings("""
        def send_all(out, links):
            for link in links:
                link.push(out.getvalue())
    """)
    assert [f.rule for f in findings] == ["perf-getvalue-loop"]


def test_getvalue_hoisted_clean():
    assert perf_findings("""
        def send_all(out, links):
            data = out.getvalue()
            for link in links:
                link.push(data)
    """) == []


def test_getvalue_in_while_flagged():
    findings = perf_findings("""
        def poll(out):
            while live():
                inspect(out.getvalue())
    """)
    assert [f.rule for f in findings] == ["perf-getvalue-loop"]


# ---------------------------------------------------------------------------
# perf-tobytes-hot
# ---------------------------------------------------------------------------

def hot_findings(source: str, path: str = HOT_PATH):
    module = path[len("src/"):-len(".py")].replace("/", ".")
    return lint_text(source, path=path, module=module, rules=PERF)


def test_tobytes_flagged_in_hot_dir():
    findings = hot_findings("""
        def marshal(arr, out):
            out.write(arr.tobytes())
    """)
    assert [f.rule for f in findings] == ["perf-tobytes-hot"]
    assert "write_bulk" in findings[0].message


def test_tobytes_flagged_in_every_hot_dir():
    for path in ("src/repro/corba/x.py", "src/repro/padicotm/sub/x.py",
                 "src/repro/mpi/x.py", "src/repro/core/x.py"):
        findings = hot_findings("""
            def marshal(arr):
                return arr.tobytes()
        """, path=path)
        assert [f.rule for f in findings] == ["perf-tobytes-hot"], path


def test_tobytes_silent_outside_hot_dirs():
    assert hot_findings("""
        def marshal(arr):
            return arr.tobytes()
    """, path="src/repro/sim/x.py") == []
    assert hot_findings("""
        def marshal(arr):
            return arr.tobytes()
    """, path="examples/demo.py") == []


def test_bytes_of_memoryview_name_flagged():
    findings = hot_findings("""
        def flatten(buf):
            view = memoryview(buf)
            return bytes(view)
    """)
    assert [f.rule for f in findings] == ["perf-tobytes-hot"]
    assert "bytes(memoryview)" in findings[0].message


def test_bytes_of_memoryview_call_flagged():
    findings = hot_findings("""
        def flatten(buf):
            return bytes(memoryview(buf))
    """)
    assert [f.rule for f in findings] == ["perf-tobytes-hot"]


def test_bytes_of_memoryview_slice_flagged():
    # slicing a memoryview yields a memoryview; copying the slice is
    # still a wire-path copy
    findings = hot_findings("""
        def head(buf, n):
            view = memoryview(buf)
            return bytes(view[:n])
    """)
    assert [f.rule for f in findings] == ["perf-tobytes-hot"]


def test_bytes_of_plain_name_clean():
    # bytes() over something not known to be a memoryview is fine
    # (bytes(bytearray) at a deliberate flush point, bytes(int), ...)
    assert hot_findings("""
        def flush(buf):
            return bytes(buf)
    """) == []


def test_getvalue_in_loop_in_hot_dir_reports_both_rules():
    findings = hot_findings("""
        def send_all(out, links):
            for link in links:
                link.push(out.getvalue())
    """)
    assert sorted(f.rule for f in findings) == \
        ["perf-getvalue-loop", "perf-tobytes-hot"]


def test_getvalue_outside_loop_in_hot_dir_clean():
    # one join at a deliberate materialisation point is the contract
    assert hot_findings("""
        def finish(out):
            return out.getvalue()
    """) == []


def test_tobytes_hot_suppressible():
    assert hot_findings("""
        def marshal(arr):
            return arr.tobytes()  # repro-lint: disable=perf-tobytes-hot
    """) == []


# ---------------------------------------------------------------------------
# perf-route-in-loop
# ---------------------------------------------------------------------------

def test_route_invariant_in_loop_flagged():
    findings = perf_findings("""
        def spam(topo, src, dst, n):
            for _ in range(n):
                path = topo.route(src, dst)
                send(path)
    """)
    assert [f.rule for f in findings] == ["perf-route-in-loop"]
    assert "hoist" in findings[0].message


def test_route_invariant_in_while_flagged():
    findings = perf_findings("""
        def spam(fabric, a, b):
            while pending():
                fabric.route(a, b, "san")
    """)
    assert [f.rule for f in findings] == ["perf-route-in-loop"]


def test_route_invariant_attr_receiver_flagged():
    findings = perf_findings("""
        def spam(self, src, dst, sizes):
            for size in sizes:
                self.topo.route(src, dst, self.fabric)
    """)
    assert [f.rule for f in findings] == ["perf-route-in-loop"]


def test_route_loop_var_arg_silent():
    assert perf_findings("""
        def fan_out(topo, src, hosts):
            for dst in hosts:
                topo.route(src, dst)
    """) == []


def test_route_loop_var_receiver_silent():
    assert perf_findings("""
        def probe(fabrics, a, b):
            for fab in fabrics:
                fab.route(a, b)
    """) == []


def test_route_loop_var_fstring_arg_silent():
    # f-string fabric names built from the loop variable vary per
    # iteration — the grid generator's idiom
    assert perf_findings("""
        def wire(topo, a, b, sites):
            for s in sites:
                topo.route(a, b, f"{s}-san")
    """) == []


def test_route_invariant_fstring_arg_flagged():
    findings = perf_findings("""
        def wire(topo, a, b, site):
            for _ in range(3):
                topo.route(a, b, f"{site}-san")
    """)
    assert [f.rule for f in findings] == ["perf-route-in-loop"]


def test_route_rebound_arg_silent():
    # src is reassigned inside the loop body, even after the call —
    # it varies between iterations
    assert perf_findings("""
        def walk(topo, src, dst):
            while src != dst:
                hop = topo.route(src, dst)
                src = hop[0].dst
    """) == []


def test_route_call_arg_silent():
    # calls are never provably invariant
    assert perf_findings("""
        def spam(topo, dst, n):
            for _ in range(n):
                topo.route(pick_src(), dst)
    """) == []


def test_route_starred_and_kwargs_silent():
    assert perf_findings("""
        def spam(topo, pair, kw, n):
            for _ in range(n):
                topo.route(*pair)
                topo.route("a", "b", **kw)
    """) == []


def test_route_loop_var_keyword_silent():
    assert perf_findings("""
        def spam(topo, a, b, fabrics):
            for fab in fabrics:
                topo.route(a, b, fabric=fab)
    """) == []


def test_route_invariant_keyword_flagged():
    findings = perf_findings("""
        def spam(topo, a, b, fab, n):
            for _ in range(n):
                topo.route(a, b, fabric=fab)
    """)
    assert [f.rule for f in findings] == ["perf-route-in-loop"]


def test_route_outside_loop_silent():
    assert perf_findings("""
        def once(topo, src, dst):
            return topo.route(src, dst)
    """) == []


def test_route_single_arg_silent():
    # not the Topology/Fabric route(src, dst, ...) signature
    assert perf_findings("""
        def dispatch(router, msg, n):
            for _ in range(n):
                router.route(msg)
    """) == []


def test_route_in_loop_local_function_silent():
    # the inner function runs elsewhere, not per iteration
    assert perf_findings("""
        def outer(topo, src, dst, items):
            for item in items:
                def resolve():
                    return topo.route(src, dst)
                yield resolve
    """) == []


def test_route_in_loop_suppressible():
    assert perf_findings("""
        def spam(topo, src, dst, n):
            for _ in range(n):
                topo.route(src, dst)  # repro-lint: disable=perf-route-in-loop
    """) == []


# ---------------------------------------------------------------------------
# family registration
# ---------------------------------------------------------------------------

def test_rules_registered():
    from repro.analysis import all_rules

    rules = all_rules()
    assert PERF <= set(rules)
