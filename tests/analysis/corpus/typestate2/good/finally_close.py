"""Good twin: a finally-close covers both the fall-through and the
raise edge, and the post-try recv correctly faults nowhere because
the function ends right after the close."""

from repro.padicotm.abstraction.vlink import VLink


def fine(sp, p0, ready):
    ep = VLink.connect(sp, p0, "peer", "port")
    try:
        if not ready:
            raise RuntimeError("peer not ready")
        ep.send(sp, "x", 8)
    finally:
        ep.close()
