"""Good twin: a with-block scopes the endpoint; the raise edge is
protected by __exit__ and every use stays inside the block."""

from repro.padicotm.abstraction.vlink import VLink


def fine(sp, p0, ready):
    with VLink.connect(sp, p0, "peer", "port") as ep:
        if not ready:
            raise RuntimeError("peer not ready")
        ep.send(sp, "x", 8)
