"""Good twin: the release lives in a cleanup helper; the transitive
release summary balances the direct claim."""


def cleanup(process):
    process.arbitration.release_claims("legacy")


def balanced(process):
    process.arbitration.claim_nic(
        "san0", "BIP", "legacy", cooperative=False)
    cleanup(process)
