"""Good twin: closing the listener frees the (process, port) slot, so
the second listen is a legitimate rebind, and rebinding a variable to
a fresh link resets its typestate."""

from repro.padicotm.abstraction.vlink import VLink


def fine(sp, p0):
    listener = VLink.listen(p0, "svc")
    listener.close()
    again = VLink.listen(p0, "svc")
    ep = VLink.connect(sp, p0, "peer", "a")
    ep.close()
    ep = VLink.connect(sp, p0, "peer", "b")
    ep.send(sp, "x", 8)
    ep.close()
    again.close()
