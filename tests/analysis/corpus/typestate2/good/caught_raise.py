"""Good twin: a raise with a matching handler never escapes the
function, so it is not a leak edge for the open endpoint."""

from repro.padicotm.abstraction.vlink import VLink


def fine(sp, p0, ready):
    ep = VLink.connect(sp, p0, "peer", "port")
    try:
        if not ready:
            raise RuntimeError("retry")
    except RuntimeError:
        pass
    ep.send(sp, "x", 8)
    ep.close()
