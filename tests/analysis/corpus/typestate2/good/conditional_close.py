"""Good twin: a close on one branch must not poison the join point.

The fall-through path still holds a connected link; flagging the send
would be a path-insensitivity false positive."""

from repro.padicotm.abstraction.vlink import VLink


def fine(sp, p0, flaky):
    ep = VLink.connect(sp, p0, "peer", "port")
    if flaky:
        ep.close()
        return None
    ep.send(sp, "x", 8)
    ep.close()
    return True
