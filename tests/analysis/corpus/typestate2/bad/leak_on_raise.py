"""Seeded mutant: an exception edge leaks a connected endpoint.

The raise between connect and close escapes the function with the
link still open — no finally, no with, no handler.
"""

from repro.padicotm.abstraction.vlink import VLink


def broken(sp, p0, ready):
    ep = VLink.connect(sp, p0, "peer", "port")
    if not ready:
        raise RuntimeError("peer not ready")  # expect: tys-leak-on-raise
    ep.send(sp, "x", 8)
    ep.close()
