"""Seeded mutant: a non-cooperative NIC claim with no release path.

Exclusive claims park every other driver on the interface; leaking one
wedges the network until process exit.
"""


def leak(process):
    process.arbitration.claim_nic(  # expect: tys-unreleased-claim
        "san0", "BIP", "legacy", cooperative=False)
