"""Seeded mutant: two listeners bound to the same (process, port)."""

from repro.padicotm.abstraction.vlink import VLink


def broken(p0):
    first = VLink.listen(p0, "svc")
    second = VLink.listen(p0, "svc")  # expect: tys-double-bind
    return first, second
