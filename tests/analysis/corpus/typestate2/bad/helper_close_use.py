"""Seeded mutant: the close happens inside a helper the caller trusts.

Only an interprocedural close summary connects ``shutdown(ep)`` to the
caller's variable; the linear v1 scan was blind to this shape.
"""

from repro.padicotm.abstraction.vlink import VLink


def shutdown(link):
    link.close()


def broken(sp, p0):
    ep = VLink.connect(sp, p0, "peer", "port")
    shutdown(ep)
    ep.send(sp, "x", 8)  # expect: tys-use-after-close
