"""Seeded mutant: a never-connected endpoint is used inside a helper.

The caller constructs a raw endpoint and hands it to ``pump``; the
send fault is the helper's, but the blame belongs to the call site
that passed an unconnected link.
"""

from repro.padicotm.abstraction.vlink import VLinkEndpoint


def pump(sp, link):
    link.send(sp, "x", 8)


def broken(sp, rt, p0, p1, choice):
    ep = VLinkEndpoint(rt, p0, p1, choice)
    pump(sp, ep)  # expect: tys-send-before-connect
