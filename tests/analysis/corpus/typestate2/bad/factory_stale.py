"""Seeded mutant: a factory's return value carries its typestate.

``dial`` returns a connected link; the caller closes it and then
recvs.  Only return-type propagation makes the caller's ``ep`` a
tracked endpoint at all.
"""

from repro.padicotm.abstraction.vlink import VLink


def dial(sp, p0):
    return VLink.connect(sp, p0, "peer", "port")


def broken(sp, p0):
    ep = dial(sp, p0)
    ep.close()
    ep.recv(sp)  # expect: tys-use-after-close
