"""Seeded mutant: the None branch falls through instead of returning,
so the deref below is reachable with monitor=None."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        if self.monitor is None:
            pkt = b""
        self.monitor.on_send(pkt)  # expect: obs-guard
