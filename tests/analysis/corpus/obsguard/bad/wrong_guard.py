"""Seeded mutant: guarding one instrument does not license another."""


class Link:
    def __init__(self, monitor=None, tracer=None):
        self.monitor = monitor
        self.tracer = tracer

    def send(self, pkt):
        if self.tracer is not None:
            self.monitor.on_send(pkt)  # expect: obs-guard
