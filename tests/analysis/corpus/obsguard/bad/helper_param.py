"""Seeded mutant: the deref lives in a helper whose contract is
"caller guards"; passing an unguarded monitor in is the bug."""


def note_send(monitor, pkt):
    monitor.on_send(pkt)


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        note_send(self.monitor, pkt)  # expect: obs-guard
