"""Seeded mutant: a guard inside one branch does not dominate a later
deref at function scope."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        mon = self.monitor
        if mon is not None:
            mon.on_enqueue(pkt)
        mon.on_send(pkt)  # expect: obs-guard
