"""Seeded mutant: instrumentation call without the non-None guard."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        self.monitor.on_send(pkt)  # expect: obs-guard
        return pkt
