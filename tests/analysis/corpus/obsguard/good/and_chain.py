"""Clean: short-circuit and truthiness guards."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor
        self.debug = False

    def send(self, pkt):
        self.monitor is not None and self.monitor.on_send(pkt)
        if self.monitor and self.debug:
            self.monitor.on_debug(pkt)
        return pkt
