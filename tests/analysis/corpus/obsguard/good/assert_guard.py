"""Clean: an assert pins the monitor for the rest of the function."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def flush(self):
        mon = self.monitor
        assert mon is not None
        mon.on_flush()
