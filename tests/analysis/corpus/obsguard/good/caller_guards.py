"""Clean: the helper's contract is "caller guards", and the caller
does."""


def note_send(monitor, pkt):
    monitor.on_send(pkt)


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        if self.monitor is not None:
            note_send(self.monitor, pkt)
        return pkt
