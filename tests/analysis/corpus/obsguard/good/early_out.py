"""Clean: an early return on None dominates everything below."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        if self.monitor is None:
            return pkt
        self.monitor.on_send(pkt)
        self.monitor.on_flush()
        return pkt
