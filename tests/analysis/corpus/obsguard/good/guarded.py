"""Clean: the canonical guard shape."""


class Link:
    def __init__(self, monitor=None):
        self.monitor = monitor

    def send(self, pkt):
        if self.monitor is not None:
            self.monitor.on_send(pkt)
        return pkt
