"""Clean: ordinary helpers, nothing blocking anywhere."""


def double(x):
    return x * 2


def quadruple(x):
    return double(double(x))
