"""Clean: an inline-justified blocking use is sanitized out of the
summary — the justification covers the callers too."""

import time


def calibrate(delay):
    # wall-clock calibration runs before the kernel starts
    time.sleep(delay)  # repro-lint: disable=ker-sleep


def warm_up():
    calibrate(0.5)
