"""Clean: virtual-time sleep through the cooperative kernel."""


def backoff(process, delay):
    process.sleep(delay)


def retry_loop(process, task):
    for _ in range(3):
        task()
        backoff(process, 0.1)
