"""Seeded mutant: a helper that manufactures a real thread primitive
poisons its callers."""

import threading


def make_gate():
    return threading.Event()


def install(node):
    node.gate = make_gate()  # expect: ker-block-deep
