"""Seeded mutant: the blocking primitive is two calls away."""

import time


def nap():
    time.sleep(1.0)


def settle():
    nap()  # expect: ker-block-deep


def drive():
    settle()  # expect: ker-block-deep
