"""Seeded mutant: mutually recursive pair; the fixpoint must converge
and both directions of the cycle must carry the summary."""

import time


def ping(n):
    if n:
        return pong(n - 1)  # expect: ker-block-deep
    return 0


def pong(n):
    time.sleep(0.01)
    return ping(n)  # expect: ker-block-deep


def drive():
    return ping(3)  # expect: ker-block-deep
