"""Seeded mutant: the wrapper hides time.sleep from the direct ker-*
rules; every call site of the wrapper must still be flagged."""

import time


def backoff(delay):
    time.sleep(delay)


def retry_loop(task):
    for _ in range(3):
        task()
        backoff(0.1)  # expect: ker-block-deep
