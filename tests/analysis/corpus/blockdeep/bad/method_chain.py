"""Seeded mutant: blocking reachability through methods, including the
unique-method fallback for an untyped receiver."""

import socket


class Transport:
    def _dial(self, host):
        return socket.create_connection((host, 80))

    def connect(self, host):
        return self._dial(host)  # expect: ker-block-deep


def open_link(transport):
    return transport.connect("node0")  # expect: ker-block-deep
