"""Seeded mutant: unlocked read-modify-write across a sleep.

The canonical atomicity violation — the stale read survives a yield
where the sibling process increments the same counter.
"""

from repro.sim.kernel import SimKernel


class Counter:
    def __init__(self, kernel):
        self.kernel = kernel
        self.value = 0

    def bump(self, proc):
        v = self.value
        proc.sleep(1.0)
        self.value = v + 1  # expect: race-atomicity


def main():
    kernel = SimKernel()
    counter = Counter(kernel)
    kernel.spawn(counter.bump)
    kernel.spawn(counter.bump)
    kernel.run()


def scenario(kernel, san):
    """Differential twin: the same shape through the dynamic detector."""
    counter = san.tracked(Counter(kernel), label="counter")
    kernel.spawn(lambda p: Counter.bump(counter, p))
    kernel.spawn(lambda p: Counter.bump(counter, p))
    kernel.run()
