"""Seeded mutant: the lock only covers one side of the conflict.

``bump`` holds the lock across its read-modify-write window, but the
sibling ``reset`` writes the same counter without acquiring anything —
the lock protects nothing when only one party takes it.
"""

from repro.sim.kernel import SimKernel
from repro.sim.sync import SimLock


class Tally:
    def __init__(self, kernel):
        self.kernel = kernel
        self.lock = SimLock(kernel)
        self.count = 0

    def bump(self, proc):
        self.lock.acquire(proc)
        v = self.count
        proc.sleep(1.0)
        self.count = v + 1  # expect: race-atomicity
        self.lock.release(proc)

    def reset(self, proc):
        proc.sleep(0.5)
        self.count = 0


def main():
    kernel = SimKernel()
    tally = Tally(kernel)
    kernel.spawn(tally.bump)
    kernel.spawn(tally.reset)
    kernel.run()


def scenario(kernel, san):
    tally = san.tracked(Tally(kernel), label="tally")
    kernel.spawn(lambda p: Tally.bump(tally, p))
    kernel.spawn(lambda p: Tally.reset(tally, p))
    kernel.run()
