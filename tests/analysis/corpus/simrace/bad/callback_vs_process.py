"""Seeded mutant: a timer callback mutates state a process straddles.

The process arms ``self.slot`` and suspends across the very window in
which the scheduled callback fires and overwrites the slot — the
classic timer-vs-waiter interleaving with no ordering primitive.
"""

from repro.sim.kernel import SimKernel


class Mailbox:
    def __init__(self, kernel):
        self.kernel = kernel
        self.slot = None

    def waiter(self, proc):
        self.slot = "armed"  # expect: race-unlocked-shared
        proc.suspend()
        self.slot = None

    def on_timer(self):
        self.slot = "late"


def main():
    kernel = SimKernel()
    box = Mailbox(kernel)
    kernel.spawn(box.waiter)
    kernel.schedule(5.0, box.on_timer)
    kernel.run()


def scenario(kernel, san):
    box = san.tracked(Mailbox(kernel), label="box")
    kernel.spawn(lambda p: Mailbox.waiter(box, p))
    kernel.schedule(5.0, lambda: Mailbox.on_timer(box))
    kernel.run()
