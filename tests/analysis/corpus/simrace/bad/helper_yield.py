"""Seeded mutant: the yield hides two calls deep in helper functions.

``bump`` never calls a kernel primitive directly — it calls ``settle``
which calls ``pause`` which sleeps.  Only a transitive may-yield
summary sees that the read-modify-write window straddles a yield.
"""

from repro.sim.kernel import SimKernel


class Meter:
    def __init__(self, kernel):
        self.kernel = kernel
        self.level = 0

    def pause(self, proc):
        proc.sleep(0.5)

    def settle(self, proc):
        self.pause(proc)

    def bump(self, proc):
        v = self.level
        self.settle(proc)
        self.level = v + 1  # expect: race-atomicity


def main():
    kernel = SimKernel()
    meter = Meter(kernel)
    kernel.spawn(meter.bump)
    kernel.spawn(meter.bump)
    kernel.run()


def scenario(kernel, san):
    meter = san.tracked(Meter(kernel), label="meter")
    kernel.spawn(lambda p: Meter.bump(meter, p))
    kernel.spawn(lambda p: Meter.bump(meter, p))
    kernel.run()
