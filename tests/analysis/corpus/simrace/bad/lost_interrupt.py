"""Seeded mutant: the PR 2 WaitQueue lost-interrupt race, reintroduced.

``wait`` arms ``self.sleeper``, schedules an expiry callback and
suspends; the timer callback reads the field with no lock and no
ordering primitive.  When the waiter is woken and clears the field in
the same tick the timer fires, the interrupt is delivered to the wrong
(or no) process — exactly the bug the dynamic sanitizer caught in the
real WaitQueue before it grew its cancel-on-wake handshake.
"""

from repro.sim.kernel import SimKernel


class MiniWaitQueue:
    def __init__(self, kernel):
        self.kernel = kernel
        self.sleeper = None

    def wait(self, proc):
        self.sleeper = proc  # expect: race-unlocked-shared
        self.kernel.schedule(5.0, self._expire)
        proc.suspend()
        self.sleeper = None

    def _expire(self):
        waiter = self.sleeper
        if waiter is not None:
            self.kernel.wake(waiter)


def main():
    kernel = SimKernel()
    queue = MiniWaitQueue(kernel)
    kernel.spawn(queue.wait)
    kernel.run()


def scenario(kernel, san):
    queue = san.tracked(MiniWaitQueue(kernel), label="queue")
    kernel.spawn(lambda p: MiniWaitQueue.wait(queue, p))
    kernel.run()
