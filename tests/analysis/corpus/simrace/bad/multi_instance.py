"""Seeded mutant: a loop spawns many workers over one shared object.

A single ``spawn`` call inside a ``for`` means an unbounded number of
concurrent instances of the same body — the RMW window races against
its own siblings even though the source names only one entry point.
"""

from repro.sim.kernel import SimKernel


class Pool:
    def __init__(self, kernel):
        self.kernel = kernel
        self.busy = 0

    def work(self, proc):
        n = self.busy
        proc.sleep(1.0)
        self.busy = n + 1  # expect: race-atomicity


def main():
    kernel = SimKernel()
    pool = Pool(kernel)
    for _ in range(4):
        kernel.spawn(pool.work)
    kernel.run()


def scenario(kernel, san):
    pool = san.tracked(Pool(kernel), label="pool")
    for _ in range(4):
        kernel.spawn(lambda p: Pool.work(pool, p))
    kernel.run()
