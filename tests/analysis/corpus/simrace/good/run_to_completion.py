"""Good twin: unordered writes with no straddling window are benign.

Two processes each write ``self.last`` exactly once, atomically
between yields.  The schedule decides which write lands last, but no
reader ever observes a half-updated state: under run-to-completion
semantics this is last-writer-wins, not a race.

NOTE: no ``scenario`` here on purpose.  The dynamic vector-clock
detector flags any unordered write/write pair, so it WOULD report
this shape — that is the documented static attenuation: sim-race
requires straddle evidence (an access window spanning a yield) before
calling unordered accesses a hazard.  See docs/ANALYSIS.md.
"""

from repro.sim.kernel import SimKernel


class Blackboard:
    def __init__(self, kernel):
        self.kernel = kernel
        self.last = None

    def left(self, proc):
        proc.sleep(1.0)
        self.last = "left"

    def right(self, proc):
        proc.sleep(2.0)
        self.last = "right"


def main():
    kernel = SimKernel()
    board = Blackboard(kernel)
    kernel.spawn(board.left)
    kernel.spawn(board.right)
    kernel.run()
