"""Good twin: the memoization idiom — re-read after the yield.

The cache probe before the yield is discarded and the key re-read
afterwards; only the fresh post-yield value feeds the write, so the
stale-read window never exists.  This is the ORB ``_stub_class`` memo
shape that triage taught the checker to accept (fresh-read
suppression).

NOTE: no ``scenario`` here on purpose.  The dynamic detector would
still flag the unordered cache-dict writes from two processes filling
the same slot — benign lost-duplicate-work, another documented static
attenuation (see docs/ANALYSIS.md).
"""

from repro.sim.kernel import SimKernel


class StubCache:
    def __init__(self, kernel):
        self.kernel = kernel
        self.memo = None

    def lookup(self, proc):
        if self.memo is not None:
            return self.memo
        proc.sleep(1.0)  # simulate remote interface fetch
        if self.memo is not None:  # re-check: somebody filled it while we slept
            return self.memo
        self.memo = "stub"
        return self.memo


def main():
    kernel = SimKernel()
    cache = StubCache(kernel)
    kernel.spawn(cache.lookup)
    kernel.spawn(cache.lookup)
    kernel.run()
