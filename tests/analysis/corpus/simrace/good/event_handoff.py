"""Good twin: a SimEvent set()/wait() pair orders the two accesses.

The producer publishes, then signals; the consumer waits on the same
event before reading.  The matching release/acquire on one primitive is
a static happens-before edge — the same attenuation the dynamic
detector derives from vector-clock joins at hb_release/hb_acquire.
"""

from repro.sim.kernel import SimKernel
from repro.sim.sync import SimEvent


class Handoff:
    def __init__(self, kernel):
        self.kernel = kernel
        self.ready = SimEvent(kernel)
        self.payload = None

    def producer(self, proc):
        self.payload = "data"
        proc.sleep(1.0)
        self.payload = "more"
        self.ready.set()

    def consumer(self, proc):
        self.ready.wait(proc)
        value = self.payload
        return value


def main():
    kernel = SimKernel()
    box = Handoff(kernel)
    kernel.spawn(box.producer)
    kernel.spawn(box.consumer)
    kernel.run()
