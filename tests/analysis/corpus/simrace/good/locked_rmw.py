"""Good twin: the RMW window is protected by a lock both sides take."""

from repro.sim.kernel import SimKernel
from repro.sim.sync import SimLock


class Counter:
    def __init__(self, kernel):
        self.kernel = kernel
        self.lock = SimLock(kernel)
        self.value = 0

    def bump(self, proc):
        self.lock.acquire(proc)
        v = self.value
        proc.sleep(1.0)
        self.value = v + 1
        self.lock.release(proc)


def main():
    kernel = SimKernel()
    counter = Counter(kernel)
    kernel.spawn(counter.bump)
    kernel.spawn(counter.bump)
    kernel.run()
