"""Good twin: constructor writes are setup, not racing accesses.

Everything written inside ``__init__`` happens before any process is
spawned on the object; the analysis excludes setup writes from window
and cross-context pairing.
"""

from repro.sim.kernel import SimKernel


class Gauge:
    def __init__(self, kernel, limit):
        self.kernel = kernel
        self.limit = limit
        self.reading = 0

    def watch(self, proc):
        proc.sleep(1.0)
        if self.reading > self.limit:
            return True
        return False

    def sample(self, proc):
        proc.sleep(2.0)
        self.reading = 7


def main():
    kernel = SimKernel()
    gauge = Gauge(kernel, limit=10)
    kernel.spawn(gauge.watch)
    kernel.spawn(gauge.sample)
    kernel.run()
