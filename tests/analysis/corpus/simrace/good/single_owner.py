"""Good twin: one process owns the object; nobody can interleave.

A single spawn of a single body means the RMW window straddles a yield
with no second context to observe it — run-to-completion semantics
make it atomic in every schedule.
"""

from repro.sim.kernel import SimKernel


class Counter:
    def __init__(self, kernel):
        self.kernel = kernel
        self.value = 0

    def bump(self, proc):
        v = self.value
        proc.sleep(1.0)
        self.value = v + 1


def main():
    kernel = SimKernel()
    counter = Counter(kernel)
    kernel.spawn(counter.bump)
    kernel.run()


def scenario(kernel, san):
    counter = san.tracked(Counter(kernel), label="counter")
    kernel.spawn(lambda p: Counter.bump(counter, p))
    kernel.run()
