"""Clean: rebinding the name severs it from the published object."""


def marshal(stream, payload):
    stream.write_bulk(payload)
    payload = bytearray(8)
    payload[0] = 1
    return payload
