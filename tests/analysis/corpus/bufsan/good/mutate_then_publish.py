"""Clean: mutation happens before the publish, which is the normal
fill-then-send order."""


def marshal(stream, payload):
    payload.extend(b"header")
    payload[0] = 7
    stream.write_bulk(payload)
