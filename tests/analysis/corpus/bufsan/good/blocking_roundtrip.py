"""Clean: blocking Send returns only after the matching delivery, so
the ping-pong reuse of the same buffer is the sanctioned pattern (this
is the netbench idiom — regression guard against re-flagging it)."""


def pingpong(comm, buf, peer, rounds):
    for _ in range(rounds):
        comm.Send(buf, dest=peer)
        comm.Recv(buf, source=peer)
    return buf
