"""Clean: wait() completes the delivery; the buffer is reusable."""


def exchange(comm, buf, peer):
    req = comm.Isend(buf, dest=peer)
    req.wait()
    buf[0] = 99
    return buf
