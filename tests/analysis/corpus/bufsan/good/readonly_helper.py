"""Clean: the callee only reads the published buffer (no mut-param
summary), so passing it along is fine."""


def checksum(view):
    total = 0
    for byte in view:
        total = (total + byte) & 0xFF
    return total


def run(stream, data):
    stream.write_bulk(data)
    return checksum(data)
