"""Clean: a defensive copy was published, not the live buffer."""


def marshal(stream, payload):
    stream.write_bulk(bytes(payload))
    payload[0] = 0
    return stream
