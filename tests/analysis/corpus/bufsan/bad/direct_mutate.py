"""Seeded mutant: straight-line mutation after a zero-copy publish."""


def marshal(stream, payload):
    stream.write_bulk(payload)
    payload[0] = 0  # expect: buf-mutate-after-publish
    return stream
