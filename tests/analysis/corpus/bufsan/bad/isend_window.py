"""Seeded mutant: nonblocking send references the buffer until wait();
scribbling inside that window corrupts the in-flight payload."""


def exchange(comm, buf, peer):
    req = comm.Isend(buf, dest=peer)
    buf[0] = 99  # expect: buf-mutate-after-publish
    req.wait()
    return req
