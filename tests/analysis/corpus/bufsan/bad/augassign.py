"""Seeded mutant: augmented assignment is an in-place mutation."""


def frame(stream, payload):
    stream.write_bulk(payload)
    payload += b"trailer"  # expect: buf-mutate-after-publish
    return payload
