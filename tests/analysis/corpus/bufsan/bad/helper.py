"""Wrapper around the zero-copy publish seed (no mutation here)."""


def send_zero_copy(stream, arr):
    stream.write_bulk(arr)
