"""Seeded mutant: a published buffer handed to a callee that mutates
its argument (mut-param summary)."""


def fill(dst):
    dst.append(0)


def run(stream, data):
    stream.write_bulk(data)
    fill(data)  # expect: buf-escape-mutation
