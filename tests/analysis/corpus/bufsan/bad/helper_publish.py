"""Seeded mutant: the publish happens inside a project helper, so it is
only visible through the helper's pub-param summary."""

from helper import send_zero_copy


def run(stream, data):
    send_zero_copy(stream, data)
    data[0] = 1  # expect: buf-mutate-after-publish
