"""Seeded mutant: the view wrapper must not hide the aliased buffer."""


def marshal(stream, buf):
    view = memoryview(buf)
    stream.write_bulk(view)
    buf.extend(b"x")  # expect: buf-mutate-after-publish
