"""Patterns the route-in-loop rule must NOT flag: anything that varies
per iteration, anything it cannot prove invariant, and the hoisted
form itself."""


def fan_out(topo, src, hosts):
    # destination is the loop variable
    for dst in hosts:
        topo.route(src, dst)


def probe(fabrics, a, b):
    # receiver is the loop variable
    for fab in fabrics:
        fab.route(a, b)


def wire_sites(topo, a, b, sites):
    # fabric name varies with the loop variable (grid-generator idiom)
    for s in sites:
        topo.route(a, b, f"{s}-san")


def walk(topo, src, dst):
    # src is rebound inside the loop body
    while src != dst:
        hop = topo.route(src, dst)
        src = hop[0].dst


def sample(topo, dst, n):
    # call arguments are never provably invariant
    for _ in range(n):
        topo.route(pick_src(), dst)


def splat(topo, pair, kw, n):
    # starred/double-starred arguments stay silent
    for _ in range(n):
        topo.route(*pair)
        topo.route("a", "b", **kw)


def keyword_variant(topo, a, b, fabrics):
    for fab in fabrics:
        topo.route(a, b, fabric=fab)


def hoisted(topo, src, dst, payloads):
    # the fix the rule asks for
    path = topo.route(src, dst)
    for payload in payloads:
        push(path, payload)


def single_arg(router, messages):
    # not the Topology/Fabric route(src, dst, ...) signature
    for msg in messages:
        router.route(msg)


def deferred(topo, src, dst, items):
    # the closure runs elsewhere, not once per iteration
    for item in items:
        def resolve():
            return topo.route(src, dst)
        yield item, resolve


def deliberate(topo, src, dst, n):
    # measuring resolver latency itself: the repeat is the point
    for _ in range(n):
        topo.route(src, dst)  # repro-lint: disable=perf-route-in-loop


def pick_src():
    return "h0"


def push(path, payload):
    pass
