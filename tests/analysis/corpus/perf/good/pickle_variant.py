"""Patterns the pickle-in-loop rule must NOT flag: per-iteration
payloads, unprovable invariance, other serialisers, and the hoisted
form itself."""

import json
import pickle


def scatter(comm, items, peers):
    # the serialised object is the loop variable
    for dst, item in zip(peers, items):
        comm.push(dst, pickle.dumps(item))


def indexed(comm, objs, peers):
    # subscript varies with the loop variable
    for dst in peers:
        comm.push(dst, pickle.dumps(objs[dst]))


def accumulate(comm, obj, op, peers):
    # acc is rebound inside the loop (reduction idiom)
    acc = obj
    for src in peers:
        acc = op(acc, comm.pull(src))
        comm.push(src, pickle.dumps(acc))


def fresh_each_time(comm, peers):
    # call arguments are never provably invariant
    for dst in peers:
        comm.push(dst, pickle.dumps(sample()))


def splat(comm, args, kw, peers):
    # starred/double-starred arguments stay silent
    for dst in peers:
        comm.push(dst, pickle.dumps(*args))
        comm.push(dst, pickle.dumps("x", **kw))


def not_the_module(codec, obj, peers):
    # receiver is not the pickle module
    for dst in peers:
        send(dst, codec.dumps(obj))
        send(dst, json.dumps(obj))


def hoisted(comm, obj, peers):
    # the fix the rule asks for
    data = pickle.dumps(obj)
    for dst in peers:
        comm.push(dst, data)


def deferred(comm, obj, peers):
    # the closure runs elsewhere, not once per iteration
    for dst in peers:
        def encode():
            return pickle.dumps(obj)
        yield dst, encode


def deliberate(obj, n):
    # benchmarking the serialiser itself: the repeat is the point
    for _ in range(n):
        pickle.dumps(obj)  # repro-lint: disable=perf-pickle-in-loop


def sample():
    return {"t": 0}


def send(dst, data):
    pass
