"""Accumulation patterns the perf rules must NOT flag."""

from collections import deque


def drain(items):
    queue = deque(items)
    out = []
    while queue:
        out.append(queue.popleft())
    return out


def assemble(chunks):
    buf = bytearray()
    for chunk in chunks:
        buf += chunk
    return bytes(buf)


def totals(sizes):
    acc = 0
    for n in sizes:
        acc += n
    return acc


def broadcast(out, links):
    data = out.getvalue()
    for link in links:
        link.push(data)


def bounded(pair):
    # a two-element list drained once: the O(n) shift is O(1) here
    return pair.pop(0)  # repro-lint: disable=perf-list-pop0
