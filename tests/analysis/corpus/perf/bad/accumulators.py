"""Seeded mutants: the quadratic accumulation idioms the per-file
perf rules exist for."""


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop(0))  # expect: perf-list-pop0
    return out


def assemble(chunks):
    buf = b""
    for chunk in chunks:
        buf += chunk  # expect: perf-bytes-concat
    return buf


def broadcast(out, links):
    for link in links:
        link.push(out.getvalue())  # expect: perf-getvalue-loop
