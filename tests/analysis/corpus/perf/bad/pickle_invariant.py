"""Seeded mutants: ``pickle.dumps()`` re-serialising the same
loop-invariant object every iteration — the double-charge idiom the MPI
collectives' send loops used to have."""

import pickle


def broadcast_naive(comm, obj, peers):
    for dst in peers:
        data = pickle.dumps(obj)  # expect: perf-pickle-in-loop
        comm.push(dst, data)


def retry_send(sock, request, n):
    while n > 0:
        sock.send(pickle.dumps(request, protocol=2))  # expect: perf-pickle-in-loop
        n -= 1


class Publisher:
    def __init__(self, state):
        self.state = state

    def publish(self, subscribers):
        for sub in subscribers:
            sub.deliver(pickle.dumps(self.state))  # expect: perf-pickle-in-loop


def fanout_header(queue, kind, items):
    # the f-string only mentions ``kind``, which the loop never rebinds
    for item in items:
        queue.meta(pickle.dumps(f"hdr:{kind}"))  # expect: perf-pickle-in-loop
        queue.put(item)
