"""Seeded mutants: ``route()`` re-resolved inside loops whose receiver
and endpoints never change between iterations."""


def retransmit(topo, src, dst, payloads):
    for payload in payloads:
        path = topo.route(src, dst)  # expect: perf-route-in-loop
        for link in path:
            link.push(payload)


def poll(fabric, a, b):
    while pending():
        fabric.route(a, b, "g0-san")  # expect: perf-route-in-loop


class Mover:
    def __init__(self, topo, fabric):
        self.topo = topo
        self.fabric = fabric

    def drain(self, src, dst, chunks):
        for chunk in chunks:
            hops = self.topo.route(src, dst, self.fabric)  # expect: perf-route-in-loop
            push(hops, chunk)


def wire(topo, a, b, site, n):
    # the f-string only mentions ``site``, which the loop never rebinds
    for _ in range(n):
        topo.route(a, b, f"{site}-san")  # expect: perf-route-in-loop


def pending():
    return False


def push(hops, chunk):
    pass
