"""Cooperative-kernel safety family: true positives and negatives."""

from __future__ import annotations

import pytest

from repro.analysis import DEFAULT_CONFIG
from tests.analysis.conftest import lint_text

KER_RULES = {"ker-thread", "ker-sleep", "ker-socket", "ker-subprocess"}


def ker(source: str, **kw) -> list[str]:
    return [f.rule for f in lint_text(source, rules=KER_RULES, **kw)]


@pytest.mark.parametrize("source,rule", [
    ("import threading\nlock = threading.Lock()", "ker-thread"),
    ("import threading\nev = threading.Event()", "ker-thread"),
    ("import threading\ncv = threading.Condition()", "ker-thread"),
    ("import threading as th\nt = th.Thread(target=print)", "ker-thread"),
    ("from threading import Lock\nlock = Lock()", "ker-thread"),
    ("import time\ntime.sleep(0.1)", "ker-sleep"),
    ("from time import sleep\nsleep(1)", "ker-sleep"),
    ("import socket", "ker-socket"),
    ("from socket import create_connection", "ker-socket"),
    ("import select", "ker-socket"),
    ("import subprocess", "ker-subprocess"),
    ("import os\nos.system('ls')", "ker-subprocess"),
    ("import os\npid = os.fork()", "ker-subprocess"),
], ids=lambda v: v.replace("\n", "; ") if isinstance(v, str) else v)
def test_true_positive(source, rule):
    assert rule in ker(source)


@pytest.mark.parametrize("source", [
    # the simulated equivalents are exactly what the rules point to
    "def f(proc):\n    proc.sleep(1.0)",
    "from repro.sim.sync import SimLock\n",
    # time/os modules are fine for their deterministic parts
    "import os\np = os.path.join('a', 'b')",
    "import time\nfmt = time.strftime",
], ids=["sim-sleep", "sim-lock", "os-path", "time-attr"])
def test_true_negative(source):
    assert ker(source) == []


def test_backend_file_is_allowlisted():
    """The ThreadBackend semaphore handshake is exempt — in backends.py
    only (where the switch-backend refactor moved it out of kernel.py),
    and only for ker-thread."""
    source = """
        import threading
        sem = threading.Semaphore(0)
    """
    assert ker(source) == ["ker-thread"]
    assert ker(source, path="src/repro/sim/backends.py",
               module="repro.sim.backends") == []
    # kernel.py itself is threading-free now and no longer exempt
    assert ker(source, path="src/repro/sim/kernel.py",
               module="repro.sim.kernel") == ["ker-thread"]
    # the exemption is per-rule: a time.sleep in backends.py still fires
    assert ker("import time\ntime.sleep(1)",
               path="src/repro/sim/backends.py",
               module="repro.sim.backends") == ["ker-sleep"]
    assert DEFAULT_CONFIG.file_allow[("src/repro/sim/backends.py",
                                      "ker-thread")]
