"""Suppression comments, the baseline mechanism, and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    Finding,
    apply_baseline,
    format_baseline,
    load_baseline,
)
from repro.analysis.cli import main as cli_main
from tests.analysis.conftest import lint_text


# ---------------------------------------------------------------------------
# inline suppressions
# ---------------------------------------------------------------------------
def test_line_suppression_silences_only_that_line():
    findings = lint_text("""
        import time
        a = time.time()  # repro-lint: disable=det-wallclock
        b = time.time()
    """)
    assert [f.rule for f in findings] == ["det-wallclock"]
    assert findings[0].line == 4


def test_suppression_is_per_rule():
    findings = lint_text(
        "import time\n"
        "time.sleep(time.time())  # repro-lint: disable=ker-sleep\n")
    assert [f.rule for f in findings] == ["det-wallclock"]


def test_multi_rule_and_all_suppressions():
    assert lint_text(
        "import time\n"
        "time.sleep(time.time())"
        "  # repro-lint: disable=ker-sleep,det-wallclock\n") == []
    assert lint_text(
        "import time\n"
        "time.sleep(time.time())  # repro-lint: disable=all\n") == []


def test_file_wide_suppression():
    findings = lint_text("""
        # Real wall-clock use is this file's whole point.
        # repro-lint: disable-file=det-wallclock
        import time
        a = time.time()
        b = time.time()
        time.sleep(1)
    """)
    assert [f.rule for f in findings] == ["ker-sleep"]


def test_pragma_inside_string_literal_is_not_a_suppression():
    findings = lint_text(
        'import time\n'
        'x = "# repro-lint: disable-file=det-wallclock"\n'
        't = time.time()\n')
    assert [f.rule for f in findings] == ["det-wallclock"]


def test_pragma_on_last_line_covers_the_whole_statement():
    # the finding is reported at the statement's first line; the pragma
    # sits where a human writes it — after the closing paren
    findings = lint_text("""
        import time
        stamps = dict(
            t0=time.time(),
            t1=time.time(),
        )  # repro-lint: disable=det-wallclock
    """)
    assert findings == []


def test_pragma_on_first_line_covers_the_whole_statement():
    findings = lint_text("""
        import time
        stamps = dict(  # repro-lint: disable=det-wallclock
            t0=time.time(),
        )
    """)
    assert findings == []


def test_multiline_suppression_does_not_leak_to_neighbours():
    findings = lint_text("""
        import time
        a = dict(
            t=time.time(),
        )  # repro-lint: disable=det-wallclock
        b = time.time()
    """)
    assert [(f.rule, f.line) for f in findings] == [("det-wallclock", 6)]


def test_standalone_comment_pragma_covers_only_its_own_line():
    # a pragma on a comment line between statements is not attached to
    # the statement below it — trailing placement is the contract
    findings = lint_text("""
        import time
        # repro-lint: disable=det-wallclock
        t = time.time()
    """)
    assert [f.rule for f in findings] == ["det-wallclock"]


def test_suppressions_json_round_trip():
    from repro.analysis.suppress import Suppressions
    source = ("import time\n"
              "a = dict(\n"
              "    t=time.time(),\n"
              ")  # repro-lint: disable=det-wallclock\n"
              "# repro-lint: disable-file=ker-sleep\n")
    scanned = Suppressions.scan(source)
    restored = Suppressions.from_json(scanned.to_json())
    for line in range(1, 6):
        for rule in ("det-wallclock", "ker-sleep", "det-random"):
            assert restored.is_suppressed(rule, line) == \
                scanned.is_suppressed(rule, line)


# ---------------------------------------------------------------------------
# baseline mechanics
# ---------------------------------------------------------------------------
def _finding(line_text: str = "x = time.time()") -> Finding:
    return Finding("det-wallclock", "msg", "src/repro/sim/x.py", 10,
                   source_line=line_text)


def test_fingerprint_is_content_addressed():
    # moving the line does not change the fingerprint...
    a = Finding("det-wallclock", "msg", "p.py", 10, source_line="x = 1")
    b = Finding("det-wallclock", "msg", "p.py", 99, source_line="x = 1")
    assert a.fingerprint == b.fingerprint
    # ...but editing the line, the rule, or the file does
    assert a.fingerprint != Finding("det-wallclock", "msg", "p.py", 10,
                                    source_line="x = 2").fingerprint
    assert a.fingerprint != Finding("det-random", "msg", "p.py", 10,
                                    source_line="x = 1").fingerprint
    assert a.fingerprint != Finding("det-wallclock", "msg", "q.py", 10,
                                    source_line="x = 1").fingerprint


def test_baseline_roundtrip(tmp_path):
    f = _finding()
    path = tmp_path / "baseline"
    path.write_text(format_baseline([f]))
    fingerprints = load_baseline(path)
    assert f.fingerprint in fingerprints
    fresh, stale = apply_baseline([f], fingerprints)
    assert fresh == [] and stale == set()


def test_baseline_lets_new_findings_through(tmp_path):
    old = _finding()
    path = tmp_path / "baseline"
    path.write_text(format_baseline([old]))
    new = Finding("ker-sleep", "msg", "src/repro/sim/y.py", 3,
                  source_line="time.sleep(1)")
    fresh, stale = apply_baseline([old, new], load_baseline(path))
    assert fresh == [new]
    assert stale == set()


def test_baseline_reports_stale_entries(tmp_path):
    path = tmp_path / "baseline"
    path.write_text(format_baseline([_finding()]))
    fresh, stale = apply_baseline([], load_baseline(path))
    assert fresh == [] and len(stale) == 1


def test_baseline_ignores_comments_and_blanks(tmp_path):
    path = tmp_path / "baseline"
    path.write_text("# header\n\nabc123def456  det-x  src/f.py:1  # why\n")
    assert load_baseline(path) == {"abc123def456"}


# ---------------------------------------------------------------------------
# CLI end to end (against a synthetic project)
# ---------------------------------------------------------------------------
@pytest.fixture
def project(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "__init__.py").write_text("")
    (pkg / "__init__.py").write_text("")
    (pkg / "app.py").write_text(
        "import time\n\n\ndef tick():\n    return time.time()\n")
    return tmp_path


def test_cli_exit_codes_and_baseline_cycle(project, capsys, monkeypatch):
    monkeypatch.chdir(project)
    # dirty tree -> exit 1, finding on stdout
    assert cli_main(["src"]) == 1
    out = capsys.readouterr().out
    assert "det-wallclock" in out and "app.py:5" in out
    # accept it into the baseline -> exit 0
    assert cli_main(["--update-baseline", "src"]) == 0
    capsys.readouterr()
    assert cli_main(["src"]) == 0
    # --no-baseline still reports it
    assert cli_main(["--no-baseline", "src"]) == 1
    capsys.readouterr()
    # fixing the file makes the entry stale but the tree clean
    (project / "src" / "repro" / "sim" / "app.py").write_text(
        "def tick(proc):\n    return proc.kernel.now\n")
    assert cli_main(["src"]) == 0
    assert "stale" in capsys.readouterr().err


def test_cli_json_output(project, monkeypatch, capsys):
    monkeypatch.chdir(project)
    assert cli_main(["--json", "src"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "det-wallclock"
    assert payload[0]["path"] == "src/repro/sim/app.py"
    assert payload[0]["fingerprint"]


def test_cli_list_rules(capsys):
    assert cli_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("det-wallclock", "ker-thread", "lay-upward", "idl-dup-op"):
        assert rule in out


def test_cli_missing_path(capsys):
    assert cli_main(["definitely/not/here"]) == 2
