"""Differential harness: static sim-race verdicts vs the dynamic
vector-clock detector, over the seeded-mutant corpus.

Every simrace corpus program that defines ``scenario(kernel, san)`` is
executed under the baseline kernel plus several seeded kernels (the
same schedule freedom ``explore_schedules`` exercises), with the shared
object wrapped by ``san.tracked``.  The contract checked here is
one-directional soundness over the corpus:

    every race the dynamic detector observes in some schedule must be
    statically flagged by a ``race-*`` finding on the same key in the
    same file.

The converse is deliberately NOT required — sim-race over-approximates.
Documented divergences (see docs/ANALYSIS.md "Static vs dynamic race
detection"):

* static-only: sim-race reasons over all schedules at once, so it can
  flag windows no finite seed set happens to expose;
* dynamic-only: the vector-clock detector flags *any* unordered
  write/write pair, including benign last-writer-wins updates with no
  straddling window (``good/run_to_completion.py``) and the
  re-checked memoization idiom (``good/fresh_read.py``) — those corpus
  files carry no ``scenario`` precisely because the dynamic verdict
  differs by design there.
"""

import importlib.util
import re
from pathlib import Path

import pytest

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import run_analysis
from repro.sanitizer import Sanitizer
from repro.sim.kernel import SimKernel

CORPUS = Path(__file__).parent / "corpus" / "simrace"
SEEDS = (1, 2, 3, 4)

_KEY_RE = re.compile(r"(?:data race|atomicity violation) on ([\w.]+):")


def _load(path):
    spec = importlib.util.spec_from_file_location(
        f"differential_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _scenario_files():
    out = []
    for sub in ("bad", "good"):
        for path in sorted((CORPUS / sub).glob("*.py")):
            if "def scenario(" in path.read_text():
                out.append(path)
    assert out, "no scenario-bearing corpus files found"
    return out


def _static_keys():
    """file name -> set of key leaves flagged by race-* rules."""
    keys = {}
    for sub in ("bad", "good"):
        corpus_dir = CORPUS / sub
        findings = run_analysis([corpus_dir], DEFAULT_CONFIG,
                                project_root=corpus_dir)
        for f in findings:
            if not f.rule.startswith("race-"):
                continue
            match = _KEY_RE.search(f.message)
            assert match, f"unparseable race message: {f.message!r}"
            leaf = match.group(1).rsplit(".", 1)[-1]
            keys.setdefault(f.path, set()).add(leaf)
    return keys


def _dynamic_races(module):
    """All (key, seed) races the detector reports across the seed set."""
    races = []
    for seed in (None, *SEEDS):
        kernel = SimKernel() if seed is None else SimKernel(seed=seed)
        san = Sanitizer(kernel)
        module.scenario(kernel, san)
        races.extend((r.key, seed) for r in san.races)
    return races


@pytest.mark.parametrize("path", _scenario_files(),
                         ids=lambda p: f"{p.parent.name}/{p.name}")
def test_every_dynamic_race_is_statically_flagged(path):
    static = _static_keys().get(path.name, set())
    for key, seed in _dynamic_races(_load(path)):
        assert key in static, (
            f"dynamic detector saw a race on {key!r} (seed={seed}) in "
            f"{path.name} that sim-race did not flag statically "
            f"(static keys: {sorted(static)})")


def test_the_dynamic_detector_actually_fires_on_the_corpus():
    # guard against a vacuous pass: at least one seeded mutant must
    # race observably under some schedule
    total = sum(len(_dynamic_races(_load(p))) for p in _scenario_files())
    assert total >= 1


def test_good_corpus_scenarios_never_race_dynamically():
    # the good twins that do carry a scenario are schedule-clean, so
    # both detectors agree on them in both directions
    for path in sorted((CORPUS / "good").glob("*.py")):
        if "def scenario(" not in path.read_text():
            continue
        races = _dynamic_races(_load(path))
        assert races == [], f"{path.name} raced dynamically: {races}"
