"""Transitive blocking-call detection (``ker-block-deep``)."""

from __future__ import annotations

WRAPPED = {
    "wrap.py": """\
        import time

        def backoff(delay):
            time.sleep(delay)

        def retry_loop(task):
            task()
            backoff(0.1)
    """,
}


def test_direct_rules_miss_the_wrapped_call(lint_project):
    # regression for the pre-v2 blind spot: the direct ker-* rules see
    # only the helper's body — the caller's line is invisible to them
    found = lint_project(WRAPPED)
    direct = [f for f in found if f.rule == "ker-sleep"]
    assert [f.line for f in direct] == [4]          # inside the helper
    assert all(f.line != 8 for f in direct)          # never the caller


def test_deep_rule_flags_the_wrapping_call_site(lint_project):
    found = lint_project(WRAPPED, rules={"ker-block-deep"})
    (f,) = found
    assert (f.path, f.line) == ("wrap.py", 8)
    assert "time.sleep" in f.message
    assert "ker-sleep at wrap.py:4" in f.message
    assert "backoff()" in f.message


def test_chain_is_reported_across_two_hops(lint_project):
    found = lint_project({"m.py": """\
        import time

        def nap():
            time.sleep(1.0)

        def settle():
            nap()

        def drive():
            settle()
    """}, rules={"ker-block-deep"})
    by_line = {f.line: f for f in found}
    assert set(by_line) == {7, 10}
    assert "settle() -> nap()" in by_line[10].message


def test_mutual_recursion_converges_and_flags_all_sites(lint_project):
    found = lint_project({"m.py": """\
        import time

        def ping(n):
            if n:
                return pong(n - 1)
            return 0

        def pong(n):
            time.sleep(0.01)
            return ping(n)

        def drive():
            return ping(3)
    """}, rules={"ker-block-deep"})
    assert {f.line for f in found} == {5, 10, 13}


def test_suppressed_origin_is_sanitized_out(lint_project):
    # a justified (inline-suppressed) blocking use must not poison its
    # callers: the justification covers them too
    found = lint_project({"m.py": """\
        import time

        def calibrate(delay):
            time.sleep(delay)  # repro-lint: disable=ker-sleep

        def warm_up():
            calibrate(0.5)
    """})
    assert [f for f in found if f.rule.startswith("ker-")] == []


def test_cross_file_blocking_helper(lint_project):
    found = lint_project({
        "util.py": """\
            import threading

            def make_gate():
                return threading.Event()
        """,
        "node.py": """\
            from util import make_gate

            def install(node):
                node.gate = make_gate()
        """,
    }, rules={"ker-block-deep"})
    (f,) = found
    assert (f.path, f.line) == ("node.py", 4)
    assert "ker-thread" in f.message


def test_blocking_wrapper_of_decorated_collective_flags_callers(lint_project):
    # regression: calling a decorated function runs the decorator's
    # wrapper closure, so wrapper-side blocking must reach call sites
    # of the *decorated* function — the exact shape of the MPI
    # ``@_collective`` observability wrapper
    found = lint_project({"comm.py": """\
        import functools
        import time

        def _collective(op):
            def deco(fn):
                @functools.wraps(fn)
                def wrapper(self, *args, **kwargs):
                    time.sleep(0.001)
                    return fn(self, *args, **kwargs)
                return wrapper
            return deco

        class Comm:
            @_collective("bcast")
            def bcast(self, buf):
                return buf

        def exchange(comm, buf):
            comm.bcast(buf)
    """}, rules={"ker-block-deep"})
    by_line = {f.line: f for f in found}
    # the caller of the decorated collective is flagged, and the chain
    # goes through the wrapper closure the decorator installed
    assert 19 in by_line
    assert "time.sleep" in by_line[19].message
    assert "bcast() -> wrapper()" in by_line[19].message
