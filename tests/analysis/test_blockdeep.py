"""Transitive blocking-call detection (``ker-block-deep``)."""

from __future__ import annotations

WRAPPED = {
    "wrap.py": """\
        import time

        def backoff(delay):
            time.sleep(delay)

        def retry_loop(task):
            task()
            backoff(0.1)
    """,
}


def test_direct_rules_miss_the_wrapped_call(lint_project):
    # regression for the pre-v2 blind spot: the direct ker-* rules see
    # only the helper's body — the caller's line is invisible to them
    found = lint_project(WRAPPED)
    direct = [f for f in found if f.rule == "ker-sleep"]
    assert [f.line for f in direct] == [4]          # inside the helper
    assert all(f.line != 8 for f in direct)          # never the caller


def test_deep_rule_flags_the_wrapping_call_site(lint_project):
    found = lint_project(WRAPPED, rules={"ker-block-deep"})
    (f,) = found
    assert (f.path, f.line) == ("wrap.py", 8)
    assert "time.sleep" in f.message
    assert "ker-sleep at wrap.py:4" in f.message
    assert "backoff()" in f.message


def test_chain_is_reported_across_two_hops(lint_project):
    found = lint_project({"m.py": """\
        import time

        def nap():
            time.sleep(1.0)

        def settle():
            nap()

        def drive():
            settle()
    """}, rules={"ker-block-deep"})
    by_line = {f.line: f for f in found}
    assert set(by_line) == {7, 10}
    assert "settle() -> nap()" in by_line[10].message


def test_mutual_recursion_converges_and_flags_all_sites(lint_project):
    found = lint_project({"m.py": """\
        import time

        def ping(n):
            if n:
                return pong(n - 1)
            return 0

        def pong(n):
            time.sleep(0.01)
            return ping(n)

        def drive():
            return ping(3)
    """}, rules={"ker-block-deep"})
    assert {f.line for f in found} == {5, 10, 13}


def test_suppressed_origin_is_sanitized_out(lint_project):
    # a justified (inline-suppressed) blocking use must not poison its
    # callers: the justification covers them too
    found = lint_project({"m.py": """\
        import time

        def calibrate(delay):
            time.sleep(delay)  # repro-lint: disable=ker-sleep

        def warm_up():
            calibrate(0.5)
    """})
    assert [f for f in found if f.rule.startswith("ker-")] == []


def test_cross_file_blocking_helper(lint_project):
    found = lint_project({
        "util.py": """\
            import threading

            def make_gate():
                return threading.Event()
        """,
        "node.py": """\
            from util import make_gate

            def install(node):
                node.gate = make_gate()
        """,
    }, rules={"ker-block-deep"})
    (f,) = found
    assert (f.path, f.line) == ("node.py", 4)
    assert "ker-thread" in f.message
