"""Determinism checker family: true positives and true negatives."""

from __future__ import annotations

import pytest

from tests.analysis.conftest import lint_text

DET_RULES = {"det-wallclock", "det-random", "det-entropy", "det-set-order"}


def det(source: str) -> list[str]:
    return [f.rule for f in lint_text(source, rules=DET_RULES)]


# ---------------------------------------------------------------------------
# true positives
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source,rule", [
    ("import time\nt = time.time()", "det-wallclock"),
    ("import time as clk\nt = clk.monotonic()", "det-wallclock"),
    ("from time import perf_counter\nt = perf_counter()", "det-wallclock"),
    ("from datetime import datetime\nd = datetime.now()", "det-wallclock"),
    ("import datetime\nd = datetime.datetime.utcnow()", "det-wallclock"),
    ("import random\nx = random.random()", "det-random"),
    ("import random\nrandom.shuffle([1, 2])", "det-random"),
    ("import random\nrandom.seed(7)", "det-random"),
    ("from random import choice\nx = choice([1])", "det-random"),
    ("import os\nkey = os.urandom(16)", "det-entropy"),
    ("import uuid\nu = uuid.uuid4()", "det-entropy"),
    ("import secrets\ntok = secrets.token_hex()", "det-entropy"),
    ("import random\nr = random.SystemRandom()", "det-entropy"),
], ids=lambda v: v.replace("\n", "; ") if isinstance(v, str) else v)
def test_true_positive(source, rule):
    assert det(source) == [rule]


@pytest.mark.parametrize("source", [
    "for x in {1, 2, 3}:\n    print(x)",
    "for x in set([3, 1]):\n    print(x)",
    "s = frozenset((1, 2))\nfor x in s:\n    print(x)",
    "def f(a, b):\n    s = set(a) & set(b)\n    return list(s)",
    "def f(a):\n    s = set(a)\n    return [x + 1 for x in s]",
    "def f(a, b):\n    s = set(a)\n    t = s.union(b)\n    return tuple(t)",
    "s = {'b', 'a'}\nout = ','.join(s)",
    "def f(a):\n    s = set(a)\n    return next(iter(s))",
], ids=["set-literal", "set-call", "frozenset", "set-algebra",
        "comprehension", "union-method", "str-join", "next-iter"])
def test_set_order_true_positive(source):
    assert det(source) == ["det-set-order"]


def test_set_iteration_tracked_through_assignment():
    findings = lint_text("""
        def allocate_ids(nodes):
            pending = set(nodes)
            out = {}
            for i, n in enumerate(pending):
                out[n] = i
            return out
    """, rules=DET_RULES)
    assert [f.rule for f in findings] == ["det-set-order"]
    assert findings[0].line == 5


# ---------------------------------------------------------------------------
# true negatives
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("source", [
    # virtual clock, seeded instance RNG, deterministic uuid5
    "def f(proc):\n    return proc.kernel.now",
    "import random\nrng = random.Random(42)\nx = rng.random()",
    "import uuid\nu = uuid.uuid5(uuid.NAMESPACE_DNS, 'padico')",
    # sorted() launders set order; membership/len/min/max are order-free
    "s = {3, 1, 2}\nout = sorted(s)",
    "def f(a, b):\n    return sorted(set(a) - set(b))",
    "s = {1, 2}\nok = 1 in s\nn = len(s)\nm = max(s)",
    # dicts and lists are insertion-ordered: fine
    "d = {'a': 1}\nfor k in d:\n    print(k)",
    "for x in [3, 1, 2]:\n    print(x)",
    # a reassigned name stops being a set
    "def f(a):\n    s = set(a)\n    s = sorted(s)\n    return [x for x in s]",
    # building a set in a comprehension is fine (result is unordered too)
    "s = {x * 2 for x in range(5)}\nok = 4 in s",
], ids=["virtual-clock", "seeded-rng", "uuid5", "sorted-set",
        "sorted-algebra", "order-free-ops", "dict-iter", "list-iter",
        "reassigned", "setcomp-build"])
def test_true_negative(source):
    assert det(source) == []
