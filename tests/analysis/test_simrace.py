"""The race-* family: static lockset/atomicity analysis (sim-race).

Every test drives the full engine over a mini-project: entry points
come from real ``kernel.spawn`` / ``kernel.schedule`` registrations,
yield summaries from the shared primitive registry, and findings from
the interprocedural interpretation — exactly the production pipeline.
"""

RACE = {"race-atomicity", "race-unlocked-shared"}

_HEADER = """
        from repro.sim.kernel import SimKernel
        from repro.sim.sync import SimLock
"""


def rules_of(findings):
    return sorted(f.rule for f in findings)


# ----------------------------------------------------------------------
# race-atomicity: read -> yield -> write windows
# ----------------------------------------------------------------------
def test_unlocked_rmw_across_sleep_is_flagged(lint_project):
    findings = lint_project({"prog.py": _HEADER + """
        class Counter:
            def __init__(self, kernel):
                self.kernel = kernel
                self.value = 0

            def bump(self, proc):
                v = self.value
                proc.sleep(1.0)
                self.value = v + 1

        def main():
            k = SimKernel()
            c = Counter(k)
            k.spawn(c.bump)
            k.spawn(c.bump)
            k.run()
    """}, rules=RACE)
    assert rules_of(findings) == ["race-atomicity"]
    f = findings[0]
    assert "Counter.value" in f.message
    assert "span" in f.message and "no common lock" in f.message
    assert "can interleave at the yield" in f.message


def test_lock_held_across_the_window_is_clean(lint_project):
    findings = lint_project({"prog.py": _HEADER + """
        class Counter:
            def __init__(self, kernel):
                self.kernel = kernel
                self.lock = SimLock(kernel)
                self.value = 0

            def bump(self, proc):
                self.lock.acquire(proc)
                v = self.value
                proc.sleep(1.0)
                self.value = v + 1
                self.lock.release()

        def main():
            k = SimKernel()
            c = Counter(k)
            k.spawn(c.bump)
            k.spawn(c.bump)
            k.run()
    """}, rules=RACE)
    assert findings == []


def test_single_instance_single_context_is_clean(lint_project):
    # one process, spawned once: nobody can interleave at the yield
    findings = lint_project({"prog.py": _HEADER + """
        class Counter:
            def __init__(self, kernel):
                self.kernel = kernel
                self.value = 0

            def bump(self, proc):
                v = self.value
                proc.sleep(1.0)
                self.value = v + 1

        def main():
            k = SimKernel()
            c = Counter(k)
            k.spawn(c.bump)
            k.run()
    """}, rules=RACE)
    assert findings == []


def test_spawn_in_loop_counts_as_multiple_instances(lint_project):
    findings = lint_project({"prog.py": _HEADER + """
        class Counter:
            def __init__(self, kernel):
                self.kernel = kernel
                self.value = 0

            def bump(self, proc):
                v = self.value
                proc.sleep(1.0)
                self.value = v + 1

        def main():
            k = SimKernel()
            c = Counter(k)
            for _ in range(4):
                k.spawn(c.bump)
            k.run()
    """}, rules=RACE)
    assert rules_of(findings) == ["race-atomicity"]


def test_yield_is_found_transitively_through_helpers(lint_project):
    findings = lint_project({"prog.py": _HEADER + """
        class Counter:
            def __init__(self, kernel):
                self.kernel = kernel
                self.value = 0

            def settle(self, proc):
                self.pause(proc)

            def pause(self, proc):
                proc.sleep(0.5)

            def bump(self, proc):
                v = self.value
                self.settle(proc)
                self.value = v + 1

        def main():
            k = SimKernel()
            c = Counter(k)
            k.spawn(c.bump)
            k.spawn(c.bump)
            k.run()
    """}, rules=RACE)
    assert rules_of(findings) == ["race-atomicity"]
    # the yield chain names the helper path to the primitive
    assert "settle" in findings[0].message


# ----------------------------------------------------------------------
# race-unlocked-shared: cross-context exposure across a yield
# ----------------------------------------------------------------------
def test_lost_interrupt_shape_is_flagged(lint_project):
    # the PR 2 WaitQueue bug shape: arm a token, suspend, clear it —
    # while a second context overwrites the token concurrently
    findings = lint_project({"prog.py": _HEADER + """
        class Box:
            def __init__(self, kernel):
                self.kernel = kernel
                self.token = None

            def waiter(self, proc):
                self.token = "armed"
                proc.suspend()
                self.token = None

            def firer(self, proc):
                proc.sleep(0.5)
                self.token = "fired"

        def main():
            k = SimKernel()
            b = Box(k)
            k.spawn(b.waiter)
            k.spawn(b.firer)
            k.run()
    """}, rules=RACE)
    assert rules_of(findings) == ["race-unlocked-shared"]
    msg = findings[0].message
    # mirrors the dynamic RaceReport two-site format
    assert msg.startswith("data race on prog.Box.token:")
    assert "write by process" in msg
    assert "no common lock and no happens-before" in msg


def test_plain_cross_context_access_without_straddle_is_clean(lint_project):
    # between yield points the kernel runs to completion: two contexts
    # touching the same attribute atomically is not a hazard
    findings = lint_project({"prog.py": _HEADER + """
        class Box:
            def __init__(self, kernel):
                self.kernel = kernel
                self.last = None

            def producer(self, proc):
                proc.sleep(1.0)
                self.last = "p"

            def consumer(self, proc):
                proc.sleep(2.0)
                self.last = "c"

        def main():
            k = SimKernel()
            b = Box(k)
            k.spawn(b.producer)
            k.spawn(b.consumer)
            k.run()
    """}, rules=RACE)
    assert findings == []


def test_event_handoff_orders_the_accesses(lint_project):
    # a SimEvent set()/wait() pair is a static happens-before edge —
    # the exact attenuation the dynamic detector gets from
    # hb_release/hb_acquire
    findings = lint_project({"prog.py": """
        from repro.sim.kernel import SimKernel
        from repro.sim.sync import SimEvent

        class Box:
            def __init__(self, kernel):
                self.kernel = kernel
                self.ready = SimEvent(kernel)
                self.payload = None

            def producer(self, proc):
                self.payload = "data"
                proc.sleep(1.0)
                self.payload = "more"
                self.ready.set()

            def consumer(self, proc):
                self.ready.wait(proc)
                value = self.payload

        def main():
            k = SimKernel()
            b = Box(k)
            k.spawn(b.producer)
            k.spawn(b.consumer)
            k.run()
    """}, rules=RACE)
    assert findings == []


def test_timer_callback_vs_process_is_a_context_pair(lint_project):
    findings = lint_project({"prog.py": _HEADER + """
        class Box:
            def __init__(self, kernel):
                self.kernel = kernel
                self.slot = None

            def waiter(self, proc):
                self.slot = "armed"
                proc.suspend()
                self.slot = None

            def expire(self):
                self.slot = "late"

        def main():
            k = SimKernel()
            b = Box(k)
            k.spawn(b.waiter)
            k.schedule(5.0, b.expire)
            k.run()
    """}, rules=RACE)
    assert rules_of(findings) == ["race-unlocked-shared"]
    assert "callback" in findings[0].message


# ----------------------------------------------------------------------
# integration
# ----------------------------------------------------------------------
def test_rules_are_registered():
    from repro.analysis.base import all_rules
    assert RACE <= set(all_rules())


def test_inline_suppression_applies(lint_project):
    findings = lint_project({"prog.py": _HEADER + """
        class Box:
            def __init__(self, kernel):
                self.kernel = kernel
                self.token = None

            def waiter(self, proc):
                self.token = "armed"  # repro-lint: disable=race-unlocked-shared
                proc.suspend()
                self.token = None

            def firer(self, proc):
                proc.sleep(0.5)
                self.token = "fired"

        def main():
            k = SimKernel()
            b = Box(k)
            k.spawn(b.waiter)
            k.spawn(b.firer)
            k.run()
    """}, rules=RACE)
    assert findings == []
