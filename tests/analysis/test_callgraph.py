"""Call-graph slice extraction and project-level resolution."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis import ModuleContext
from repro.analysis.callgraph import (
    MODULE_BODY,
    CallGraph,
    FileSlice,
    build_slice,
    enclosing_function,
)
from repro.analysis.suppress import Suppressions


def make_slice(source: str, *, path: str = "mod_a.py",
               module: str | None = None) -> FileSlice:
    source = textwrap.dedent(source)
    ctx = ModuleContext(path, source, ast.parse(source), module,
                        False, Suppressions.scan(source))
    return build_slice(ctx)


def graph_of(*slices: FileSlice) -> CallGraph:
    return CallGraph.from_slices(list(slices))


def edges(graph: CallGraph) -> set[tuple[str, str]]:
    return {(caller, callee)
            for caller, sites in graph.edges.items()
            for _site, callee in sites}


def test_forward_reference_resolves():
    # ping is defined before pong yet calls it: name binding happens at
    # call time in Python, so both directions must be edges
    graph = graph_of(make_slice("""\
        def ping(n):
            return pong(n)

        def pong(n):
            return ping(n - 1)
    """))
    assert ("mod_a.ping", "mod_a.pong") in edges(graph)
    assert ("mod_a.pong", "mod_a.ping") in edges(graph)


def test_self_method_and_inherited_method():
    graph = graph_of(make_slice("""\
        class Base:
            def shared(self):
                return 1

        class Child(Base):
            def run(self):
                return self.shared() + self.local()

            def local(self):
                return 2
    """))
    got = edges(graph)
    assert ("mod_a.Child.run", "mod_a.Base.shared") in got
    assert ("mod_a.Child.run", "mod_a.Child.local") in got


def test_constructor_resolves_to_init():
    graph = graph_of(make_slice("""\
        class Widget:
            def __init__(self, size):
                self.size = size

        def build():
            return Widget(4)
    """))
    assert ("mod_a.build", "mod_a.Widget.__init__") in edges(graph)


def test_unique_method_fallback_and_ambiguity():
    graph = graph_of(make_slice("""\
        class Transport:
            def connect(self, host):
                return host

        class Codec:
            def encode(self, x):
                return x

        class Other:
            def encode(self, x):
                return x

        def use(t, c):
            t.connect("n0")   # unique across the project: resolved
            c.encode(b"")     # two classes define encode: dropped
    """))
    got = edges(graph)
    assert ("mod_a.use", "mod_a.Transport.connect") in got
    assert not any(callee.endswith(".encode") for _c, callee in got)


def test_cross_file_import_resolution():
    helper = make_slice("""\
        def send_zero_copy(stream, arr):
            stream.write_bulk(arr)
    """, path="helper.py")
    caller = make_slice("""\
        from helper import send_zero_copy

        def run(stream, data):
            send_zero_copy(stream, data)
    """, path="caller.py", module=None)
    graph = graph_of(helper, caller)
    assert ("caller.run", "helper.send_zero_copy") in edges(graph)


def test_slice_json_round_trip():
    sl = make_slice("""\
        class C:
            def m(self):
                return self.m()

        def f():
            return C().m()
    """)
    restored = FileSlice.from_json(sl.to_json())
    assert edges(graph_of(restored)) == edges(graph_of(sl))
    assert [f.qual for f in restored.functions] == \
        [f.qual for f in sl.functions]


def test_enclosing_function_is_innermost():
    sl = make_slice("""\
        def outer():
            def inner():
                return 1
            return inner

        X = 1
    """)
    assert enclosing_function(sl, 3) == "mod_a.outer.inner"
    assert enclosing_function(sl, 4) == "mod_a.outer"
    assert enclosing_function(sl, 6) == f"mod_a.{MODULE_BODY}"


def test_callee_at_site_index():
    sl = make_slice("""\
        def helper():
            return 1

        def run():
            return helper()
    """)
    graph = graph_of(sl)
    (site, callee), = graph.callees("mod_a.run")
    assert callee == "mod_a.helper"
    assert graph.callee_at("mod_a.py", site.line, site.col) == \
        "mod_a.helper"
