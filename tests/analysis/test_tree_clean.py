"""Tier-1 gate: the committed tree must be clean under repro-lint.

This is the test that makes every future PR pass through the analyzer:
a new wall-clock read, blocking primitive, upward import or broken
IDL/parallelism pairing anywhere under ``src/`` or ``examples/`` fails
the suite unless it is either fixed, inline-suppressed with a
justification, or deliberately accepted into the committed baseline.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    load_baseline,
    run_analysis,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


def _gate(roots: list[Path]) -> tuple[list, set]:
    findings = run_analysis(roots, project_root=REPO_ROOT)
    baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE_NAME)
    return apply_baseline(findings, baseline)


def test_src_and_examples_are_clean():
    fresh, _stale = _gate([REPO_ROOT / "src", REPO_ROOT / "examples"])
    assert not fresh, (
        "repro-lint found non-baselined findings; fix them (preferred), "
        "suppress with '# repro-lint: disable=<rule>' plus a reason, or "
        "rerun 'repro-lint --update-baseline src examples':\n"
        + "\n".join(f.render() for f in fresh))


def test_baseline_has_no_stale_entries():
    _fresh, stale = _gate([REPO_ROOT / "src", REPO_ROOT / "examples"])
    assert not stale, (
        "baseline entries no longer match any finding; regenerate with "
        f"'repro-lint --update-baseline' ({sorted(stale)})")


def test_layer_exceptions_all_exercised():
    """Every registered escape hatch is load-bearing: removing it from
    the config must reintroduce a lay-escape finding.  Guards against
    the exception registry rotting into an allowlist of nothing."""
    from repro.analysis import AnalysisConfig

    bare = AnalysisConfig(layer_exceptions={})
    findings = run_analysis([REPO_ROOT / "src"], bare,
                            project_root=REPO_ROOT)
    escapes = {(f.path, "repro.padicotm.runtime")
               for f in findings if f.rule == "lay-escape"}
    from repro.analysis.config import DEFAULT_LAYER_EXCEPTIONS
    assert escapes == set(DEFAULT_LAYER_EXCEPTIONS)
