"""netbench CLI tool."""

import pytest

from repro.tools import netbench


def test_parse_size():
    assert netbench.parse_size("100") == 100
    assert netbench.parse_size("32K") == 32 * 1024
    assert netbench.parse_size("8M") == 8 * 1024 * 1024
    assert netbench.parse_size("1.5k") == 1536
    with pytest.raises(Exception):
        netbench.parse_size("lots")


def test_corba_probe_matches_paper(capsys):
    assert netbench.main(["--middleware", "Mico", "--size", "4M"]) == 0
    out = capsys.readouterr().out
    assert "Mico-2.3.7" in out
    assert "62.6 us" in out
    assert "55.0 MB/s" in out


def test_mpi_latency_probe(capsys):
    assert netbench.main(["--middleware", "mpi", "--latency"]) == 0
    out = capsys.readouterr().out
    assert "11.0 us" in out
    assert "bandwidth" not in out


def test_lan_probe(capsys):
    assert netbench.main(["--middleware", "omniORB4", "--lan",
                          "--size", "1M"]) == 0
    out = capsys.readouterr().out
    assert "Fast-Ethernet" in out
    assert "11.2 MB/s" in out


def test_esiop_probe(capsys):
    assert netbench.main(["--middleware", "omniORB4",
                          "--protocol", "esiop", "--latency"]) == 0
    assert "esiop" in capsys.readouterr().out
