"""MPI point-to-point: blocking, nonblocking, probing, statuses."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, Request, Status

from tests.mpi.conftest import run_spmd


def test_send_recv_python_objects(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
            return None
        return comm.recv(source=0, tag=11)

    results = run_spmd(runtime, 2, body)
    assert results[1] == {"a": 7, "b": 3.14}


def test_send_recv_numpy_buffers(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            data = np.arange(1000, dtype="i4")
            comm.Send(data, dest=1, tag=77)
            return None
        buf = np.empty(1000, dtype="i4")
        comm.Recv(buf, source=0, tag=77)
        return buf.sum()

    results = run_spmd(runtime, 2, body)
    assert results[1] == np.arange(1000).sum()


def test_send_buffer_not_aliased(runtime):
    """Sender mutating its buffer after Send must not corrupt the message."""
    def body(proc, comm):
        if comm.rank == 0:
            data = np.ones(10, dtype="f8")
            comm.Send(data, dest=1)
            data[:] = -1  # mutate after send
            comm.barrier()
            return None
        comm.barrier()
        buf = np.empty(10, dtype="f8")
        comm.Recv(buf, source=0)
        return buf.copy()

    results = run_spmd(runtime, 2, body)
    assert np.all(results[1] == 1.0)


def test_tag_matching_out_of_order(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            comm.send("first", dest=1, tag=1)
            comm.send("second", dest=1, tag=2)
            return None
        second = comm.recv(source=0, tag=2)
        first = comm.recv(source=0, tag=1)
        return (first, second)

    results = run_spmd(runtime, 2, body)
    assert results[1] == ("first", "second")


def test_any_source_any_tag_with_status(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            got = []
            for _ in range(2):
                st = Status()
                obj = comm.recv(source=ANY_SOURCE, tag=ANY_TAG, status=st)
                got.append((obj, st.Get_source(), st.Get_tag()))
            return sorted(got, key=lambda x: x[1])
        proc.sleep(0.001 * comm.rank)
        comm.send(f"hello-{comm.rank}", dest=0, tag=40 + comm.rank)
        return None

    results = run_spmd(runtime, 3, body)
    assert results[0] == [("hello-1", 1, 41), ("hello-2", 2, 42)]


def test_isend_irecv_waitall(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            reqs = [comm.isend(i * i, dest=1, tag=i) for i in range(4)]
            Request.waitall(reqs)
            return None
        reqs = [comm.irecv(source=0, tag=i) for i in range(4)]
        return Request.waitall(reqs)

    results = run_spmd(runtime, 2, body)
    assert results[1] == [0, 1, 4, 9]


def test_isend_overlaps_with_compute(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            big = np.zeros(2_400_000, dtype="u1")  # 10 ms on the wire
            t0 = comm.Wtime()
            req = comm.Isend(big, dest=1)
            proc.sleep(0.010)  # overlapped compute
            req.wait()
            return comm.Wtime() - t0
        buf = np.empty(2_400_000, dtype="u1")
        comm.Recv(buf, source=0)
        return None

    results = run_spmd(runtime, 2, body)
    assert results[0] < 0.012  # overlap, not 20 ms serial


def test_irecv_returns_object(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            req = comm.irecv(source=1)
            assert not req.test()
            val = req.wait()
            assert req.test()
            return val
        proc.sleep(0.001)
        comm.send([1, 2, 3], dest=0)
        return None

    results = run_spmd(runtime, 2, body)
    assert results[0] == [1, 2, 3]


def test_Irecv_buffer(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            buf = np.zeros(8, dtype="i8")
            req = comm.Irecv(buf, source=1)
            req.wait()
            return buf.tolist()
        comm.Send(np.arange(8, dtype="i8"), dest=0)
        return None

    results = run_spmd(runtime, 2, body)
    assert results[0] == list(range(8))


def test_sendrecv_exchanges_without_deadlock(runtime):
    def body(proc, comm):
        peer = 1 - comm.rank
        return comm.sendrecv(f"from{comm.rank}", dest=peer, source=peer)

    results = run_spmd(runtime, 2, body)
    assert results == ["from1", "from0"]


def test_iprobe(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            assert not comm.iprobe()
            comm.barrier()
            proc.sleep(0.01)  # let rank 1's message arrive
            assert comm.iprobe(source=1, tag=5)
            assert not comm.iprobe(source=1, tag=6)
            return comm.recv(source=1, tag=5)
        comm.barrier()
        comm.send("probed", dest=0, tag=5)
        return None

    results = run_spmd(runtime, 2, body)
    assert results[0] == "probed"


def test_send_to_invalid_rank_raises(runtime):
    def body(proc, comm):
        with pytest.raises(MpiError):
            comm.send("x", dest=5)
        return True

    assert run_spmd(runtime, 2, body) == [True, True]


def test_recv_buffer_size_mismatch_raises(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            comm.Send(np.zeros(10), dest=1)
            return None
        with pytest.raises(MpiError):
            comm.Recv(np.empty(5), source=0)
        return True

    assert run_spmd(runtime, 2, body)[1] is True


def test_mixing_paths_detected(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            comm.send("pickled", dest=1)
            return None
        with pytest.raises(MpiError):
            comm.Recv(np.empty(7), source=0)
        return True

    assert run_spmd(runtime, 2, body)[1] is True


def test_pickle_path_slower_than_buffer_path(runtime):
    """The guide's idiom: buffer-path (upper-case) is the fast path."""
    size = 4_000_000

    def body(proc, comm):
        if comm.rank == 0:
            arr = np.zeros(size, dtype="u1")
            t0 = comm.Wtime()
            comm.Send(arr, dest=1, tag=1)
            fast = comm.Wtime() - t0
            t0 = comm.Wtime()
            comm.send(arr, dest=1, tag=2)
            slow = comm.Wtime() - t0
            return (fast, slow)
        buf = np.empty(size, dtype="u1")
        comm.Recv(buf, source=0, tag=1)
        comm.recv(source=0, tag=2)
        return None

    fast, slow = run_spmd(runtime, 2, body)[0]
    assert slow > fast * 1.2


def test_unbound_comm_raises(runtime):
    from repro.mpi import create_world

    procs = [runtime.create_process(f"a{i}", f"p{i}") for i in range(2)]
    world = create_world(runtime, "w", procs)
    with pytest.raises(MpiError):
        world.comm(0).send("x", dest=1)
