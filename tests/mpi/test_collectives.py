"""MPI collectives: correctness across rank counts, both data paths."""

import numpy as np
import pytest

from repro.mpi import MAX, MAXLOC, MIN, PROD, SUM

from tests.mpi.conftest import run_spmd


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8])
def test_barrier_synchronises(runtime, n):
    def body(proc, comm):
        proc.sleep(0.001 * comm.rank)  # staggered arrival
        comm.barrier()
        return comm.Wtime()

    times = run_spmd(runtime, n, body)
    # nobody leaves before the slowest arrives
    assert min(times) >= 0.001 * (n - 1)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
def test_bcast_object(runtime, n):
    def body(proc, comm):
        data = {"key": [1, 2, 3]} if comm.rank == 0 else None
        return comm.bcast(data, root=0)

    results = run_spmd(runtime, n, body)
    assert all(r == {"key": [1, 2, 3]} for r in results)


@pytest.mark.parametrize("root", [0, 1, 2])
def test_bcast_nonzero_root(runtime, root):
    def body(proc, comm):
        data = f"from-{comm.rank}" if comm.rank == root else None
        return comm.bcast(data, root=root)

    results = run_spmd(runtime, 3, body)
    assert all(r == f"from-{root}" for r in results)


def test_Bcast_buffer(runtime):
    def body(proc, comm):
        buf = np.arange(64, dtype="i4") if comm.rank == 0 \
            else np.zeros(64, dtype="i4")
        comm.Bcast(buf, root=0)
        return buf.sum()

    results = run_spmd(runtime, 4, body)
    assert all(r == np.arange(64).sum() for r in results)


@pytest.mark.parametrize("n", [1, 2, 4, 6])
def test_gather(runtime, n):
    def body(proc, comm):
        return comm.gather(comm.rank ** 2, root=0)

    results = run_spmd(runtime, n, body)
    assert results[0] == [r * r for r in range(n)]
    assert all(r is None for r in results[1:])


def test_scatter(runtime):
    def body(proc, comm):
        items = [f"item{i}" for i in range(comm.size)] \
            if comm.rank == 0 else None
        return comm.scatter(items, root=0)

    results = run_spmd(runtime, 4, body)
    assert results == [f"item{i}" for i in range(4)]


def test_scatter_wrong_length_raises(runtime):
    from repro.mpi import MpiError

    def body(proc, comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                comm.scatter([1], root=0)
            # unblock peers with the real scatter
            return comm.scatter([10, 20], root=0)
        return comm.scatter(None, root=0)

    assert run_spmd(runtime, 2, body) == [10, 20]


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_allgather(runtime, n):
    def body(proc, comm):
        return comm.allgather(comm.rank * 10)

    results = run_spmd(runtime, n, body)
    expected = [r * 10 for r in range(n)]
    assert all(r == expected for r in results)


@pytest.mark.parametrize("n", [2, 3, 4])
def test_alltoall(runtime, n):
    def body(proc, comm):
        out = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
        return out

    results = run_spmd(runtime, n, body)
    for dst, row in enumerate(results):
        assert row == [f"{src}->{dst}" for src in range(n)]


@pytest.mark.parametrize("n,op,expected", [
    (4, SUM, 0 + 1 + 2 + 3),
    (4, PROD, 1 * 2 * 3 * 4),   # rank+1 inputs
    (5, MAX, 4),
    (5, MIN, 0),
])
def test_reduce_ops(runtime, n, op, expected):
    def body(proc, comm):
        val = comm.rank + 1 if op is PROD else comm.rank
        return comm.reduce(val, op, root=0)

    results = run_spmd(runtime, n, body)
    assert results[0] == expected
    assert all(r is None for r in results[1:])


def test_reduce_maxloc(runtime):
    def body(proc, comm):
        value = [3, 9, 1, 9][comm.rank]
        return comm.reduce((value, comm.rank), MAXLOC, root=0)

    results = run_spmd(runtime, 4, body)
    # ties resolve to the lowest rank (MPI convention via >=)
    assert results[0] == (9, 1)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_allreduce(runtime, n):
    def body(proc, comm):
        return comm.allreduce(comm.rank, SUM)

    results = run_spmd(runtime, n, body)
    assert all(r == n * (n - 1) // 2 for r in results)


def test_Reduce_and_Allreduce_buffers(runtime):
    def body(proc, comm):
        send = np.full(16, comm.rank, dtype="f8")
        out = np.zeros(16, dtype="f8")
        comm.Allreduce(send, out, SUM)
        return out[0]

    results = run_spmd(runtime, 4, body)
    assert all(r == 6.0 for r in results)


def test_scan(runtime):
    def body(proc, comm):
        return comm.scan(comm.rank + 1, SUM)

    results = run_spmd(runtime, 5, body)
    assert results == [1, 3, 6, 10, 15]


def test_parallel_matvec_like_guide(runtime):
    """The mpi4py tutorial's allgather-based matrix-vector product."""
    p = 4
    m = 3  # local rows

    def body(proc, comm):
        rng = np.random.default_rng(42)  # same matrix everywhere
        a_full = rng.random((m * p, m * p))
        a_local = a_full[comm.rank * m:(comm.rank + 1) * m]
        x_full = np.arange(m * p, dtype="f8")
        x_local = x_full[comm.rank * m:(comm.rank + 1) * m]
        xg = np.concatenate(comm.allgather(x_local))
        return a_local @ xg

    results = run_spmd(runtime, p, body)
    rng = np.random.default_rng(42)
    a_full = rng.random((m * p, m * p))
    expected = a_full @ np.arange(m * p, dtype="f8")
    got = np.concatenate(results)
    np.testing.assert_allclose(got, expected)


def test_split_by_parity(runtime):
    def body(proc, comm):
        sub = comm.split(color=comm.rank % 2, key=comm.rank)
        total = sub.allreduce(comm.rank, SUM)
        return (sub.rank, sub.size, total)

    results = run_spmd(runtime, 6, body)
    for world_rank, (sub_rank, sub_size, total) in enumerate(results):
        assert sub_size == 3
        assert sub_rank == world_rank // 2
        expected = sum(r for r in range(6) if r % 2 == world_rank % 2)
        assert total == expected


def test_split_undefined_color(runtime):
    def body(proc, comm):
        color = None if comm.rank == 0 else 1
        sub = comm.split(color=color)
        if sub is None:
            return "undefined"
        return sub.allreduce(1, SUM)

    results = run_spmd(runtime, 3, body)
    assert results == ["undefined", 2, 2]


def test_dup_isolates_traffic(runtime):
    def body(proc, comm):
        dup = comm.dup()
        if comm.rank == 0:
            comm.send("on-orig", dest=1)
            dup.send("on-dup", dest=1)
            return None
        # receive from the dup first: contexts must not cross-match
        got_dup = dup.recv(source=0)
        got_orig = comm.recv(source=0)
        return (got_dup, got_orig)

    results = run_spmd(runtime, 2, body)
    assert results[1] == ("on-dup", "on-orig")


def test_barrier_latency_grows_logarithmically(runtime):
    """Fig. 8 mechanism: barrier cost grows with node count."""
    def body(proc, comm):
        comm.barrier()  # warm-up
        t0 = comm.Wtime()
        comm.barrier()
        return comm.Wtime() - t0

    t2 = max(run_spmd(runtime, 2, body))
    latencies = {}
    for n in (4, 8):
        from repro.net import Topology, build_cluster
        from repro.padicotm import PadicoRuntime

        topo = Topology()
        build_cluster(topo, "a", 8)
        with PadicoRuntime(topo) as rt:
            latencies[n] = max(run_spmd(rt, n, body))
    assert t2 < latencies[4] < latencies[8]
