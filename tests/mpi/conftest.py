"""Shared MPI test fixtures and helpers."""

import pytest

from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime
from repro.mpi import create_world, spmd


@pytest.fixture()
def runtime():
    topo = Topology()
    build_cluster(topo, "a", 8)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


def run_spmd(rt, n_ranks, fn, *args, procs_per_host=1):
    """Create a world of ``n_ranks`` and run ``fn`` on every rank.

    Returns the list of per-rank results.
    """
    procs = [rt.create_process(f"a{i // procs_per_host}", f"rank{i}")
             for i in range(n_ranks)]
    world = create_world(rt, "w", procs)
    threads = spmd(world, fn, *args)
    rt.run()
    for t in threads:
        assert not t.alive, f"{t.name} never finished"
        assert t.exc is None
    return [t.result for t in threads]
