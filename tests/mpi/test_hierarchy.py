"""Topology-aware hierarchical collectives (MPICH-G2 style).

Differential tests: the flat rank-order binomial path
(``CollTuning(aware=False)``) is the oracle; the aware path must
produce identical values for every collective, every root, and every
rank layout, while crossing the WAN less.
"""

import numpy as np
import pytest

from repro.mpi import CollTuning, create_world, spmd
from repro.mpi.ops import MAXLOC, SUM, ReduceOp
from repro.net import (
    NoRouteError,
    TransferError,
    build_grid,
)
from repro.net.devices import MYRINET_2000
from repro.obs import TraceRecorder
from repro.padicotm import PadicoRuntime


#: a non-commutative (but associative) op: string/tuple concatenation
CONCAT = ReduceOp("concat", lambda a, b: a + b)


def _grid(sites, hosts_per_site, **kw):
    topo, site_hosts = build_grid(sites=sites,
                                  hosts_per_site=hosts_per_site,
                                  san=MYRINET_2000, **kw)
    rt = PadicoRuntime(topo)
    return rt, site_hosts


def _run(rt, procs, fn, *args, aware=True, tolerate_blocked=False,
         coll=None):
    world = create_world(rt, "w", procs,
                         coll=coll or CollTuning(aware=aware))
    threads = spmd(world, fn, *args)
    rt.kernel.run()
    results = []
    for t in threads:
        if not tolerate_blocked:
            assert not t.alive, f"{t.name} never finished"
            assert t.exc is None, f"{t.name}: {t.exc!r}"
        results.append(t.result if not t.alive and t.exc is None
                       else None)
    return world, results


def _procs(rt, site_hosts, order="contiguous"):
    hosts = [h for hs in site_hosts.values() for h in hs]
    if order == "interleaved":
        by_site = list(site_hosts.values())
        hosts = [h for tier in zip(*by_site) for h in tier]
    return [rt.create_process(h, f"p-{h.name}") for h in hosts]


def _all_collectives(proc, comm, root):
    """One pass over every rewritten collective, rooted at ``root``."""
    res = {}
    comm.barrier()
    res["bcast"] = comm.bcast(
        {"from": root, "blob": bytes(2048)} if comm.rank == root
        else None, root=root)["from"]
    buf = np.arange(64, dtype=np.int64) + (1000 if comm.rank == root
                                           else 0)
    comm.Bcast(buf, root=root)
    res["Bcast"] = int(buf.sum())
    res["gather"] = comm.gather((comm.rank, "x" * comm.rank), root=root)
    res["scatter"] = comm.scatter(
        [f"part{i}" for i in range(comm.size)]
        if comm.rank == root else None, root=root)
    res["allgather"] = comm.allgather(comm.rank * 7)
    res["reduce"] = comm.reduce((comm.rank + 1) * 3, SUM, root=root)
    res["reduce_nc"] = comm.reduce(f"r{comm.rank}.", CONCAT, root=root)
    res["maxloc"] = comm.reduce((comm.size - comm.rank, comm.rank),
                                MAXLOC, root=root)
    res["allreduce"] = comm.allreduce(comm.rank + 1, SUM)
    res["alltoall"] = comm.alltoall(
        [f"{comm.rank}->{d}" for d in range(comm.size)])
    sendbuf = np.full(32, float(comm.rank + 1))
    recvbuf = np.zeros(32)
    comm.Reduce(sendbuf, recvbuf if comm.rank == root else None, SUM,
                root=root)
    res["Reduce"] = float(recvbuf[0]) if comm.rank == root else None
    out = np.zeros(32)
    comm.Allreduce(sendbuf, out, SUM)
    res["Allreduce"] = float(out[0])
    comm.barrier()
    return res


@pytest.mark.parametrize("sites,hps", [(2, 2), (3, 3), (2, 1), (4, 2)])
def test_flat_vs_aware_identical_for_every_root(sites, hps):
    """Every collective, every root: aware values == flat values."""
    flat = None
    for aware in (False, True):
        rt, site_hosts = _grid(sites, hps)
        world = create_world(rt, "w", _procs(rt, site_hosts),
                             coll=CollTuning(aware=aware))
        per_root = []
        for root in range(sites * hps):
            threads = spmd(world, _all_collectives, root)
            rt.kernel.run()
            for t in threads:
                assert not t.alive and t.exc is None, \
                    f"root={root} {t.name}: {t.exc!r}"
            per_root.append([t.result for t in threads])
        if flat is None:
            flat = per_root
        else:
            assert per_root == flat
        rt.shutdown()


def test_single_site_group_keeps_flat_path():
    """A one-site group must not engage the hierarchy at all — same
    messages, same circuits, byte-identical observable traffic."""
    recs = []
    for aware in (False, True):
        rt, site_hosts = _grid(1, 4)
        rec = rt.observe(TraceRecorder())
        _, results = _run(rt, _procs(rt, site_hosts), _all_collectives,
                          1, aware=aware)
        recs.append((results,
                     rec.counters,
                     [(f.src, f.dst, f.nbytes, f.fabric)
                      for f in rec.flow_records()]))
        rt.shutdown()
    assert recs[0] == recs[1]
    assert "mpi.wan_crossings" not in recs[0][1]


def test_bcast_crosses_wan_exactly_sites_minus_one():
    for sites, hps in ((2, 3), (4, 2)):
        rt, site_hosts = _grid(sites, hps)
        procs = _procs(rt, site_hosts)

        def body(proc, comm):
            comm.bcast(bytes(4096) if comm.rank == 0 else None, root=0)

        world, _ = _run(rt, procs, body, aware=True)
        stats = world.comm(0).coll_stats
        assert stats.wan_crossings == sites - 1
        assert stats.wan_bytes["bcast"] == pytest.approx(
            (sites - 1) * len(__import__("pickle").dumps(bytes(4096))))
        rt.shutdown()


def test_flat_mode_crosses_more_and_both_modes_count():
    """The comparison the bench publishes: both modes maintain the
    counters; aware crosses strictly less on a multi-site group."""
    xings = {}
    for aware in (False, True):
        rt, site_hosts = _grid(3, 3)
        procs = _procs(rt, site_hosts)

        def body(proc, comm):
            comm.bcast(b"x" * 1024 if comm.rank == 0 else None, root=0)
            comm.allreduce(comm.rank, SUM)

        world, _ = _run(rt, procs, body, aware=aware)
        xings[aware] = world.comm(0).coll_stats.wan_crossings
        rt.shutdown()
    assert 0 < xings[True] < xings[False]


def test_obs_counters_emitted_only_with_monitor():
    rt, site_hosts = _grid(2, 2)
    rec = rt.observe(TraceRecorder())
    procs = _procs(rt, site_hosts)

    def body(proc, comm):
        comm.bcast(b"payload" if comm.rank == 0 else None, root=0)

    world, _ = _run(rt, procs, body, aware=True)
    assert rec.counters["mpi.wan_crossings"] == 1.0
    assert rec.counters["mpi.wan_bytes.bcast"] > 0
    rt.shutdown()


def test_intra_site_edges_ride_the_site_san():
    """Aware mode's intra-site tree edges go over a per-site subcircuit
    whose fabric the selector picks — the site SAN, not the WAN."""
    rt, site_hosts = _grid(2, 3)
    rec = rt.observe(TraceRecorder())
    procs = _procs(rt, site_hosts)
    payload = bytes(1 << 16)

    def body(proc, comm):
        comm.bcast(payload if comm.rank == 0 else None, root=0)

    _run(rt, procs, body, aware=True)
    fabrics = {f.fabric for f in rec.flow_records() if f.nbytes > 4096}
    assert "g0-san" in fabrics and "g1-san" in fabrics
    wan_flows = [f for f in rec.flow_records()
                 if f.fabric == "g-wan" and f.nbytes > 4096]
    assert len(wan_flows) == 1  # the single leader-to-leader crossing
    rt.shutdown()


def test_non_contiguous_sites_still_correct():
    """Interleaved rank placement (sites are not contiguous rank
    blocks): reduce falls back to the flat schedule internally, and
    every collective still matches the oracle."""
    out = {}
    for aware in (False, True):
        rt, site_hosts = _grid(3, 2)
        procs = _procs(rt, site_hosts, order="interleaved")
        _, results = _run(rt, procs, _all_collectives, 2, aware=aware)
        out[aware] = results
        rt.shutdown()
    assert out[True] == out[False]


def test_non_power_of_two_and_uneven_roots():
    out = {}
    for aware in (False, True):
        rt, site_hosts = _grid(3, 3)
        procs = _procs(rt, site_hosts)
        _, results = _run(rt, procs, _all_collectives, 5, aware=aware)
        out[aware] = results
        rt.shutdown()
    assert out[True] == out[False]


def test_env_var_selects_flat_mode(monkeypatch):
    monkeypatch.setenv("REPRO_MPI_COLL", "flat")
    rt, site_hosts = _grid(2, 2)
    procs = _procs(rt, site_hosts)
    world = create_world(rt, "w", procs)  # no explicit tuning

    def body(proc, comm):
        assert not comm.coll_aware
        comm.bcast(b"x" if comm.rank == 0 else None, root=0)

    threads = spmd(world, body)
    rt.kernel.run()
    assert all(t.exc is None for t in threads)
    # flat 2x2 bcast from rank 0: edges 0->1 (intra), 0->2, 1->3 cross
    assert world.comm(0).coll_stats.wan_crossings == 2
    rt.shutdown()


def test_explicit_tuning_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_MPI_COLL", "flat")
    rt, site_hosts = _grid(2, 2)
    world = create_world(rt, "w", _procs(rt, site_hosts),
                         coll=CollTuning(aware=True))

    def body(proc, comm):
        assert comm.coll_aware

    threads = spmd(world, body)
    rt.kernel.run()
    assert all(t.exc is None for t in threads)
    rt.shutdown()


@pytest.mark.parametrize("threshold", [0, 1 << 30])
def test_alltoall_threshold_modes(threshold):
    """Aggregated (0) and all-direct (huge threshold) alltoall both
    match the oracle; only the aggregated one reduces crossings."""
    rt, site_hosts = _grid(3, 2)
    procs = _procs(rt, site_hosts)

    def body(proc, comm):
        return comm.alltoall([(comm.rank, d) for d in range(comm.size)])

    world, results = _run(
        rt, procs, body,
        coll=CollTuning(aware=True, alltoall_threshold=threshold))
    n = len(procs)
    expected = [[(s, d) for s in range(n)] for d in range(n)]
    assert results == expected
    xings = world.comm(0).coll_stats.wan_crossings
    if threshold == 0:
        assert xings == 3 * 2          # sites * (sites - 1) megas
    else:
        assert xings > 3 * 2           # every payload crossed directly
    rt.shutdown()


def test_split_inherits_tuning_and_subgroup_hierarchy():
    rt, site_hosts = _grid(2, 3)
    procs = _procs(rt, site_hosts)

    def body(proc, comm):
        # odd/even split: both halves still span the two sites
        sub = comm.split(color=comm.rank % 2, key=comm.rank)
        val = sub.allreduce(sub.rank, SUM)
        return val, sub.coll_aware, sub.coll_stats.wan_crossings > 0

    _, results = _run(rt, procs, body, aware=True)
    for val, aware, crossed in results:
        assert val == sum(range(3))
        assert aware and crossed
    rt.shutdown()


def test_wan_failure_mid_collective_fails_both_modes():
    """Kill the destination site's router-core cable while the 8 MiB
    broadcast is crossing it: in both modes the sending leader edge is
    rank 0 -> rank 2, and in both modes that sender observes the
    failure (TransferError mid-flight) while the collective as a whole
    never completes successfully anywhere."""
    errs = {}
    for aware in (False, True):
        rt, site_hosts = _grid(2, 2)
        procs = _procs(rt, site_hosts)
        payload = bytes(8 << 20)
        out = {}

        def body(proc, comm):
            try:
                comm.bcast(payload if comm.rank == 0 else None, root=0)
            except (TransferError, NoRouteError) as e:
                out[comm.rank] = type(e).__name__
                return "failed"
            return "ok"

        def saboteur(proc):
            proc.sleep(1.0)  # the 0->2 crossing is in flight by now
            wan = rt.topology.fabrics["g-wan"]
            for a, b in (("g-wan-core", "g-wan-r1"),
                         ("g-wan-r1", "g-wan-core")):
                rt.network.fail_link(wan.link(a, b))
            rt.topology.set_link_state("g-wan", "g-wan-r1",
                                       "g-wan-core", up=False)

        world = create_world(rt, "w", procs,
                             coll=CollTuning(aware=aware))
        threads = spmd(world, body)
        procs[0].spawn(saboteur, name="saboteur")
        rt.kernel.run()
        finished = {i: t.result for i, t in enumerate(threads)
                    if not t.alive and t.exc is None}
        assert "ok" not in [finished.get(2), finished.get(3)], \
            "site 1 completed despite the dead WAN link"
        errs[aware] = out.get(0)
        rt.shutdown()
    assert errs[False] == errs[True] == "TransferError"
