"""Cartesian process topologies and a 2D halo-exchange stencil."""

import numpy as np
import pytest

from repro.mpi import PROC_NULL, MpiError, SUM

from tests.mpi.conftest import run_spmd


def test_coords_roundtrip(runtime):
    def body(proc, comm):
        cart = comm.Create_cart([2, 3])
        coords = cart.coords
        assert cart.Get_cart_rank(coords) == cart.rank
        return coords

    results = run_spmd(runtime, 6, body)
    assert results == [[0, 0], [0, 1], [0, 2], [1, 0], [1, 1], [1, 2]]


def test_shift_periodic_and_bounded(runtime):
    def body(proc, comm):
        cart = comm.Create_cart([4], periods=[False])
        src, dst = cart.Shift(0, 1)
        pcart = comm.Create_cart([4], periods=[True])
        psrc, pdst = pcart.Shift(0, 1)
        return (src, dst, psrc, pdst)

    results = run_spmd(runtime, 4, body)
    # non-periodic: edges have no neighbour
    assert results[0][:2] == (PROC_NULL, 1)
    assert results[3][:2] == (2, PROC_NULL)
    # periodic: wraps
    assert results[0][2:] == (3, 1)
    assert results[3][2:] == (2, 0)


def test_cart_validation(runtime):
    def body(proc, comm):
        with pytest.raises(MpiError):
            comm.Create_cart([5])       # 5 slots for 4 ranks
        with pytest.raises(MpiError):
            comm.Create_cart([2, 2], periods=[True])  # length mismatch
        with pytest.raises(MpiError):
            comm.Create_cart([0, 4])
        cart = comm.Create_cart([2, 2])
        with pytest.raises(MpiError):
            cart.Shift(2)
        with pytest.raises(MpiError):
            cart.Get_coords(99)
        return True

    assert all(run_spmd(runtime, 4, body))


def test_2d_jacobi_halo_exchange(runtime):
    """A 2×2 process grid smooths a field with halo exchanges through
    Shift(); the result must equal the sequential computation."""
    P, Q = 2, 2
    n = 8  # local block is (n, n); global field is (P*n, Q*n)
    rng = np.random.default_rng(3)
    global_field = rng.random((P * n, Q * n))

    def body(proc, comm):
        cart = comm.Create_cart([P, Q], periods=[True, True])
        r, c = cart.coords
        local = global_field[r * n:(r + 1) * n, c * n:(c + 1) * n].copy()

        up_src, up_dst = cart.Shift(0, 1)
        left_src, left_dst = cart.Shift(1, 1)
        # exchange row halos (axis 0) and column halos (axis 1)
        top_halo = comm.sendrecv(local[-1].copy(), dest=up_dst,
                                 source=up_src)
        bottom_halo = comm.sendrecv(local[0].copy(), dest=up_src,
                                    source=up_dst)
        right_halo = comm.sendrecv(local[:, -1].copy(), dest=left_dst,
                                   source=left_src)
        left_halo = comm.sendrecv(local[:, 0].copy(), dest=left_src,
                                  source=left_dst)

        padded = np.zeros((n + 2, n + 2))
        padded[1:-1, 1:-1] = local
        padded[0, 1:-1] = top_halo
        padded[-1, 1:-1] = bottom_halo
        padded[1:-1, 0] = right_halo
        padded[1:-1, -1] = left_halo
        smoothed = (padded[:-2, 1:-1] + padded[2:, 1:-1] +
                    padded[1:-1, :-2] + padded[1:-1, 2:]) / 4
        return (r, c, smoothed)

    results = run_spmd(runtime, P * Q, body)
    # sequential reference with periodic wrap
    ref = (np.roll(global_field, 1, 0) + np.roll(global_field, -1, 0) +
           np.roll(global_field, 1, 1) + np.roll(global_field, -1, 1)) / 4
    for r, c, smoothed in results:
        np.testing.assert_allclose(
            smoothed, ref[r * n:(r + 1) * n, c * n:(c + 1) * n])
