"""Scatterv/Gatherv and blocking probe."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, MpiError, Status

from tests.mpi.conftest import run_spmd


def test_scatterv_uneven_counts(runtime):
    counts = [5, 3, 2]

    def body(proc, comm):
        recv = np.zeros(counts[comm.rank])
        if comm.rank == 0:
            send = np.arange(10.0)
            comm.Scatterv(send, counts, recv, root=0)
        else:
            comm.Scatterv(None, None, recv, root=0)
        return recv

    results = run_spmd(runtime, 3, body)
    assert np.array_equal(results[0], [0, 1, 2, 3, 4])
    assert np.array_equal(results[1], [5, 6, 7])
    assert np.array_equal(results[2], [8, 9])


def test_gatherv_reassembles(runtime):
    counts = [1, 4, 2]

    def body(proc, comm):
        send = np.full(counts[comm.rank], float(comm.rank))
        if comm.rank == 0:
            recv = np.zeros(7)
            comm.Gatherv(send, recv, counts, root=0)
            return recv
        comm.Gatherv(send, None, None, root=0)
        return None

    results = run_spmd(runtime, 3, body)
    assert np.array_equal(results[0], [0, 1, 1, 1, 1, 2, 2])


def test_scatterv_gatherv_roundtrip(runtime):
    """scatterv then gatherv with the same counts is the identity."""
    counts = [3, 0, 5]  # a rank may get nothing

    def body(proc, comm):
        recv = np.zeros(counts[comm.rank])
        if comm.rank == 0:
            data = np.arange(8.0) * 1.5
            comm.Scatterv(data, counts, recv, root=0)
            back = np.zeros(8)
            comm.Gatherv(recv, back, counts, root=0)
            return (data, back)
        comm.Scatterv(None, None, recv, root=0)
        comm.Gatherv(recv, None, None, root=0)
        return None

    results = run_spmd(runtime, 3, body)
    data, back = results[0]
    assert np.array_equal(data, back)


def test_scatterv_validation(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            with pytest.raises(MpiError):
                comm.Scatterv(np.zeros(4), [1, 2], np.zeros(1))  # sum≠size
            with pytest.raises(MpiError):
                comm.Scatterv(None, None, np.zeros(1))  # root needs buf
        return True

    assert run_spmd(runtime, 2, body) == [True, True]


def test_probe_blocks_until_message(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            st = Status()
            t0 = comm.Wtime()
            comm.probe(source=ANY_SOURCE, tag=ANY_TAG, status=st)
            waited = comm.Wtime() - t0
            # probed but not consumed: the receive still sees it
            obj = comm.recv(source=st.Get_source(), tag=st.Get_tag())
            return (waited, st.Get_source(), st.Get_tag(), obj)
        proc.sleep(0.005)
        comm.send("late delivery", dest=0, tag=42)
        return None

    results = run_spmd(runtime, 2, body)
    waited, src, tag, obj = results[0]
    assert waited >= 0.005
    assert (src, tag, obj) == (1, 42, "late delivery")


def test_probe_is_selective(runtime):
    def body(proc, comm):
        if comm.rank == 0:
            comm.probe(source=1, tag=7)  # must skip the tag-5 message
            first = comm.recv(source=1, tag=5)
            second = comm.recv(source=1, tag=7)
            return (first, second)
        comm.send("five", dest=0, tag=5)
        comm.send("seven", dest=0, tag=7)
        return None

    results = run_spmd(runtime, 2, body)
    assert results[0] == ("five", "seven")
