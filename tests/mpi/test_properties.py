"""Property-based MPI semantics: collectives match reference results
for arbitrary payloads and rank counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import MAX, MIN, SUM, create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime


def _run(n_ranks, fn):
    topo = Topology()
    build_cluster(topo, "a", max(n_ranks, 1))
    rt = PadicoRuntime(topo)
    procs = [rt.create_process(f"a{i}", f"r{i}") for i in range(n_ranks)]
    world = create_world(rt, "w", procs)
    threads = spmd(world, fn)
    rt.run()
    rt.shutdown()
    for t in threads:
        assert t.exc is None and not t.alive
    return [t.result for t in threads]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5),
       st.lists(st.integers(-1000, 1000), min_size=5, max_size=5))
def test_allreduce_matches_reference(n, values):
    per_rank = values[:n]

    def body(proc, comm):
        return comm.allreduce(per_rank[comm.rank], SUM)

    results = _run(n, body)
    assert all(r == sum(per_rank) for r in results)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5), st.data())
def test_allgather_matches_reference(n, data):
    payloads = [data.draw(st.lists(st.integers(), max_size=4))
                for _ in range(n)]

    def body(proc, comm):
        return comm.allgather(payloads[comm.rank])

    results = _run(n, body)
    assert all(r == payloads for r in results)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 5),
       st.lists(st.floats(-1e6, 1e6), min_size=5, max_size=5),
       st.sampled_from([SUM, MAX, MIN]))
def test_reduce_scan_consistency(n, values, op):
    per_rank = values[:n]

    def body(proc, comm):
        red = comm.reduce(per_rank[comm.rank], op, root=0)
        sc = comm.scan(per_rank[comm.rank], op)
        return (red, sc)

    results = _run(n, body)
    # the last rank's scan equals the full reduction at root
    root_reduce = results[0][0]
    last_scan = results[-1][1]
    assert last_scan == pytest.approx(root_reduce)
    # scan prefixes are correct
    acc = per_rank[0]
    assert results[0][1] == pytest.approx(acc)
    for r in range(1, n):
        acc = op(acc, per_rank[r])
        assert results[r][1] == pytest.approx(acc)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 4), st.integers(0, 3), st.data())
def test_bcast_any_root_any_payload(n, root_mod, data):
    root = root_mod % n
    payload = data.draw(st.one_of(
        st.integers(), st.text(max_size=20),
        st.lists(st.floats(allow_nan=False, allow_infinity=False),
                 max_size=6),
        st.dictionaries(st.text(alphabet="ab", min_size=1, max_size=3),
                        st.integers(), max_size=3)))

    def body(proc, comm):
        value = payload if comm.rank == root else None
        return comm.bcast(value, root=root)

    results = _run(n, body)
    assert all(r == payload for r in results)


@settings(max_examples=15, deadline=None)
@given(st.integers(1, 4), st.integers(1, 64))
def test_buffer_allreduce_matches_numpy(n, width):
    rng = np.random.default_rng(width)
    arrays = [rng.normal(size=width) for _ in range(n)]

    def body(proc, comm):
        out = np.zeros(width)
        comm.Allreduce(arrays[comm.rank], out, SUM)
        return out

    results = _run(n, body)
    expected = np.sum(arrays, axis=0)
    for r in results:
        np.testing.assert_allclose(r, expected)


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 4), st.data())
def test_alltoall_is_a_transpose(n, data):
    matrix = [[data.draw(st.integers(0, 99)) for _ in range(n)]
              for _ in range(n)]

    def body(proc, comm):
        return comm.alltoall(matrix[comm.rank])

    results = _run(n, body)
    for dst in range(n):
        assert results[dst] == [matrix[src][dst] for src in range(n)]


def test_simulation_is_deterministic_under_load():
    """Two identical runs of a busy mixed workload produce identical
    event timings — the foundation every measurement rests on."""
    def run_once():
        trace = []

        def body(proc, comm):
            for i in range(3):
                x = comm.allreduce(comm.rank * (i + 1), SUM)
                trace.append((comm.rank, i, x, round(comm.Wtime(), 12)))
                if comm.rank == 0:
                    comm.send("ping", dest=(comm.rank + 1) % comm.size)
                elif comm.rank == 1:
                    comm.recv(source=0)
            return True

        _run(4, body)
        return trace

    assert run_once() == run_once()
