"""Grid topologies and the machinery behind grid-scale runs: the
:func:`build_grid` generator, the per-fabric route cache, batch flow
admission, and the hierarchical (site-sharded + vectorized) solver's
exactness against the flat modes — including WAN link failure
mid-transfer."""

from __future__ import annotations

import pytest

from repro.net import Topology, build_grid
from repro.net.flows import FlowNetwork, TransferError
from repro.sim.kernel import SimKernel
from tests.net.test_incremental_maxmin import CheckedFlowNetwork


# ---------------------------------------------------------------------------
# build_grid
# ---------------------------------------------------------------------------

def test_grid_shape_and_site_tags():
    topo, site_hosts = build_grid(sites=3, hosts_per_site=4)
    assert sorted(site_hosts) == ["g0", "g1", "g2"]
    assert [h.name for h in site_hosts["g0"]] == \
        ["g0n0", "g0n1", "g0n2", "g0n3"]
    # site fabrics carry the shard tag, the WAN is site-less
    assert topo.fabrics["g0-san"].site == "g0"
    assert topo.fabrics["g2-san"].site == "g2"
    assert topo.fabrics["g-wan"].site is None
    # intra-site traffic has the SAN, cross-site only the WAN
    assert [f.name for f in topo.fabrics_connecting("g0n0", "g0n1")] == \
        ["g0-san", "g-wan"]
    assert [f.name for f in topo.fabrics_connecting("g0n0", "g1n0")] == \
        ["g-wan"]
    # cross-site path: uplink, router->core, core->router, downlink
    assert len(topo.route("g0n0", "g1n0", "g-wan")) == 4


def test_grid_switch_fanout_spreads_leaves():
    topo, site_hosts = build_grid(sites=2, hosts_per_site=8,
                                  switch_fanout=4)
    # same leaf: host -> sw0 -> host
    assert len(topo.route("g0n0", "g0n1", "g0-san")) == 2
    # cross leaf: host -> sw0 -> spine -> sw1 -> host
    assert len(topo.route("g0n0", "g0n5", "g0-san")) == 4


def test_grid_host_names_cannot_collide_across_sites():
    # 12 sites: "g1" + "10" and "g11" + "0" would both be "g110"
    # without the non-digit host prefix
    topo, site_hosts = build_grid(sites=12, hosts_per_site=11)
    assert "g1n10" in topo.hosts and "g11n0" in topo.hosts
    assert len(topo.hosts) == 12 * 11


def test_grid_needs_a_site():
    with pytest.raises(ValueError):
        build_grid(sites=0)


# ---------------------------------------------------------------------------
# route cache
# ---------------------------------------------------------------------------

def test_route_cache_hits_and_misses():
    topo, _ = build_grid(sites=2, hosts_per_site=4)
    fab = topo.fabrics["g0-san"]
    first = topo.route("g0n0", "g0n1", "g0-san")
    assert (fab.route_cache_hits, fab.route_cache_misses) == (0, 1)
    again = topo.route("g0n0", "g0n1", "g0-san")
    assert (fab.route_cache_hits, fab.route_cache_misses) == (1, 1)
    assert again == first
    # the reverse direction is its own key
    topo.route("g0n1", "g0n0", "g0-san")
    assert (fab.route_cache_hits, fab.route_cache_misses) == (1, 2)
    hits, misses = topo.route_cache_stats()
    assert (hits, misses) == (1, 2)


def test_route_cache_invalidated_by_link_state():
    topo, _ = build_grid(sites=2, hosts_per_site=4)
    fab = topo.fabrics["g0-san"]
    cached = topo.route("g0n0", "g0n1", "g0-san")
    topo.set_link_state("g0-san", "g0n0", "g0-san-sw", up=False)
    # the cached path crosses the downed link; it must not be served
    with pytest.raises(Exception):
        topo.route("g0n0", "g0n1", "g0-san")
    topo.set_link_state("g0-san", "g0n0", "g0-san-sw", up=True)
    assert topo.route("g0n0", "g0n1", "g0-san") == cached
    assert fab.route_cache_hits == 0  # every lookup re-resolved


# ---------------------------------------------------------------------------
# batch admission
# ---------------------------------------------------------------------------

def _grid_net(**kw) -> tuple[Topology, SimKernel, FlowNetwork]:
    topo, _ = build_grid(sites=2, hosts_per_site=4)
    kernel = SimKernel()
    return topo, kernel, FlowNetwork(kernel, topo, **kw)


def test_start_flows_matches_sequential_same_instant():
    reqs = [("g0n0", "g0n1", "g0-san", 1e6),
            ("g0n2", "g0n3", "g0-san", 2e6),
            ("g0n0", "g1n0", "g-wan", 3e6),
            ("g1n1", "g1n2", "g1-san", 4e6)]

    def routes(topo):
        return [(topo.route(a, b, fab), size, lambda flow: None)
                for a, b, fab, size in reqs]

    topo_b, kernel_b, net_b = _grid_net()
    kernel_b.schedule(0.5, lambda: net_b.start_flows(routes(topo_b)))
    kernel_b.run()

    topo_s, kernel_s, net_s = _grid_net()

    def sequential():
        for route, size, cb in routes(topo_s):
            net_s.start_flow(route, size, cb)

    kernel_s.schedule(0.5, sequential)
    kernel_s.run()

    assert net_b.flow_log == net_s.flow_log
    assert kernel_b.now == kernel_s.now


def test_start_flows_validation_is_atomic():
    topo, kernel, net = _grid_net()
    good = topo.route("g0n0", "g0n1", "g0-san")
    bad = topo.route("g0n2", "g0n3", "g0-san")
    topo.set_link_state("g0-san", "g0n2", "g0-san-sw", up=False)
    with pytest.raises(TransferError):
        net.start_flows([(good, 1e6, lambda f: None),
                         (bad, 1e6, lambda f: None)])
    assert net.active_flows == []
    with pytest.raises(ValueError):
        net.start_flows([(good, 1e6, lambda f: None),
                         (good, 0.0, lambda f: None)])
    assert net.active_flows == []


# ---------------------------------------------------------------------------
# hierarchical solver vs the flat modes
# ---------------------------------------------------------------------------
#
# A multi-site schedule with intra-site rings, WAN coupling flows and a
# WAN link failure mid-transfer, replayed under every solver mode with
# thresholds forced low enough that the sharded run actually exercises
# the whole-shard gate and the vectorized fill.

def _run_grid_schedule(*, incremental, sharded=False, checked=False,
                       shard_threshold=None, vec_threshold=None):
    topo, site_hosts = build_grid(sites=3, hosts_per_site=4,
                                  switch_fanout=2)
    kernel = SimKernel()
    cls = CheckedFlowNetwork if checked else FlowNetwork
    kw = {}
    if shard_threshold is not None:
        kw["shard_threshold"] = shard_threshold
    if vec_threshold is not None:
        kw["vec_threshold"] = vec_threshold
    net = cls(kernel, topo, incremental=incremental, sharded=sharded, **kw)

    def start(a, b, fab, size):
        try:
            net.start_flow(topo.route(a, b, fab), size, lambda flow: None)
        except TransferError:
            pass

    def start_batch(batch):
        net.start_flows([(topo.route(a, b, fab), size, lambda flow: None)
                         for a, b, fab, size in batch])

    def fail_wan_core():
        # router0 -> core: aborts every flow through site g0's uplink
        net.fail_link(topo.fabrics["g-wan"].link("g-wan-r0", "g-wan-core"))

    for s in range(3):
        ring = [(f"g{s}n{i}", f"g{s}n{(i + 1) % 4}", f"g{s}-san",
                 1e6 * (i + 1 + s)) for i in range(4)]
        kernel.schedule(0.0, start_batch, ring)
    kernel.schedule(1e-4, start, "g0n0", "g1n0", "g-wan", 5e6)
    kernel.schedule(1e-4, start, "g1n2", "g2n3", "g-wan", 7e6)
    kernel.schedule(2e-4, start, "g0n1", "g2n0", "g-wan", 3e6)
    kernel.schedule(5e-4, fail_wan_core)
    kernel.schedule(6e-4, start, "g0n2", "g0n3", "g0-san", 2e6)
    kernel.schedule(6e-4, start, "g1n0", "g2n1", "g-wan", 4e6)
    kernel.run()
    return net, kernel


def test_wan_failure_identical_across_all_solver_modes():
    ref, k_ref = _run_grid_schedule(incremental=False)
    flat, k_flat = _run_grid_schedule(incremental=True)
    sharded, k_sh = _run_grid_schedule(incremental=True, sharded=True,
                                       shard_threshold=2, vec_threshold=2)
    assert ref.flow_log == flat.flow_log == sharded.flow_log
    assert k_ref.now == k_flat.now == k_sh.now
    # the WAN failure aborted the two flows crossing site g0's uplink
    assert sum(not ok for *_rest, ok in ref.flow_log) == 2
    assert [(l.name, v) for l, v in sharded.link_bytes.items()] == \
        [(l.name, v) for l, v in ref.link_bytes.items()]


def test_sharded_vectorized_run_checked_against_oracle():
    # CheckedFlowNetwork re-derives the global max-min allocation from
    # scratch after every reallocation: the hierarchical tier and the
    # vectorized fill must match it bit-for-bit, every event
    net, _ = _run_grid_schedule(incremental=True, sharded=True,
                                checked=True, shard_threshold=2,
                                vec_threshold=2)
    assert net.completed_flows > 0
    # the vectorized path actually ran: each site ring alone crosses
    # the forced threshold
    assert net.solver_flows_resolved > 0


def test_flow_shard_tags():
    topo, _ = build_grid(sites=2, hosts_per_site=4)
    kernel = SimKernel()
    net = FlowNetwork(kernel, topo, sharded=True)
    intra = net.start_flow(topo.route("g0n0", "g0n1", "g0-san"), 1e6,
                           lambda f: None)
    wan = net.start_flow(topo.route("g0n0", "g1n0", "g-wan"), 1e6,
                         lambda f: None)
    assert intra.shard == "g0"
    assert wan.shard is None  # coupling tier
