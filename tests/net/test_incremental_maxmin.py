"""Differential tests: incremental max-min solver ≡ from-scratch solver.

The incremental solver's whole claim (docs/PERFORMANCE.md) is that
restricting progressive filling to the link-connected component of a
change is *exact* — bit-for-bit, not approximately.  These tests check
that claim three ways:

1. an invariant-checking ``FlowNetwork`` subclass asserts, after every
   single reallocation of a randomised workload, that the live rates
   equal a from-scratch :func:`maxmin_rates` solve — same values, same
   flow order;
2. whole runs replayed under both solver modes must agree on the flow
   log, the final virtual clock, and per-link byte accounting;
3. the concurrent CORBA+MPI sharing workload (the paper's §4.4
   experiment) must export the *identical* observability trace under
   both modes.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import NoRouteError, Topology, build_cluster
from repro.net.flows import FlowNetwork, TransferError, maxmin_rates
from repro.sim.kernel import SimKernel


class CheckedFlowNetwork(FlowNetwork):
    """Asserts the incremental invariant after every reallocation."""

    def _reallocate(self, dirty=None):
        super()._reallocate(dirty)
        expected = maxmin_rates(self._flows)
        # bit-for-bit: exact float equality AND identical flow order
        assert [(f, f.rate) for f in self._flows] == list(expected.items())


# ---------------------------------------------------------------------------
# randomised workloads
# ---------------------------------------------------------------------------
#
# A schedule is pure data — (kind, time, ...) events over small random
# clusters — so the identical workload replays under either solver mode.

@st.composite
def schedules(draw):
    n_clusters = draw(st.integers(1, 2))
    clusters = [draw(st.integers(2, 5)) for _ in range(n_clusters)]
    events = []
    t = 0.0
    for _ in range(draw(st.integers(1, 12))):
        t += draw(st.floats(0.0, 0.01, allow_nan=False))
        ci = draw(st.integers(0, n_clusters - 1))
        n = clusters[ci]
        src = draw(st.integers(0, n - 1))
        dst = (src + draw(st.integers(1, n - 1))) % n
        fabric = draw(st.sampled_from(["san", "lan"]))
        if draw(st.integers(0, 9)) == 0:
            # bring the source host's uplink down mid-run: exercises the
            # removal path where several flows leave one component at once
            events.append(("fail", t, ci, src, dst, fabric))
        else:
            size = draw(st.floats(1e3, 1e7, allow_nan=False))
            events.append(("flow", t, ci, src, dst, fabric, size))
    return clusters, events


def run_schedule(spec, incremental, checked):
    clusters, events = spec
    topo = Topology()
    for ci, n_hosts in enumerate(clusters):
        build_cluster(topo, f"c{ci}", n_hosts)
    kernel = SimKernel()
    cls = CheckedFlowNetwork if checked else FlowNetwork
    net = cls(kernel, topo, incremental=incremental)

    def start(ci, src, dst, fabric, size):
        try:
            route = topo.route(f"c{ci}{src}", f"c{ci}{dst}",
                               f"c{ci}-{fabric}")
            net.start_flow(route, size, lambda flow: None)
        except (NoRouteError, TransferError):
            pass  # a link failed earlier; both modes raise identically

    def fail(ci, src, dst, fabric):
        try:
            route = topo.route(f"c{ci}{src}", f"c{ci}{dst}",
                               f"c{ci}-{fabric}")
        except NoRouteError:
            return
        net.fail_link(route[0])

    for ev in events:
        if ev[0] == "flow":
            _, t, ci, src, dst, fabric, size = ev
            kernel.schedule(t, start, ci, src, dst, fabric, size)
        else:
            _, t, ci, src, dst, fabric = ev
            kernel.schedule(t, fail, ci, src, dst, fabric)
    kernel.run()
    return net, kernel


@settings(max_examples=200, deadline=None)
@given(schedules())
def test_incremental_exactness_and_cross_mode_equality(spec):
    # (1) invariant checked after every single reallocation
    net_inc, kernel_inc = run_schedule(spec, incremental=True, checked=True)
    # (2) whole-run observables identical to the from-scratch solver
    net_ref, kernel_ref = run_schedule(spec, incremental=False, checked=False)
    assert net_inc.flow_log == net_ref.flow_log
    assert kernel_inc.now == kernel_ref.now
    # links are per-topology objects: compare by name, in insertion
    # order (the accounting order itself must match, not just the sums)
    assert [(l.name, v) for l, v in net_inc.link_bytes.items()] == \
        [(l.name, v) for l, v in net_ref.link_bytes.items()]
    assert net_inc.completed_flows == net_ref.completed_flows
    # the incremental solver never does more bottleneck rounds
    assert net_inc.solver_iterations <= net_ref.solver_iterations


def test_incremental_saves_iterations_on_disjoint_components():
    # two disjoint host pairs: each add/completion should re-solve only
    # its own pair, so the incremental run does strictly less work
    spec = ([4], [("flow", 0.0, 0, 0, 1, "san", 1e6),
                  ("flow", 0.0, 0, 2, 3, "san", 2e6),
                  ("flow", 0.001, 0, 0, 1, "san", 3e6),
                  ("flow", 0.001, 0, 2, 3, "san", 4e6)])
    net_inc, _ = run_schedule(spec, incremental=True, checked=True)
    net_ref, _ = run_schedule(spec, incremental=False, checked=False)
    assert net_inc.flow_log == net_ref.flow_log
    assert net_inc.solver_iterations < net_ref.solver_iterations


def test_fail_link_matches_from_scratch():
    spec = ([3], [("flow", 0.0, 0, 0, 1, "san", 5e7),
                  ("flow", 0.0, 0, 1, 2, "san", 5e7),
                  ("fail", 0.001, 0, 0, 1, "san"),
                  ("flow", 0.002, 0, 1, 2, "san", 1e6)])
    net_inc, k_inc = run_schedule(spec, incremental=True, checked=True)
    net_ref, k_ref = run_schedule(spec, incremental=False, checked=False)
    assert net_inc.flow_log == net_ref.flow_log
    assert k_inc.now == k_ref.now


# ---------------------------------------------------------------------------
# obs trace equality on the concurrent-sharing workload
# ---------------------------------------------------------------------------

def _sharing_trace(incremental: bool) -> str:
    """The §4.4 concurrency experiment (CORBA and MPI bulk streams over
    one SAN at the same time), exported as a canonical trace string."""
    from repro.corba import OMNIORB4, Orb, compile_idl
    from repro.mpi import create_world, spmd
    from repro.obs import TraceRecorder, chrome_trace
    from repro.padicotm import PadicoRuntime

    size = 1_000_000
    idl = """
    module Bench {
        typedef sequence<octet> Blob;
        interface Sink { void push(in Blob data); };
    };
    """
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo, incremental=incremental)
    recorder = rt.observe(TraceRecorder())
    p0 = rt.create_process("n0", "p0")
    p1 = rt.create_process("n1", "p1")
    s_orb = Orb(p1, OMNIORB4, compile_idl(idl))
    s_orb.start()
    c_orb = Orb(p0, OMNIORB4, compile_idl(idl))

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    world = create_world(rt, "bench", [p0, p1])
    gate = 0.001

    def corba_main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")
        proc.sleep(gate - rt.kernel.now)
        stub.push(bytes(size))

    def mpi_main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            proc.sleep(gate - rt.kernel.now)
            comm.Send(np.zeros(size, dtype="u1"), dest=1)
        else:
            buf = np.empty(size, dtype="u1")
            comm.Recv(buf, source=0)

    p0.spawn(corba_main)
    spmd(world, mpi_main)
    rt.run()
    rt.shutdown()
    return json.dumps(chrome_trace(recorder), sort_keys=True)


def test_sharing_benchmark_trace_identical_across_modes():
    assert _sharing_trace(incremental=True) == \
        _sharing_trace(incremental=False)
