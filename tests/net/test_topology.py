"""Unit tests for hosts, fabrics, links and routing."""

import pytest

from repro.net import (
    ETHERNET_100,
    MYRINET_2000,
    WAN,
    NetworkTechnology,
    NoRouteError,
    Topology,
    build_cluster,
    build_two_site_grid,
)


def test_technology_validation():
    with pytest.raises(ValueError):
        NetworkTechnology("bad", bandwidth=0, latency=1e-6)
    with pytest.raises(ValueError):
        NetworkTechnology("bad", bandwidth=1e6, latency=-1)
    with pytest.raises(ValueError):
        NetworkTechnology("bad", bandwidth=1e6, latency=1e-6, paradigm="weird")


def test_myrinet_model_matches_paper_numbers():
    # paper: 240 MB/s peak = 96 % of Myrinet-2000 hardware bandwidth
    assert MYRINET_2000.bandwidth == pytest.approx(240e6)
    assert MYRINET_2000.efficiency == pytest.approx(0.96)
    assert MYRINET_2000.paradigm == "parallel"
    assert MYRINET_2000.secure
    # one-way wire path through the switch (2 hops) is 9 µs
    assert 2 * MYRINET_2000.latency == pytest.approx(9e-6)


def test_ethernet_model():
    assert ETHERNET_100.bandwidth == pytest.approx(11.2e6)
    assert ETHERNET_100.paradigm == "distributed"
    assert not ETHERNET_100.secure


def test_cluster_routing_two_hops():
    topo = Topology()
    build_cluster(topo, "a", 4)
    route = topo.route("a0", "a1", "a-san")
    assert [l.name for l in route] == ["a-san:a0->a-san-sw",
                                       "a-san:a-san-sw->a1"]
    assert sum(l.latency for l in route) == pytest.approx(9e-6)
    assert all(l.bandwidth == pytest.approx(240e6) for l in route)


def test_route_same_host_is_empty():
    topo = Topology()
    build_cluster(topo, "a", 2)
    assert topo.route("a0", "a0", "a-san") == []


def test_route_unknown_endpoint_raises():
    topo = Topology()
    build_cluster(topo, "a", 2)
    with pytest.raises(NoRouteError):
        topo.route("a0", "zz", "a-san")


def test_hosts_know_their_fabrics():
    topo = Topology()
    build_cluster(topo, "a", 2)
    assert topo.hosts["a0"].fabrics == {"a-san", "a-lan"}


def test_duplicate_names_rejected():
    topo = Topology()
    topo.add_host("h")
    with pytest.raises(ValueError):
        topo.add_host("h")
    topo.add_fabric("f", ETHERNET_100)
    with pytest.raises(ValueError):
        topo.add_fabric("f", ETHERNET_100)


def test_fabrics_connecting_prefers_fastest():
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=2)
    # intra-site: SAN (fast) first, then LAN, then WAN path via router
    fabs = topo.fabrics_connecting("a0", "a1")
    assert [f.name for f in fabs] == ["a-san", "a-lan", "wan"]
    # cross-site: only the WAN reaches
    fabs = topo.fabrics_connecting("a0", "b0")
    assert [f.name for f in fabs] == ["wan"]


def test_two_site_grid_wan_latency_dominates():
    topo, _, _ = build_two_site_grid(n_per_site=2)
    lat = topo.fabrics["wan"].path_latency("a0", "b0")
    # eth hop + WAN hop + eth hop
    assert lat == pytest.approx(WAN.latency + 2 * ETHERNET_100.latency)


def test_link_failure_reroutes_or_raises():
    topo = Topology()
    fab = topo.add_fabric("ring", ETHERNET_100)
    for n in ("x", "y", "z"):
        topo.add_host(n)
    topo.attach("x", fab, "y")
    topo.attach("y", fab, "z")
    topo.attach("x", fab, "z")
    direct = topo.route("x", "y", "ring")
    assert len(direct) == 1
    topo.set_link_state("ring", "x", "y", up=False)
    detour = topo.route("x", "y", "ring")
    assert [l.src for l in detour] == ["x", "z"]
    topo.set_link_state("ring", "x", "z", up=False)
    with pytest.raises(NoRouteError):
        topo.route("x", "y", "ring")
    # bring back up
    topo.set_link_state("ring", "x", "y", up=True)
    assert len(topo.route("x", "y", "ring")) == 1


def test_self_loop_rejected():
    topo = Topology()
    fab = topo.add_fabric("f", ETHERNET_100)
    topo.add_host("h")
    with pytest.raises(ValueError):
        topo.attach("h", fab, "h")


def test_attach_unknown_host_rejected():
    topo = Topology()
    fab = topo.add_fabric("f", ETHERNET_100)
    with pytest.raises(ValueError):
        topo.attach("ghost", fab, "sw")
