"""Network traffic reporting."""

import pytest

from repro.net import FlowNetwork, Topology, build_cluster
from repro.net.stats import collect_report
from repro.sim import SimKernel


@pytest.fixture()
def grid():
    kernel = SimKernel()
    topo = Topology()
    build_cluster(topo, "a", 4)
    net = FlowNetwork(kernel, topo)
    yield kernel, topo, net
    kernel.shutdown()


def test_report_counts_link_level_traffic(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 1_000_000, "a-san")
        net.transfer(p, "a0", "a2", 500_000, "a-lan")

    kernel.spawn(proc)
    kernel.run()
    report = collect_report(net)
    # 2 hops per transfer → link-level volume is twice the payload
    assert report.fabrics["a-san"].total_bytes == pytest.approx(2_000_000)
    assert report.fabrics["a-lan"].total_bytes == pytest.approx(1_000_000)
    assert report.total_bytes == pytest.approx(3_000_000)
    assert report.fabrics["wan"].total_bytes == 0.0 \
        if "wan" in report.fabrics else True


def test_host_bytes_and_busiest_link(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 1_000_000, "a-san")
        net.transfer(p, "a0", "a2", 1_000_000, "a-san")

    kernel.spawn(proc)
    kernel.run()
    report = collect_report(net)
    # a0 sent 2 MB; a1/a2 received 1 MB each
    assert report.host_bytes("a0") == pytest.approx(2_000_000)
    assert report.host_bytes("a1") == pytest.approx(1_000_000)
    busiest = report.fabrics["a-san"].busiest
    assert busiest.link.src == "a0"
    assert busiest.bytes == pytest.approx(2_000_000)


def test_tx_rx_decomposition(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 1_000_000, "a-san")
        net.transfer(p, "a1", "a0", 400_000, "a-san")

    kernel.spawn(proc)
    kernel.run()
    report = collect_report(net)
    assert report.tx_bytes("a0") == pytest.approx(1_000_000)
    assert report.rx_bytes("a0") == pytest.approx(400_000)
    assert report.host_bytes("a0") == pytest.approx(1_400_000)
    # the switch relays everything in both directions
    assert report.host_bytes("a-san-sw") == pytest.approx(2_800_000)


def test_host_bytes_counts_self_loop_once():
    """A self-loop link (src == dst) must count once in host_bytes, not
    twice — the tx + rx decomposition would otherwise double it.

    ``Fabric._add_edge`` refuses self-loops, so the report is built by
    hand with a directly-constructed ``Link``, the way an external
    topology importer could produce one."""
    from repro.net.stats import FabricStats, LinkStats, NetworkReport
    from repro.net.topology import Link

    loop = Link("lo0", "a0", "a0", None, 1e9, 0.0)
    wire = Link("a0-a1", "a0", "a1", None, 1e8, 1e-6)
    fstats = FabricStats("lan", "Ethernet-100",
                         links=[LinkStats(loop, 500.0),
                                LinkStats(wire, 300.0)])
    fstats.total_bytes = 800.0
    report = NetworkReport(1.0, {"lan": fstats})
    assert report.tx_bytes("a0") == pytest.approx(800.0)
    assert report.rx_bytes("a0") == pytest.approx(500.0)
    # 500 (loop, once) + 300 (tx on the wire) — not 500*2 + 300
    assert report.host_bytes("a0") == pytest.approx(800.0)
    assert report.host_bytes("a1") == pytest.approx(300.0)


def test_report_to_json_round_trip(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 1_000_000, "a-san")

    kernel.spawn(proc)
    kernel.run()
    report = collect_report(net)
    doc = report.to_json()
    import json
    json.dumps(doc)  # plain JSON types only
    assert doc["elapsed"] == report.elapsed
    assert doc["total_bytes"] == pytest.approx(2_000_000)
    san = doc["fabrics"]["a-san"]
    assert san["technology"] == "Myrinet-2000"
    names = [entry["link"] for entry in san["links"]]
    assert names == sorted(names)
    for entry in san["links"]:
        assert set(entry) == {"link", "src", "dst", "bytes", "utilisation"}
        assert 0.0 <= entry["utilisation"] <= 1.0


def test_utilisation_bounds(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 2_400_000, "a-san")  # 10 ms at 240

    kernel.spawn(proc)
    kernel.run()
    report = collect_report(net)
    busiest = report.fabrics["a-san"].busiest
    # ~100% utilisation during the transfer window
    assert busiest.utilisation(report.elapsed) == pytest.approx(1.0,
                                                                rel=0.01)
    assert busiest.utilisation(report.elapsed * 2) == pytest.approx(
        0.5, rel=0.01)
    assert busiest.utilisation(0.0) == 0.0


def test_format_readable(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 1_000_000, "a-san")

    kernel.spawn(proc)
    kernel.run()
    text = collect_report(net).format()
    assert "a-san" in text
    assert "Myrinet-2000" in text
    assert "2.00 MB" in text
    assert "busiest" in text


def test_empty_report(grid):
    kernel, topo, net = grid
    report = collect_report(net, elapsed=1.0)
    assert report.total_bytes == 0
    assert "(no traffic)" in report.format()


def test_flow_log_and_timeline(grid):
    kernel, topo, net = grid

    def a(p):
        net.transfer(p, "a0", "a1", 2_400_000, "a-san")

    def b(p):
        p.sleep(0.002)
        net.transfer(p, "a2", "a3", 1_200_000, "a-san")

    kernel.spawn(a)
    kernel.spawn(b)
    kernel.run()
    assert len(net.flow_log) == 2
    (s1, e1, n1, l1, ok1), (s2, e2, n2, l2, ok2) = sorted(net.flow_log)
    assert (ok1, ok2) == (True, True)
    assert n1 == 2_400_000 and n2 == 1_200_000
    assert s2 == pytest.approx(0.002 + 9e-6)
    from repro.net.stats import format_timeline
    text = format_timeline(net)
    assert "2 flows" in text
    assert text.count("|") == 4  # two bar rows


def test_flow_log_records_failures(grid):
    kernel, topo, net = grid
    from repro.net import TransferError

    def sender(p):
        try:
            net.transfer(p, "a0", "a1", 240_000_000, "a-san")
        except TransferError:
            pass

    def chaos(p):
        p.sleep(0.01)
        net.fail_link(topo.fabrics["a-san"].link("a0", "a-san-sw"))

    kernel.spawn(sender)
    kernel.spawn(chaos)
    kernel.run()
    assert len(net.flow_log) == 1
    assert net.flow_log[0][-1] is False  # aborted
    from repro.net.stats import format_timeline
    assert "x" in format_timeline(net)


def test_timeline_empty(grid):
    kernel, topo, net = grid
    from repro.net.stats import format_timeline
    assert "no transfers" in format_timeline(net)
