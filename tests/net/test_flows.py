"""Unit tests for the flow-level transfer engine."""

import pytest

from repro.net import FlowNetwork, Topology, TransferError, build_cluster
from repro.sim import SimKernel


@pytest.fixture()
def grid():
    kernel = SimKernel()
    topo = Topology()
    build_cluster(topo, "a", 4)
    net = FlowNetwork(kernel, topo)
    yield kernel, topo, net
    kernel.shutdown()


def test_single_transfer_latency_plus_fluid_time(grid):
    kernel, topo, net = grid

    def proc(p):
        return net.transfer(p, "a0", "a1", 1_000_000, "a-san")

    pr = kernel.spawn(proc)
    kernel.run()
    expected = 9e-6 + 1_000_000 / 240e6
    assert pr.result == pytest.approx(expected, rel=1e-9)


def test_zero_byte_transfer_costs_only_latency(grid):
    kernel, topo, net = grid

    def proc(p):
        return net.transfer(p, "a0", "a1", 0, "a-san")

    pr = kernel.spawn(proc)
    kernel.run()
    assert pr.result == pytest.approx(9e-6)


def test_two_flows_same_route_share_half_each(grid):
    """The paper's concurrency result: two streams on one Myrinet path
    each get 120 MB/s."""
    kernel, topo, net = grid
    done = []

    def proc(p, name):
        elapsed = net.transfer(p, "a0", "a1", 1_200_000, "a-san")
        done.append((name, elapsed))

    kernel.spawn(proc, "corba")
    kernel.spawn(proc, "mpi")
    kernel.run()
    # both run concurrently at 120 MB/s
    expected = 9e-6 + 1_200_000 / 120e6
    for _name, elapsed in done:
        assert elapsed == pytest.approx(expected, rel=1e-6)


def test_disjoint_pairs_do_not_contend(grid):
    kernel, topo, net = grid
    done = []

    def proc(p, src, dst):
        done.append(net.transfer(p, src, dst, 2_400_000, "a-san"))

    kernel.spawn(proc, "a0", "a1")
    kernel.spawn(proc, "a2", "a3")
    kernel.run()
    expected = 9e-6 + 2_400_000 / 240e6
    assert all(e == pytest.approx(expected, rel=1e-6) for e in done)


def test_late_flow_slows_down_early_flow(grid):
    kernel, topo, net = grid
    results = {}

    def early(p):
        results["early"] = net.transfer(p, "a0", "a1", 2_400_000, "a-san")

    def late(p):
        p.sleep(0.005)  # early flow is half done (10ms total alone)
        results["late"] = net.transfer(p, "a0", "a1", 1_200_000, "a-san")

    kernel.spawn(early)
    kernel.spawn(late)
    kernel.run()
    # early: ~5ms alone at 240 + remaining 1.2MB shared at 120 = ~10ms + lat
    assert results["early"] == pytest.approx(9e-6 + 0.005 + 0.01, rel=1e-3)


def test_link_bytes_accounting(grid):
    kernel, topo, net = grid

    def proc(p):
        net.transfer(p, "a0", "a1", 500_000, "a-san")

    kernel.spawn(proc)
    kernel.run()
    uplink = topo.fabrics["a-san"].link("a0", "a-san-sw")
    downlink = topo.fabrics["a-san"].link("a-san-sw", "a1")
    assert net.link_bytes[uplink] == pytest.approx(500_000)
    assert net.link_bytes[downlink] == pytest.approx(500_000)
    assert net.completed_flows == 1


def test_link_failure_aborts_inflight_transfer(grid):
    kernel, topo, net = grid
    caught = []

    def sender(p):
        try:
            net.transfer(p, "a0", "a1", 240_000_000, "a-san")  # 1s alone
        except TransferError as e:
            caught.append((kernel.now, str(e)))

    def chaos(p):
        p.sleep(0.1)
        link = topo.fabrics["a-san"].link("a0", "a-san-sw")
        net.fail_link(link)

    kernel.spawn(sender)
    kernel.spawn(chaos)
    kernel.run()
    assert len(caught) == 1
    assert caught[0][0] == pytest.approx(0.1)
    assert "down" in caught[0][1]


def test_transfer_on_downed_link_raises_immediately(grid):
    kernel, topo, net = grid
    topo.set_link_state("a-san", "a0", "a-san-sw", up=False)
    errors = []

    def sender(p):
        try:
            net.transfer(p, "a0", "a1", 1000, "a-san")
        except Exception as e:  # noqa: BLE001
            errors.append(type(e).__name__)

    kernel.spawn(sender)
    kernel.run()
    # routing already fails: NoRouteError
    assert errors == ["NoRouteError"]


def test_surviving_flow_speeds_up_after_other_completes(grid):
    kernel, topo, net = grid
    results = {}

    def small(p):
        results["small"] = net.transfer(p, "a0", "a1", 1_200_000, "a-san")

    def big(p):
        results["big"] = net.transfer(p, "a0", "a1", 3_600_000, "a-san")

    kernel.spawn(small)
    kernel.spawn(big)
    kernel.run()
    # both at 120 until small's 1.2MB completes (t=10ms); big then has
    # 2.4MB left at 240 → 10ms more.
    assert results["small"] == pytest.approx(9e-6 + 0.01, rel=1e-6)
    assert results["big"] == pytest.approx(9e-6 + 0.02, rel=1e-6)


def test_interrupted_sender_cancels_flow(grid):
    kernel, topo, net = grid
    outcome = []

    def sender(p):
        try:
            net.transfer(p, "a0", "a1", 240_000_000, "a-san")
        except Exception as e:  # noqa: BLE001
            outcome.append(type(e).__name__)
        p.suspend()

    def other(p):
        # starts later; should get full bandwidth once sender is killed
        p.sleep(0.2)
        t0 = kernel.now
        net.transfer(p, "a0", "a1", 2_400_000, "a-san")
        outcome.append(kernel.now - t0)

    s = kernel.spawn(sender, daemon=True)

    def killer(p):
        p.sleep(0.1)
        s.interrupt("chaos")

    kernel.spawn(other)
    kernel.spawn(killer)
    kernel.run()
    assert outcome[0] == "SimInterrupt"
    assert outcome[1] == pytest.approx(9e-6 + 0.01, rel=1e-6)


def test_start_flow_callback_api(grid):
    kernel, topo, net = grid
    fired = []
    route = topo.route("a0", "a1", "a-san")
    net.start_flow(route, 240_000, lambda f: fired.append((kernel.now, f.error)))
    kernel.run()
    assert len(fired) == 1
    t, err = fired[0]
    assert err is None
    assert t == pytest.approx(240_000 / 240e6)


def test_start_flow_rejects_empty_size(grid):
    kernel, topo, net = grid
    route = topo.route("a0", "a1", "a-san")
    with pytest.raises(ValueError):
        net.start_flow(route, 0, lambda f: None)
