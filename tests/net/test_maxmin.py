"""Property-based tests for the max-min fair allocator."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.flows import Flow, maxmin_rates
from repro.net.topology import Fabric, Link
from repro.net.devices import ETHERNET_100


def _mklink(i: int, bandwidth: float) -> Link:
    fab = Fabric.__new__(Fabric)  # bare fabric shell; routing not needed
    fab.name = "t"
    fab.technology = ETHERNET_100
    return Link(f"l{i}", f"s{i}", f"d{i}", fab, bandwidth, 0.0)


def _mkflow(route):
    return Flow(route, 1.0, None, None, 0.0)


@st.composite
def scenarios(draw):
    n_links = draw(st.integers(1, 6))
    links = [_mklink(i, draw(st.floats(1.0, 1000.0))) for i in range(n_links)]
    n_flows = draw(st.integers(1, 8))
    flows = []
    for _ in range(n_flows):
        idx = draw(st.lists(st.integers(0, n_links - 1), min_size=1,
                            max_size=n_links, unique=True))
        flows.append(_mkflow([links[i] for i in idx]))
    return links, flows


@settings(max_examples=200, deadline=None)
@given(scenarios())
def test_maxmin_feasible_and_fair(scenario):
    links, flows = scenario
    rates = maxmin_rates(flows)

    # every flow got a positive, finite rate
    for f in flows:
        assert rates[f] > 0
        assert math.isfinite(rates[f])

    # feasibility: no link oversubscribed
    for link in links:
        load = sum(rates[f] for f in flows if link in f.route)
        assert load <= link.bandwidth * (1 + 1e-9)

    # max-min property: every flow has a bottleneck link that is
    # saturated and on which it has the maximal rate
    for f in flows:
        has_bottleneck = False
        for link in f.route:
            users = [g for g in flows if link in g.route]
            load = sum(rates[g] for g in users)
            saturated = load >= link.bandwidth * (1 - 1e-9)
            is_max = rates[f] >= max(rates[g] for g in users) - 1e-9
            if saturated and is_max:
                has_bottleneck = True
                break
        assert has_bottleneck, f"flow {f} has no bottleneck"


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 20), st.floats(1.0, 1e9))
def test_equal_share_on_single_link(n_flows, bandwidth):
    link = _mklink(0, bandwidth)
    flows = [_mkflow([link]) for _ in range(n_flows)]
    rates = maxmin_rates(flows)
    for f in flows:
        assert abs(rates[f] - bandwidth / n_flows) <= bandwidth * 1e-9


def test_empty_route_gets_infinite_rate():
    f = _mkflow([])
    assert maxmin_rates([f])[f] == float("inf")


def test_textbook_example():
    """Classic 3-flow example: f1 on l1, f2 on l1+l2, f3 on l2.

    l1 cap 10, l2 cap 20 → f1=f2=5 (l1 bottleneck), f3 = 15.
    """
    l1 = _mklink(1, 10.0)
    l2 = _mklink(2, 20.0)
    f1, f2, f3 = _mkflow([l1]), _mkflow([l1, l2]), _mkflow([l2])
    rates = maxmin_rates([f1, f2, f3])
    assert rates[f1] == 5.0
    assert rates[f2] == 5.0
    assert rates[f3] == 15.0
