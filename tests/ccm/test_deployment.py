"""Full deployment pipeline: component servers + engine over GIOP."""

import pytest

from repro.ccm import (
    AssemblyDescriptor,
    ComponentServer,
    Container,
    DeploymentEngine,
    SoftwarePackage,
)
from repro.ccm.idl import COMPONENTS_IDL
from repro.corba import NamingContext, NamingService, Orb, OMNIORB4, compile_idl
from repro.corba.idl.compiler import compile_idl as _compile
from repro.corba.idl.types import UserExceptionBase

from tests.ccm.conftest import app_idl

WORKER_PKG = SoftwarePackage.parse("""
<softpkg name="worker" version="1.0">
  <implementation id="DCE:worker-1"><component>App::Worker</component>
  </implementation>
</softpkg>""")

DRIVER_PKG = SoftwarePackage.parse("""
<softpkg name="driver" version="1.0">
  <implementation id="DCE:driver-1"><component>App::Driver</component>
  </implementation>
</softpkg>""")

MONITOR_PKG = SoftwarePackage.parse("""
<softpkg name="monitor" version="1.0">
  <implementation id="DCE:monitor-1"><component>App::Monitor</component>
  </implementation>
</softpkg>""")

PACKAGES = {"worker": WORKER_PKG, "driver": DRIVER_PKG,
            "monitor": MONITOR_PKG}

ASSEMBLY = AssemblyDescriptor.parse("""
<componentassembly id="demo">
  <componentfiles>
    <componentfile id="w" softpkg="worker"/>
    <componentfile id="d" softpkg="driver"/>
    <componentfile id="m" softpkg="monitor"/>
  </componentfiles>
  <instance id="worker0" componentfile="w" destination="node0"/>
  <instance id="driver0" componentfile="d" destination="node1"/>
  <instance id="monitor0" componentfile="m" destination="node1"/>
  <connection>
    <uses instance="driver0" port="backend"/>
    <provides instance="worker0" port="service"/>
  </connection>
  <connectevent>
    <emitter instance="worker0" port="finished"/>
    <consumer instance="driver0" port="finished"/>
  </connectevent>
  <property instance="worker0" name="gain" type="double" value="2.0"/>
  <property instance="driver0" name="iterations" type="long" value="5"/>
</componentassembly>""")


def _register_all(proc, servers):
    """Each node registers its component server from its own threads."""
    for s in servers:
        reg = s.container.process.spawn(lambda p, s=s: s.register(),
                                        name="register")
        proc.join(reg)


def _grid(rt, hosts=("a0", "a1")):
    containers = []
    for i, host in enumerate(hosts):
        proc = rt.create_process(host, f"node{i}")
        containers.append(Container(proc, app_idl()))
    ns = NamingService(containers[0].orb)
    servers = [ComponentServer(c, NamingContext(c.orb, ns.url))
               for c in containers]
    deployer_proc = rt.create_process(hosts[-1], "deployer")
    d_orb = Orb(deployer_proc, OMNIORB4, app_idl())
    d_orb.idl.merge(_compile(COMPONENTS_IDL))
    engine = DeploymentEngine(d_orb, NamingContext(d_orb, ns.url), PACKAGES)
    return containers, servers, deployer_proc, engine


def test_deploy_wires_and_activates(runtime):
    containers, servers, deployer, engine = _grid(runtime)
    out = {}

    def main(proc):
        _register_all(proc, servers)
        app = engine.deploy(ASSEMBLY)
        out["placement"] = dict(app.placement)
        # the driver was configured and connected by the engine; its
        # code must run on its own node
        driver_inst = next(iter(containers[1]._instances.values()))
        runner = containers[1].process.spawn(
            lambda p: driver_inst.executor.run(), name="runner")
        out["run"] = proc.join(runner)
        worker_inst = next(iter(containers[0]._instances.values()))
        out["gain"] = worker_inst.executor.gain
        out["activated"] = worker_inst.executor.activated
        # event wiring worker -> driver: emit from the worker's node
        emitter = containers[0].process.spawn(
            lambda p: worker_inst.executor.announce(3), name="emitter")
        proc.join(emitter)
        proc.sleep(0.001)
        out["events"] = list(driver_inst.executor.received)
        app.teardown()
        out["empty"] = not containers[0]._instances

    deployer.spawn(main)
    runtime.run()
    assert out["placement"] == {"worker0": "node0", "driver0": "node1",
                                "monitor0": "node1"}
    assert out["run"] == 2.0 * (0 + 1 + 2 + 3 + 4)
    assert out["gain"] == 2.0
    assert out["activated"] is True
    assert out["events"] == [(3, "worker")]
    assert out["empty"]


def test_deploy_with_placement_override(runtime):
    containers, servers, deployer, engine = _grid(runtime)
    out = {}

    def main(proc):
        _register_all(proc, servers)
        app = engine.deploy(ASSEMBLY, placement={"monitor0": "node0"})
        out["placement"] = app.placement["monitor0"]
        app.teardown()

    deployer.spawn(main)
    runtime.run()
    assert out["placement"] == "node0"


def test_deploy_unknown_destination_fails(runtime):
    containers, servers, deployer, engine = _grid(runtime)
    from repro.ccm import DescriptorError
    out = {}

    asm = AssemblyDescriptor.parse("""
    <componentassembly id="x">
      <componentfiles><componentfile id="w" softpkg="worker"/></componentfiles>
      <instance id="w0" componentfile="w"/>
    </componentassembly>""")

    def main(proc):
        _register_all(proc, servers)
        with pytest.raises(DescriptorError):
            engine.deploy(asm)  # no destination anywhere
        out["ok"] = True

    deployer.spawn(main)
    runtime.run()
    assert out["ok"]


def test_deploy_unknown_implementation_fails_remotely(runtime):
    containers, servers, deployer, engine = _grid(runtime)
    out = {}

    asm = AssemblyDescriptor.parse("""
    <componentassembly id="x">
      <componentfiles><componentfile id="g" softpkg="ghostpkg"/></componentfiles>
      <instance id="g0" componentfile="g" destination="node0"/>
    </componentassembly>""")

    ghost_pkg = SoftwarePackage.parse("""
    <softpkg name="ghostpkg" version="1.0">
      <implementation id="DCE:ghost"><component>App::Worker</component>
      </implementation>
    </softpkg>""")
    engine.packages["ghostpkg"] = ghost_pkg

    def main(proc):
        _register_all(proc, servers)
        with pytest.raises(UserExceptionBase) as ei:
            engine.deploy(asm)
        out["why"] = ei.value.why

    deployer.spawn(main)
    runtime.run()
    assert "no implementation" in out["why"]


def test_component_server_lists_homes(runtime):
    containers, servers, deployer, engine = _grid(runtime)
    out = {}

    def main(proc):
        _register_all(proc, servers)
        engine.deploy(ASSEMBLY)
        cs = engine._component_server("node0")
        out["homes"] = cs.installed_homes()

    deployer.spawn(main)
    runtime.run()
    assert out["homes"] == ["App_Worker-DCE_worker-1"]


def test_install_home_idempotent(runtime):
    """Deploying two instances of one type reuses the installed home."""
    containers, servers, deployer, engine = _grid(runtime)
    asm = AssemblyDescriptor.parse("""
    <componentassembly id="two">
      <componentfiles><componentfile id="w" softpkg="worker"/></componentfiles>
      <instance id="w0" componentfile="w" destination="node0"/>
      <instance id="w1" componentfile="w" destination="node0"/>
    </componentassembly>""")
    out = {}

    def main(proc):
        _register_all(proc, servers)
        app = engine.deploy(asm)
        out["n_homes"] = len(containers[0].homes)
        out["n_instances"] = len(containers[0]._instances)

    deployer.spawn(main)
    runtime.run()
    assert out["n_homes"] == 1
    assert out["n_instances"] == 2
