"""Shared CCM fixtures: a demo application with two component types."""

import pytest

from repro.ccm import ComponentImpl, ImplementationRepository
from repro.corba import compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

APP_IDL = """
module App {
    interface Compute {
        double work(in double x);
        sequence<double> transform(in sequence<double> data);
    };
    eventtype Done { long steps; string origin; };

    component Worker {
        provides Compute service;
        emits Done finished;
        attribute double gain;
    };
    home WorkerHome manages Worker {};

    component Driver {
        uses Compute backend;
        consumes Done finished;
        attribute long iterations;
    };
    home DriverHome manages Driver {};

    component Monitor {
        consumes Done finished;
    };
    home MonitorHome manages Monitor {};
};
"""


class WorkerImpl(ComponentImpl):
    gain = 1.0

    def __init__(self):
        self.activated = False
        self.removed = False

    def ccm_activate(self):
        self.activated = True

    def ccm_remove(self):
        self.removed = True

    def work(self, x):
        return x * self.gain

    def transform(self, data):
        import numpy as np
        return np.asarray(data) * self.gain

    def announce(self, steps):
        done = self.context._instance.container.idl.type("App::Done")
        self.context.push_event("finished", done.make(
            steps=steps, origin="worker"))


class DriverImpl(ComponentImpl):
    iterations = 1

    def __init__(self):
        self.received = []

    def push_finished(self, event):
        self.received.append((event.steps, event.origin))

    def run(self):
        backend = self.context.get_connection("backend")
        return sum(backend.work(float(i))
                   for i in range(self.iterations))


class MonitorImpl(ComponentImpl):
    def __init__(self):
        self.received = []

    def push_finished(self, event):
        self.received.append(event.steps)


@pytest.fixture(autouse=True)
def impl_repository():
    ImplementationRepository.clear()
    ImplementationRepository.register("DCE:worker-1", "App::Worker",
                                      WorkerImpl)
    ImplementationRepository.register("DCE:driver-1", "App::Driver",
                                      DriverImpl)
    ImplementationRepository.register("DCE:monitor-1", "App::Monitor",
                                      MonitorImpl)
    yield ImplementationRepository
    ImplementationRepository.clear()


@pytest.fixture()
def runtime():
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


def app_idl():
    return compile_idl(APP_IDL)
