"""Deployment descriptor parsing and validation."""

import pytest

from repro.ccm import (
    AssemblyDescriptor,
    DescriptorError,
    SoftwarePackage,
)

PKG = """
<softpkg name="chemistry" version="1.2">
  <implementation id="DCE:chem-1">
    <component>App::Chemistry</component>
    <os name="Linux"/>
    <processor name="i686"/>
  </implementation>
  <implementation id="DCE:chem-2">
    <component>App::ChemistryMT</component>
  </implementation>
</softpkg>
"""

ASM = """
<componentassembly id="coupling">
  <componentfiles>
    <componentfile id="chem" softpkg="chemistry"/>
    <componentfile id="trans" softpkg="transport"/>
  </componentfiles>
  <instance id="chem0" componentfile="chem" destination="nodeA"/>
  <instance id="trans0" componentfile="trans">
    <constraint label="company-x"/>
  </instance>
  <connection>
    <uses instance="trans0" port="density"/>
    <provides instance="chem0" port="densities"/>
  </connection>
  <connectevent>
    <emitter instance="chem0" port="stepdone"/>
    <consumer instance="trans0" port="tick"/>
  </connectevent>
  <property instance="chem0" name="tolerance" type="double" value="0.01"/>
  <property instance="chem0" name="label" value="prod"/>
  <property instance="trans0" name="steps" type="long" value="12"/>
  <property instance="trans0" name="verbose" type="boolean" value="true"/>
</componentassembly>
"""


def test_parse_software_package():
    pkg = SoftwarePackage.parse(PKG)
    assert pkg.name == "chemistry"
    assert pkg.version == "1.2"
    impl = pkg.implementation_for("App::Chemistry")
    assert impl.impl_id == "DCE:chem-1"
    assert impl.os == "Linux"
    assert impl.processor == "i686"
    with pytest.raises(DescriptorError):
        pkg.implementation_for("App::Nothing")


def test_package_requires_implementation():
    with pytest.raises(DescriptorError):
        SoftwarePackage.parse('<softpkg name="x"></softpkg>')
    with pytest.raises(DescriptorError):
        SoftwarePackage.parse(
            '<softpkg name="x"><implementation id="a"/></softpkg>')


def test_parse_assembly():
    asm = AssemblyDescriptor.parse(ASM)
    assert asm.id == "coupling"
    assert asm.componentfiles == {"chem": "chemistry", "trans": "transport"}
    chem0 = asm.instance("chem0")
    assert chem0.destination == "nodeA"
    trans0 = asm.instance("trans0")
    assert trans0.destination is None
    assert trans0.constraints == ("company-x",)
    kinds = [c.kind for c in asm.connections]
    assert kinds == ["interface", "event"]
    iface = asm.connections[0]
    assert (iface.user_instance, iface.user_port) == ("trans0", "density")
    assert (iface.provider_instance, iface.provider_port) == \
        ("chem0", "densities")
    props = {(i, n): v for i, n, v in asm.properties}
    assert props[("chem0", "tolerance")] == 0.01
    assert props[("chem0", "label")] == "prod"
    assert props[("trans0", "steps")] == 12
    assert props[("trans0", "verbose")] is True


@pytest.mark.parametrize("bad,msg", [
    ("<wrongroot/>", "expected"),
    ("<componentassembly/>", "missing attribute"),
    ("""<componentassembly id="a">
        <instance id="i" componentfile="ghost"/>
        </componentassembly>""", "unknown componentfile"),
    ("""<componentassembly id="a">
        <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
        <instance id="i" componentfile="c"/>
        <instance id="i" componentfile="c"/>
        </componentassembly>""", "duplicate instance"),
    ("""<componentassembly id="a">
        <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
        <instance id="i" componentfile="c"/>
        <connection>
          <uses instance="ghost" port="p"/>
          <provides instance="i" port="q"/>
        </connection>
        </componentassembly>""", "unknown instance"),
    ("""<componentassembly id="a">
        <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
        <instance id="i" componentfile="c"/>
        <property instance="ghost" name="x" value="1"/>
        </componentassembly>""", "unknown instance"),
    ("not xml at all <", "malformed"),
])
def test_assembly_validation_errors(bad, msg):
    with pytest.raises(DescriptorError) as ei:
        AssemblyDescriptor.parse(bad)
    assert msg in str(ei.value)


def test_unsupported_property_type():
    with pytest.raises(DescriptorError):
        AssemblyDescriptor.parse("""
        <componentassembly id="a">
          <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
          <instance id="i" componentfile="c"/>
          <property instance="i" name="x" type="matrix" value="1"/>
        </componentassembly>""")
