"""Container, homes, ports, events — the CCM execution model."""

import numpy as np
import pytest

from repro.ccm import CcmError, Container
from repro.corba.idl.types import UserExceptionBase

from tests.ccm.conftest import DriverImpl, WorkerImpl, app_idl


def _container(rt, host="a0", name="node0"):
    return Container(rt.create_process(host, name), app_idl())


def test_home_creates_configured_instance(runtime):
    c = _container(runtime)
    home = c.install_home("App::Worker", WorkerImpl)
    inst = home.create(gain=3.0)
    assert inst.executor.gain == 3.0
    assert inst.cdef.scoped_name == "App::Worker"
    assert set(inst.facet_refs) == {"service"}


def test_home_rejects_unknown_attribute(runtime):
    c = _container(runtime)
    home = c.install_home("App::Worker", WorkerImpl)
    with pytest.raises(CcmError):
        home.create(nope=1)


def test_duplicate_home_name_rejected(runtime):
    c = _container(runtime)
    c.install_home("App::Worker", WorkerImpl, name="h")
    with pytest.raises(CcmError):
        c.install_home("App::Worker", WorkerImpl, name="h")


def test_facet_invocation_remote(runtime):
    c0 = _container(runtime, "a0", "node0")
    c1 = _container(runtime, "a1", "node1")
    inst = c0.install_home("App::Worker", WorkerImpl).create(gain=2.0)
    url = c0.orb.object_to_string(inst.facet_refs["service"])
    out = {}

    def client(proc):
        svc = c1.orb.string_to_object(url)
        out["w"] = svc.work(21.0)
        out["t"] = svc.transform(np.array([1.0, 2.0]))

    c1.process.spawn(client)
    runtime.run()
    assert out["w"] == 42.0
    assert np.allclose(out["t"], [2.0, 4.0])


def test_ccmobject_navigation_and_lifecycle(runtime):
    c0 = _container(runtime, "a0", "node0")
    c1 = _container(runtime, "a1", "node1")
    worker = c0.install_home("App::Worker", WorkerImpl).create()
    url = c0.orb.object_to_string(worker.ccm_ref)
    out = {}

    def client(proc):
        comp = c1.orb.string_to_object(url)
        out["type"] = comp.component_type()
        svc = comp.provide_facet("service")
        out["w"] = svc.work(5.0)
        with pytest.raises(UserExceptionBase):
            comp.provide_facet("nope")
        comp.configure("gain", (c1.orb.idl.component(
            "App::Worker").attributes["gain"].type, 4.0))
        out["w2"] = svc.work(5.0)
        out["attr"] = comp.get_attribute("gain")[1]
        comp.configuration_complete()
        out["activated"] = worker.executor.activated
        comp.remove()
        out["removed"] = worker.executor.removed

    c1.process.spawn(client)
    runtime.run()
    assert out == {"type": "App::Worker", "w": 5.0, "w2": 20.0,
                   "attr": 4.0, "activated": True, "removed": True}


def test_receptacle_connect_invoke_disconnect(runtime):
    c0 = _container(runtime, "a0", "node0")
    c1 = _container(runtime, "a1", "node1")
    worker = c0.install_home("App::Worker", WorkerImpl).create(gain=2.0)
    driver = c1.install_home("App::Driver", DriverImpl).create(iterations=3)
    out = {}

    def main(proc):
        facet = worker.facet_refs["service"]
        # connect through the CCMObject interface, remotely
        comp = c0.orb.string_to_object(
            c1.orb.object_to_string(driver.ccm_ref))
        comp.connect("backend", facet)
        # the executor's code must run on its own node's threads
        runner = c1.process.spawn(
            lambda p: driver.executor.run(), name="runner")
        out["run"] = proc.join(runner)
        comp.disconnect("backend")
        with pytest.raises(CcmError):
            driver.executor.context.get_connection("backend")
        out["done"] = True

    c0.process.spawn(main)
    runtime.run()
    assert out["run"] == 2.0 * (0 + 1 + 2)
    assert out["done"]


def test_connect_validates_port_and_duplicates(runtime):
    c0 = _container(runtime, "a0", "node0")
    worker = c0.install_home("App::Worker", WorkerImpl).create()
    driver = c0.install_home("App::Driver", DriverImpl).create()
    out = {}

    def main(proc):
        facet = worker.facet_refs["service"]
        comp = driver.ccm_ref
        with pytest.raises(UserExceptionBase):
            comp.connect("no_such_port", facet)
        comp.connect("backend", facet)
        with pytest.raises(UserExceptionBase):  # AlreadyConnected
            comp.connect("backend", facet)
        with pytest.raises(UserExceptionBase):  # wrong interface
            comp.connect("backend", worker.ccm_ref)
        with pytest.raises(UserExceptionBase):
            comp.disconnect("no_such_port")
        out["ok"] = True

    c0.process.spawn(main)
    runtime.run()
    assert out["ok"]


def test_event_emit_to_consumer(runtime):
    c0 = _container(runtime, "a0", "node0")
    c1 = _container(runtime, "a1", "node1")
    worker = c0.install_home("App::Worker", WorkerImpl).create()
    driver = c1.install_home("App::Driver", DriverImpl).create()
    out = {}

    def main(proc):
        sink = driver.sink_refs["finished"]
        worker.ccm_ref.subscribe("finished", sink)
        worker.executor.announce(7)
        proc.sleep(0.001)
        out["events"] = list(driver.executor.received)
        # emits ports are single-connection
        with pytest.raises(UserExceptionBase):
            worker.ccm_ref.subscribe("finished", sink)
        worker.ccm_ref.unsubscribe("finished", sink)
        worker.executor.announce(8)  # nobody listening now
        out["events2"] = list(driver.executor.received)

    c0.process.spawn(main)
    runtime.run()
    assert out["events"] == [(7, "worker")]
    assert out["events2"] == [(7, "worker")]


def test_event_struct_crosses_the_wire(runtime):
    """Event payloads travel as CORBA `any` over GIOP, not by reference."""
    c0 = _container(runtime, "a0", "node0")
    c1 = _container(runtime, "a1", "node1")
    worker = c0.install_home("App::Worker", WorkerImpl).create()
    driver = c1.install_home("App::Driver", DriverImpl).create()
    out = {}

    def main(proc):
        worker.ccm_ref.subscribe("finished", driver.sink_refs["finished"])
        t0 = runtime.kernel.now
        worker.executor.announce(1)
        out["elapsed"] = runtime.kernel.now - t0
        out["events"] = list(driver.executor.received)

    c0.process.spawn(main)
    runtime.run()
    assert out["events"] == [(1, "worker")]
    assert out["elapsed"] > 10e-6  # paid a real network round trip


def test_missing_sink_handler_rejected(runtime):
    from repro.ccm import ComponentImpl

    class BadMonitor(ComponentImpl):
        pass  # no push_finished

    c0 = _container(runtime)
    home = c0.install_home("App::Monitor", BadMonitor)
    with pytest.raises(CcmError):
        home.create()


def test_instance_keys_unique_and_removable(runtime):
    c0 = _container(runtime)
    home = c0.install_home("App::Worker", WorkerImpl)
    a = home.create()
    b = home.create()
    assert a.key != b.key
    assert c0.instance(a.key) is a
    a.remove()
    with pytest.raises(CcmError):
        c0.instance(a.key)
    # facet object keys were released too
    from repro.corba import SystemException
    with pytest.raises(SystemException):
        c0.orb.poa.lookup(f"{a.key}.facet.service")
