"""CCM publishes ports: one source, many consumers."""

import pytest

from repro.ccm import ComponentImpl, Container
from repro.corba import compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module Ev {
    eventtype Alarm { long severity; string text; };
    component Sensor {
        publishes Alarm alerts;
    };
    home SensorHome manages Sensor {};
    component Siren {
        consumes Alarm alerts;
    };
    home SirenHome manages Siren {};
};
"""


class SensorImpl(ComponentImpl):
    def trip(self, severity, text):
        alarm = self.context._instance.container.idl.type("Ev::Alarm")
        self.context.push_event("alerts", alarm.make(severity=severity,
                                                     text=text))


class SirenImpl(ComponentImpl):
    def __init__(self):
        self.heard = []

    def push_alerts(self, event):
        self.heard.append((event.severity, event.text))


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 4)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def test_publishes_fans_out_to_all_subscribers(rt):
    c0 = Container(rt.create_process("a0", "n0"), compile_idl(IDL))
    c1 = Container(rt.create_process("a1", "n1"), compile_idl(IDL))
    c2 = Container(rt.create_process("a2", "n2"), compile_idl(IDL))
    sensor = c0.install_home("Ev::Sensor", SensorImpl).create()
    siren1 = c1.install_home("Ev::Siren", SirenImpl).create()
    siren2 = c2.install_home("Ev::Siren", SirenImpl).create()

    def main(proc):
        # publishes ports accept MANY subscribers (unlike emits)
        sensor.ccm_ref.subscribe("alerts", siren1.sink_refs["alerts"])
        sensor.ccm_ref.subscribe("alerts", siren2.sink_refs["alerts"])
        sensor.executor.trip(3, "fire")
        sensor.executor.trip(1, "smoke")
        proc.sleep(0.001)

    c0.process.spawn(main)
    rt.run()
    assert siren1.executor.heard == [(3, "fire"), (1, "smoke")]
    assert siren2.executor.heard == [(3, "fire"), (1, "smoke")]


def test_unsubscribed_publisher_is_silent(rt):
    c0 = Container(rt.create_process("a0", "n0"), compile_idl(IDL))
    sensor = c0.install_home("Ev::Sensor", SensorImpl).create()

    def main(proc):
        sensor.executor.trip(5, "nobody listens")

    c0.process.spawn(main)
    rt.run()  # no error, no delivery


def test_unsubscribe_one_of_many(rt):
    c0 = Container(rt.create_process("a0", "n0"), compile_idl(IDL))
    c1 = Container(rt.create_process("a1", "n1"), compile_idl(IDL))
    sensor = c0.install_home("Ev::Sensor", SensorImpl).create()
    siren1 = c1.install_home("Ev::Siren", SirenImpl).create()
    siren2 = c1.install_home("Ev::Siren", SirenImpl).create()

    def main(proc):
        sensor.ccm_ref.subscribe("alerts", siren1.sink_refs["alerts"])
        sensor.ccm_ref.subscribe("alerts", siren2.sink_refs["alerts"])
        sensor.executor.trip(1, "both")
        proc.sleep(0.001)
        sensor.ccm_ref.unsubscribe("alerts", siren1.sink_refs["alerts"])
        sensor.executor.trip(2, "only two")
        proc.sleep(0.001)

    c0.process.spawn(main)
    rt.run()
    assert siren1.executor.heard == [(1, "both")]
    assert siren2.executor.heard == [(1, "both"), (2, "only two")]
