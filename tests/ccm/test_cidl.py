"""CIDL: the CCM programming-model descriptor (paper §3.2)."""

import pytest

from repro.ccm import (
    CidlError,
    ComponentImpl,
    ImplementationRepository,
    bind_compositions,
    compile_cidl,
)
from repro.corba import compile_idl
from repro.corba.idl import IdlParseError

from tests.ccm.conftest import APP_IDL, WorkerImpl

CIDL = """
composition session WorkerImpl {
    home executor WorkerHomeExec {
        implements App::WorkerHome;
        manages WorkerExec;
    };
};

composition process DriverImpl {
    home executor DriverHomeExec {
        implements App::DriverHome;
        manages DriverExec;
    };
};
"""


def test_compile_cidl_resolves_against_idl():
    idl = compile_idl(APP_IDL)
    comps = compile_cidl(CIDL, idl)
    assert len(comps) == 2
    worker = comps[0]
    assert worker.name == "WorkerImpl"
    assert worker.lifecycle == "session"
    assert worker.home_executor == "WorkerHomeExec"
    assert worker.implements_home == "App::WorkerHome"
    assert worker.manages_executor == "WorkerExec"
    assert worker.component == "App::Worker"  # derived via the home
    assert comps[1].lifecycle == "process"
    assert worker.impl_id == "CIDL:WorkerImpl:WorkerExec"


def test_compile_cidl_unknown_home_rejected():
    idl = compile_idl(APP_IDL)
    with pytest.raises(Exception) as ei:
        compile_cidl(CIDL.replace("App::WorkerHome", "App::GhostHome"),
                     idl)
    assert "GhostHome" in str(ei.value)


@pytest.mark.parametrize("bad,msg", [
    ("", "no composition"),
    ("composition festive X { };", "lifecycle"),
    ("""composition session X {
        home executor H { implements App::WorkerHome; };
       };""", "expected"),
])
def test_compile_cidl_syntax_errors(bad, msg):
    idl = compile_idl(APP_IDL)
    with pytest.raises((CidlError, IdlParseError)) as ei:
        compile_cidl(bad, idl)
    assert msg in str(ei.value)


def test_duplicate_composition_rejected():
    idl = compile_idl(APP_IDL)
    with pytest.raises(CidlError):
        compile_cidl(CIDL.replace("DriverImpl", "WorkerImpl"), idl)


def test_bind_compositions_registers_executors(impl_repository):
    ImplementationRepository.clear()
    idl = compile_idl(APP_IDL)
    comps = compile_cidl(CIDL, idl)

    class DriverExec(ComponentImpl):
        pass

    bound = bind_compositions(comps, {"WorkerExec": WorkerImpl,
                                      "DriverExec": DriverExec})
    assert bound == {"App::Worker": "CIDL:WorkerImpl:WorkerExec",
                     "App::Driver": "CIDL:DriverImpl:DriverExec"}
    component, factory = ImplementationRepository.lookup(
        "CIDL:WorkerImpl:WorkerExec")
    assert component == "App::Worker"
    assert factory is WorkerImpl


def test_bind_compositions_validates_executors():
    ImplementationRepository.clear()
    idl = compile_idl(APP_IDL)
    comps = compile_cidl(CIDL, idl)
    with pytest.raises(CidlError) as ei:
        bind_compositions(comps, {"WorkerExec": WorkerImpl})
    assert "DriverExec" in str(ei.value)

    class NotAnExecutor:
        pass

    with pytest.raises(CidlError):
        bind_compositions(comps[:1], {"WorkerExec": NotAnExecutor})
    ImplementationRepository.clear()


def test_cidl_to_deployment_pipeline(runtime, impl_repository):
    """CIDL-declared implementation drives a real container home."""
    from repro.ccm import Container

    ImplementationRepository.clear()
    idl = compile_idl(APP_IDL)
    comps = compile_cidl(CIDL, idl)
    bound = bind_compositions(comps, {
        "WorkerExec": WorkerImpl,
        "DriverExec": WorkerImpl})  # reuse for simplicity
    container = Container(runtime.create_process("a0", "n0"),
                          compile_idl(APP_IDL))
    _component, factory = ImplementationRepository.lookup(
        bound["App::Worker"])
    inst = container.install_home("App::Worker", factory).create(gain=7.0)
    assert inst.executor.gain == 7.0
    ImplementationRepository.clear()
