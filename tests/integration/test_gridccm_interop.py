"""GridCCM ↔ standard CCM interoperability (paper §4.2.1).

"parallel components are interoperable with standard sequential
components" — here a completely ordinary CCM component connects its
receptacle to a parallel component's proxy and never learns that its
backend is four SPMD processes."""

import numpy as np
import pytest

from repro.ccm import ComponentImpl, Container
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.corba import OMNIORB4, Orb, compile_idl
from repro.deploy import GridSecurityPolicy, secure_process
from repro.net import Topology, build_cluster, build_two_site_grid
from repro.padicotm import PadicoRuntime

IDL = """
module Ix {
    typedef sequence<double> Vector;
    interface Compute {
        double norm2(in Vector values);
    };
    component Solver {
        provides Compute input;
    };
    home SolverHome manages Solver {};
    component Driver {
        uses Compute backend;
    };
    home DriverHome manages Driver {};
};
"""

XML = """
<parallelism component="Ix::Solver">
  <port name="input">
    <operation name="norm2">
      <argument name="values" distribution="block"/>
      <result policy="sum"/>
    </operation>
  </port>
</parallelism>
"""


class SolverImpl(ComponentImpl):
    def __init__(self):
        self.calls = 0

    def norm2(self, values):
        self.calls += 1
        self.mpi.Barrier()
        return float(values @ values)


class DriverImpl(ComponentImpl):
    def run(self, data):
        backend = self.context.get_connection("backend")
        return backend.norm2(data)


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 8)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def test_standard_ccm_receptacle_connects_to_parallel_proxy(rt):
    servers = [rt.create_process(f"a{i}", f"srv{i}") for i in range(4)]
    solver = ParallelComponent.create(rt, "solver", servers, IDL, XML,
                                      SolverImpl, profile=OMNIORB4)
    proxy_url = solver.proxy_url("input")

    # a completely standard CCM container + Driver component elsewhere
    driver_container = Container(rt.create_process("a4", "drv-node"),
                                 compile_idl(IDL))
    driver = driver_container.install_home("Ix::Driver",
                                           DriverImpl).create()
    out = {}
    data = np.arange(100, dtype="f8")

    def main(proc):
        proxy_ref = driver_container.orb.string_to_object(proxy_url)
        # CCM connection machinery validates the interface via _is_a
        driver.ccm_ref.connect("backend", proxy_ref)
        out["norm"] = driver.executor.run(data)

    driver_container.process.spawn(main)
    rt.run()
    assert out["norm"] == pytest.approx(float(data @ data))
    # the call really fanned out to all four nodes
    assert all(e.calls >= 1 for e in solver.executors())


def test_parallel_component_across_wan_with_security(rt):
    """GridCCM + the §6 security policy: a parallel client at site A
    invoking a parallel component at site B encrypts exactly the WAN
    legs of the redistribution."""
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=2)
    rt2 = PadicoRuntime(topo)
    policy = GridSecurityPolicy("wan-only")

    servers = [rt2.create_process(h.name, f"srv{i}")
               for i, h in enumerate(b_hosts)]
    for p in servers:
        secure_process(p, policy)
    solver = ParallelComponent.create(rt2, "solver", servers, IDL, XML,
                                      SolverImpl, profile=OMNIORB4)
    url = solver.proxy_url("input")

    client = rt2.create_process(a_hosts[0].name, "cli")
    secure_process(client, policy)
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()
    orb = Orb(client, OMNIORB4, idl)
    out = {}

    def main(proc):
        pc = ParallelClient.attach(orb, plan, "input", url)
        out["norm"] = pc.norm2(np.ones(1000))
        encrypted = sum(
            conn.endpoint.encrypted_bytes
            for conn in orb._connections.values())
        out["encrypted"] = encrypted

    client.spawn(main)
    rt2.run()
    rt2.shutdown()
    assert out["norm"] == pytest.approx(1000.0)
    assert out["encrypted"] > 8000  # the data legs crossed the WAN ciphered


def test_intra_site_parallel_component_not_encrypted():
    """Same policy, but the whole coupling inside one SAN: zero cipher
    cost — the §6 optimisation applied to GridCCM traffic."""
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)
    policy = GridSecurityPolicy("wan-only")
    servers = [rt.create_process(f"a{i}", f"srv{i}") for i in range(2)]
    for p in servers:
        secure_process(p, policy)
    solver = ParallelComponent.create(rt, "solver", servers, IDL, XML,
                                      SolverImpl, profile=OMNIORB4)
    client = rt.create_process("a2", "cli")
    secure_process(client, policy)
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()
    orb = Orb(client, OMNIORB4, idl)
    out = {}

    def main(proc):
        pc = ParallelClient.attach(orb, plan, "input",
                                   solver.proxy_url("input"))
        out["norm"] = pc.norm2(np.ones(1000))
        out["encrypted"] = sum(conn.endpoint.encrypted_bytes
                               for conn in orb._connections.values())

    client.spawn(main)
    rt.run()
    rt.shutdown()
    assert out["norm"] == pytest.approx(1000.0)
    assert out["encrypted"] == 0
