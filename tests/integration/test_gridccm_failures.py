"""Failure injection against GridCCM parallel components."""

import numpy as np
import pytest

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.corba import OMNIORB4, Orb, SystemException, compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module GF {
    typedef sequence<double> Vector;
    interface Compute { double norm2(in Vector values); };
    component Solver { provides Compute input; };
    home SolverHome manages Solver {};
};
"""

XML = """
<parallelism component="GF::Solver">
  <port name="input">
    <operation name="norm2">
      <argument name="values" distribution="block"/>
      <result policy="sum"/>
    </operation>
  </port>
</parallelism>
"""


class HangingSolver(ComponentImpl):
    """Node 1 wedges forever (a hung SPMD rank)."""

    def norm2(self, values):
        if self.grid_rank == 1:
            self.mpi.proc.suspend()  # never returns
        self.mpi.Barrier()
        return float(values @ values)


class HealthySolver(ComponentImpl):
    def norm2(self, values):
        self.mpi.Barrier()
        return float(values @ values)


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 6)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def _client(rt, url, host, timeout=None):
    cli = rt.create_process(host, "cli")
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()
    orb = Orb(cli, OMNIORB4, idl)
    orb.request_timeout = timeout
    return cli, orb, plan


def test_hung_server_node_surfaces_as_timeout(rt):
    """A wedged SPMD rank must not hang the client forever: with a
    request deadline the invocation fails with TIMEOUT."""
    servers = [rt.create_process(f"a{i}", f"s{i}") for i in range(2)]
    comp = ParallelComponent.create(rt, "solver", servers, IDL, XML,
                                    HangingSolver, profile=OMNIORB4)
    url = comp.proxy_url("input")
    cli, orb, plan = _client(rt, url, "a2", timeout=0.05)
    out = {}

    def main(proc):
        pc = ParallelClient.attach(orb, plan, "input", url)
        try:
            pc.norm2(np.ones(10))
        except SystemException as e:
            out["minor"] = e.minor
            out["when"] = rt.kernel.now

    cli.spawn(main)
    rt.run()
    assert out["minor"] == "TIMEOUT"
    assert out["when"] == pytest.approx(0.05, abs=0.01)


def test_link_failure_between_components(rt):
    """The SAN path to one server node dies mid-transfer; the client
    sees COMM_FAILURE, and after the link heals a retry succeeds."""
    servers = [rt.create_process(f"a{i}", f"s{i}") for i in range(2)]
    comp = ParallelComponent.create(rt, "solver", servers, IDL, XML,
                                    HealthySolver, profile=OMNIORB4)
    url = comp.proxy_url("input")
    cli, orb, plan = _client(rt, url, "a2")
    out = {}

    def main(proc):
        pc = ParallelClient.attach(orb, plan, "input", url)
        out["first"] = pc.norm2(np.ones(100))
        # cut the client's SAN uplink while a big transfer is in flight
        def chaos(p):
            p.sleep(0.001)
            link = rt.topology.fabrics["a-san"].link("a2", "a-san-sw")
            rt.network.fail_link(link)
        rt.kernel.spawn(chaos, daemon=True)
        try:
            pc.norm2(np.ones(4_000_000))  # long enough to be hit
        except SystemException as e:
            out["failure"] = e.minor
        # heal and retry
        rt.topology.set_link_state("a-san", "a2", "a-san-sw", up=True)
        out["retry"] = pc.norm2(np.ones(100))

    cli.spawn(main)
    rt.run()
    assert out["first"] == pytest.approx(100.0)
    assert out["failure"] == "COMM_FAILURE"
    assert out["retry"] == pytest.approx(100.0)


def test_orb_shutdown_fails_inflight_requests(rt):
    """orb.shutdown() aborts waiting invocations with COMM_FAILURE."""
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    idl_src = "interface S { long slow(in double sec); };"
    s_orb = Orb(server, OMNIORB4, compile_idl(idl_src))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(idl_src))

    class S(s_orb.servant_base("S")):
        def slow(self, sec):
            rt.kernel.current.sleep(sec)
            return 1

    url = s_orb.object_to_string(s_orb.poa.activate_object(S()))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        assert stub.slow(0.0) == 1
        try:
            stub.slow(10.0)
        except SystemException as e:
            out["minor"] = e.minor
            out["when"] = rt.kernel.now

    def killer(proc):
        proc.sleep(0.01)
        c_orb.shutdown()

    client.spawn(main)
    client.spawn(killer, daemon=True)
    rt.run()
    assert out["minor"] == "COMM_FAILURE"
    assert out["when"] == pytest.approx(0.01, abs=1e-3)
