"""Full-stack integration: middleware cohabitation on PadicoTM.

The paper's central systems claim (§4.3): CORBA and MPI run in the same
process, share the same Myrinet NIC cooperatively, and each reaches the
performance it would get alone — with fair sharing under concurrency."""

import numpy as np
import pytest

from repro.corba import MICO, OMNIORB4, Orb, compile_idl
from repro.mpi import create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import ArbitrationConflictError, PadicoRuntime
from repro.soap import SoapClient, SoapServer

IDL = """
module Bench {
    typedef sequence<octet> Blob;
    interface Sink { void push(in Blob data); };
};
"""


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 2)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def test_corba_and_mpi_share_myrinet_fairly(rt):
    """§4.4: 'Concurrent benchmarks (CORBA and MPI at the same time)
    show the bandwidth is efficiently shared: each gets 120 MB/s.'

    One process per machine; each process runs both middleware systems;
    both transfer 24 MB at the same instant over the same NIC."""
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")

    # CORBA side
    idl = compile_idl(IDL)
    s_orb = Orb(p1, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(p0, OMNIORB4, idl)

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))

    # MPI side (same two processes!)
    world = create_world(rt, "w", [p0, p1])

    size = 24_000_000
    results = {}
    start_gate = 0.001  # synchronised start

    def corba_main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")  # warm up connection
        proc.sleep(start_gate - rt.kernel.now)
        t0 = rt.kernel.now
        stub.push(bytes(size))
        results["corba"] = size / (rt.kernel.now - t0)

    def mpi_main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            proc.sleep(start_gate - rt.kernel.now)
            t0 = rt.kernel.now
            comm.Send(np.zeros(size, dtype="u1"), dest=1)
            results["mpi"] = size / (rt.kernel.now - t0)
        else:
            buf = np.empty(size, dtype="u1")
            comm.Recv(buf, source=0)

    p0.spawn(corba_main)
    spmd(world, mpi_main)
    rt.run()

    # both loaded in one process, both ~120 MB/s
    assert p0.modules.is_loaded("mpi")
    assert p0.modules.is_loaded("corba/omniORB-4.0.0")
    assert results["mpi"] / 1e6 == pytest.approx(120, rel=0.05)
    assert results["corba"] / 1e6 == pytest.approx(120, rel=0.05)


def test_alone_each_middleware_gets_full_bandwidth(rt):
    """Control for the sharing test: alone, each reaches ~240 MB/s."""
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    world = create_world(rt, "w", [p0, p1])
    size = 24_000_000
    results = {}

    def mpi_main(proc, comm):
        if comm.rank == 0:
            t0 = comm.Wtime()
            comm.Send(np.zeros(size, dtype="u1"), dest=1)
            results["mpi"] = size / (comm.Wtime() - t0)
        else:
            buf = np.empty(size, dtype="u1")
            comm.Recv(buf, source=0)

    spmd(world, mpi_main)
    rt.run()
    assert results["mpi"] / 1e6 == pytest.approx(240, rel=0.02)


def test_three_middleware_systems_one_process(rt):
    """MPI + CORBA + SOAP coexist in one PadicoTM process — 'any
    combination of them may be used at the same time' (§4.3.4)."""
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    world = create_world(rt, "w", [p0, p1])
    s_orb = Orb(p1, MICO, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(p0, MICO, compile_idl(IDL))

    class Sink(s_orb.servant_base("Bench::Sink")):
        received = 0

        def push(self, data):
            Sink.received += len(data)

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    soap_server = SoapServer(p1)
    soap_server.register("ping", lambda: {"pong": True})
    out = {}

    def main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            out["mpi"] = comm.sendrecv("hello", dest=1, source=1)
            c_orb.string_to_object(url).push(b"xyz")
            client = SoapClient(p0, soap_server.url)
            out["soap"] = client.call(proc, "ping")["pong"]
        else:
            comm.sendrecv("world", dest=0, source=0)

    spmd(world, main)
    rt.run()
    assert out["mpi"] == "world"
    assert out["soap"] is True
    assert Sink.received == 3
    assert sorted(n for n in p0.modules.names()) == [
        "corba/Mico-2.3.7", "mpi", "soap/gsoap-2.x"]
    # one coherent thread policy despite three pthread-based middlewares
    assert p0.arbitration.thread_policy == "marcel"


def test_legacy_middleware_conflicts_without_padico(rt):
    """The motivating failure: a legacy MPI grabbing Myrinet through BIP
    directly prevents a second middleware from using the NIC at all."""
    p0 = rt.create_process("a0", "p0")
    p0.arbitration.claim_nic("a-san", "BIP", "legacy-mpich-bip",
                             cooperative=False)
    with pytest.raises(ArbitrationConflictError):
        p0.arbitration.claim_nic("a-san", "GM", "legacy-orb-gm",
                                 cooperative=False)


def test_dynamic_module_reload(rt):
    """Middleware modules load, unload and reload at runtime."""
    from repro.mpi import MpiModule

    p0 = rt.create_process("a0", "p0")
    p0.modules.load(MpiModule())
    assert p0.modules.is_loaded("mpi")
    p0.modules.unload("mpi")
    assert not p0.modules.is_loaded("mpi")
    p0.modules.load(MpiModule())  # reload works
    assert p0.modules.is_loaded("mpi")


def test_ported_middleware_inventory(rt):
    """§4.3.4 name-drops the ports; represent them as modules and check
    they can all be loaded together."""
    from repro.padicotm import PadicoModule

    class Kaffe(PadicoModule):
        name = "jvm/kaffe-1.0"
        thread_policy = "java-threads"

    class Certi(PadicoModule):
        name = "hla/certi-3.0"
        thread_policy = "pthread"

    p0 = rt.create_process("a0", "p0")
    from repro.mpi import MpiModule
    from repro.soap import SoapModule
    for m in (MpiModule(), SoapModule(), Kaffe(), Certi()):
        p0.modules.load(m)
    assert len(p0.modules.names()) == 4
    assert p0.arbitration.thread_policy == "marcel"
