"""Soak test: a busy grid running everything at once, twice, identically.

16 hosts, two 4-node parallel components, a 4-rank parallel client
group coupling them, background MPI traffic and SOAP control calls —
all concurrently.  Checks numerical correctness and that the entire
run is reproducible to the last virtual nanosecond."""

import numpy as np
import pytest

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.corba import MICO, OMNIORB4, Orb, compile_idl
from repro.core.distribution import BlockDistribution
from repro.mpi import SUM, create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime
from repro.soap import SoapClient, SoapServer

IDL = """
module Soak {
    typedef sequence<double> Vector;
    interface Stage {
        Vector transform(in Vector values, in double factor);
    };
    component Pipe { provides Stage input; };
    home PipeHome manages Pipe {};
};
"""

XML = """
<parallelism component="Soak::Pipe">
  <port name="input">
    <operation name="transform">
      <argument name="values" distribution="block"/>
      <result policy="concat"/>
    </operation>
  </port>
</parallelism>
"""


class StageA(ComponentImpl):
    def transform(self, values, factor):
        self.mpi.Barrier()
        return values * factor


class StageB(ComponentImpl):
    def transform(self, values, factor):
        self.mpi.Barrier()
        return values + factor


def _run_soak() -> dict:
    topo = Topology()
    build_cluster(topo, "h", 16)
    rt = PadicoRuntime(topo)

    stage_a = ParallelComponent.create(
        rt, "stageA", [rt.create_process(f"h{i}", f"a{i}")
                       for i in range(4)], IDL, XML, StageA,
        profile=OMNIORB4)
    stage_b = ParallelComponent.create(
        rt, "stageB", [rt.create_process(f"h{4 + i}", f"b{i}")
                       for i in range(4)], IDL, XML, StageB,
        profile=MICO)

    client_procs = [rt.create_process(f"h{8 + i}", f"c{i}")
                    for i in range(4)]
    world = create_world(rt, "clients", client_procs)

    # background MPI chatter on two more hosts
    bg_procs = [rt.create_process(f"h{12 + i}", f"bg{i}")
                for i in range(2)]
    bg_world = create_world(rt, "bg", bg_procs)

    # a SOAP health endpoint on the grid
    soap_host = rt.create_process("h14", "soap")
    soap_server = SoapServer(soap_host)
    hits = []
    soap_server.register("health", lambda: {"ok": True,
                                            "hits": len(hits)})

    N = 4000
    full = np.linspace(-1.0, 1.0, N)
    out: dict = {"sums": []}

    def pipeline_client(proc, comm):
        idl = compile_idl(IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(XML)).compile()
        orb = Orb(client_procs[comm.rank], OMNIORB4, idl)
        pa = ParallelClient.attach(orb, plan, "input",
                                   stage_a.proxy_url("input"), comm=comm,
                                   group_id="to-a")
        pb = ParallelClient.attach(orb, plan, "input",
                                   stage_b.proxy_url("input"), comm=comm,
                                   group_id="to-b")
        dist = BlockDistribution(comm.size, N)
        local = full[dist.start(comm.rank):dist.end(comm.rank)].copy()
        for step in range(3):
            scaled = pa.transform(local, 2.0)       # ×2 on stage A
            shifted = pb.transform(
                scaled[dist.start(comm.rank):dist.end(comm.rank)],
                1.0)                                 # +1 on stage B
            local = shifted[dist.start(comm.rank):dist.end(comm.rank)]
            local = local.copy()
        total = comm.allreduce(float(local.sum()), SUM)
        if comm.rank == 0:
            out["sums"].append(total)
            out["t_pipeline"] = comm.Wtime()

    def background(proc, comm):
        buf = np.zeros(500_000, dtype="u1")
        for _ in range(5):
            if comm.rank == 0:
                comm.Send(buf, dest=1)
                comm.recv(source=1)
            else:
                recv = np.empty_like(buf)
                comm.Recv(recv, source=0)
                comm.send("ack", dest=0)
        if comm.rank == 0:
            out["t_bg"] = comm.Wtime()

    def soap_poller(proc):
        client = SoapClient(rt.create_process("h15", "poller"),
                            soap_server.url)
        for _ in range(10):
            assert client.call(proc, "health")["ok"]
            hits.append(1)
            proc.sleep(0.002)
        out["soap_hits"] = len(hits)

    spmd(world, pipeline_client)
    spmd(bg_world, background)
    soap_host.runtime.kernel.spawn(soap_poller, name="poller")
    rt.run()
    out["t_final"] = rt.kernel.now
    rt.shutdown()
    return out


def test_soak_correct_and_deterministic():
    first = _run_soak()

    # numerics: x -> ((x*2+1)*2+1)*2+1 = 8x + 7
    expected = float(np.sum(np.linspace(-1.0, 1.0, 4000) * 8 + 7))
    assert first["sums"][0] == pytest.approx(expected, rel=1e-12)
    assert first["soap_hits"] == 10
    assert first["t_pipeline"] > 0 and first["t_bg"] > 0

    second = _run_soak()
    assert second == first  # byte-identical replay, timings included
