"""Failure injection across the stack: dead links, dead processes."""

import numpy as np
import pytest

from repro.corba import OMNIORB4, Orb, SystemException, compile_idl
from repro.mpi import create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module F {
    typedef sequence<octet> Blob;
    interface Sink { unsigned long push(in Blob data); };
};
"""


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 4)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def _corba_pair(rt, counter):
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

    class Sink(s_orb.servant_base("F::Sink")):
        def push(self, data):
            counter.append(len(data))
            return len(data)

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    return server, client, c_orb, url


def test_link_failure_mid_invocation_becomes_comm_failure(rt):
    counter = []
    server, client, c_orb, url = _corba_pair(rt, counter)
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        assert stub.push(b"ok") == 2
        try:
            stub.push(bytes(24_000_000))  # ~100 ms on the wire
        except SystemException as e:
            out["minor"] = e.minor
            out["when"] = rt.kernel.now

    def chaos(proc):
        proc.sleep(0.01)
        link = rt.topology.fabrics["a-san"].link("a1", "a-san-sw")
        rt.network.fail_link(link)

    client.spawn(main)
    client.spawn(chaos, daemon=True)
    rt.run()
    assert out["minor"] == "COMM_FAILURE"
    assert out["when"] == pytest.approx(0.01, abs=1e-3)


def test_client_recovers_over_surviving_fabric(rt):
    """After the SAN dies the cached connection is dropped; the next
    invocation reconnects and the selector falls back to the LAN."""
    counter = []
    server, client, c_orb, url = _corba_pair(rt, counter)
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"warm")
        # kill the whole SAN path of the client host
        link = rt.topology.fabrics["a-san"].link("a1", "a-san-sw")
        rt.network.fail_link(link)
        rt.topology.set_link_state("a-san", "a1", "a-san-sw", up=False)
        try:
            stub.push(b"during")
        except SystemException as e:
            out["first"] = e.minor
        # retry: new connection, now via the Ethernet fabric
        out["retry"] = stub.push(b"after failover")
        conn = c_orb._connections[("server", stub.ior.port)]
        out["fabric"] = conn.endpoint.fabric_name

    client.spawn(main)
    rt.run()
    assert out["first"] == "COMM_FAILURE"
    assert out["retry"] == len(b"after failover")
    assert out["fabric"] == "a-lan"


def test_server_process_death_visible_to_client(rt):
    """Interrupting the server's handler threads closes the stream; the
    client observes COMM_FAILURE rather than hanging."""
    counter = []
    server, client, c_orb, url = _corba_pair(rt, counter)
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"ok")
        # simulate a server crash: kill its threads, close listeners
        for thread in server.threads:
            thread.interrupt("crash")
        for (pname, _port), listener in list(
                rt.vlink_listeners.items()):
            if pname == "server":
                listener.close()
        # the established stream's peer is gone: close it server-side
        conn = c_orb._connections[("server", stub.ior.port)]
        conn.endpoint.peer.close()
        try:
            stub.push(b"into the void")
        except SystemException as e:
            out["minor"] = e.minor

    client.spawn(main)
    rt.run()
    assert out["minor"] == "COMM_FAILURE"


def test_mpi_send_over_dead_link_raises(rt):
    procs = [rt.create_process(f"a{i}", f"r{i}") for i in range(2)]
    world = create_world(rt, "w", procs)
    out = {}

    def main(proc, comm):
        if comm.rank == 0:
            link = rt.topology.fabrics["a-san"].link("a0", "a-san-sw")
            rt.network.fail_link(link)
            rt.topology.set_link_state("a-san", "a0", "a-san-sw",
                                       up=False)
            from repro.net import NoRouteError, TransferError
            try:
                comm.Send(np.zeros(10), dest=1)
            except (TransferError, NoRouteError) as e:
                out["err"] = type(e).__name__
                # unblock the receiver so the test terminates cleanly
                rt.topology.set_link_state("a-san", "a0", "a-san-sw",
                                           up=True)
                comm.Send(np.zeros(10), dest=1)
        else:
            buf = np.empty(10)
            comm.Recv(buf, source=0)

    spmd(world, main)
    rt.run()
    assert out["err"] in ("TransferError", "NoRouteError")


def test_interrupted_mpi_rank_does_not_corrupt_others(rt):
    """Kill one rank mid-collective; restart the collective among the
    survivors on a fresh communicator (fault-tolerance drill)."""
    procs = [rt.create_process(f"a{i}", f"r{i}") for i in range(3)]
    world = create_world(rt, "w", procs)
    out = {}

    def main(proc, comm):
        from repro.sim import SimInterrupt

        if comm.rank == 2:
            try:
                proc.suspend()  # "hangs" instead of joining the barrier
            except SimInterrupt:
                return "killed"
        # ranks 0 and 1 communicate among themselves only
        sub = None
        peer = 1 - comm.rank
        got = comm.sendrecv(f"alive-{comm.rank}", dest=peer, source=peer)
        out[comm.rank] = got
        return "ok"

    threads = spmd(world, main)

    def killer(proc):
        proc.sleep(0.01)
        threads[2].interrupt("node died")

    rt.kernel.spawn(killer)
    rt.run()
    assert out == {0: "alive-1", 1: "alive-0"}
    assert threads[2].result == "killed"


def test_deterministic_replay_of_failure_scenario():
    """The same failure scenario replays byte-for-byte identically —
    the property that makes simulated failure injection debuggable."""
    def run_once():
        topo = Topology()
        build_cluster(topo, "a", 2)
        rt = PadicoRuntime(topo)
        counter = []
        server, client, c_orb, url = None, None, None, None
        server = rt.create_process("a0", "server")
        client = rt.create_process("a1", "client")
        s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
        s_orb.start()
        c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

        class Sink(s_orb.servant_base("F::Sink")):
            def push(self, data):
                return len(data)

        url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
        trace = []

        def main(proc):
            stub = c_orb.string_to_object(url)
            for i in range(3):
                try:
                    stub.push(bytes(1000 * (i + 1)))
                    trace.append((i, "ok", rt.kernel.now))
                except SystemException as e:
                    trace.append((i, e.minor, rt.kernel.now))

        def chaos(proc):
            proc.sleep(6e-5)
            link = rt.topology.fabrics["a-san"].link("a1", "a-san-sw")
            rt.network.fail_link(link)
            proc.sleep(1e-4)
            rt.topology.set_link_state("a-san", "a1", "a-san-sw", up=True)

        client.spawn(main)
        client.spawn(chaos, daemon=True)
        rt.run()
        rt.shutdown()
        return trace

    assert run_once() == run_once()
