"""Cross-backend byte-equality gate for the §4.4 CORBA+MPI workload.

The switch backends may only change *how* the kernel transfers control,
never what the simulation does: the flow log (every transfer the
network carried, with start/end times and sizes) and the observability
trace must come out byte-identical whichever backend ran the workload.
This is the PR 3/4 equality-gate idea pointed at the backend seam —
the same discipline that makes `BENCH_padico.json` regenerable bit for
bit.

The workload is the paper's §4.4 cohabitation shape: CORBA and MPI in
the same two PadicoTM processes, transferring over the same Myrinet NIC
at the same instant.
"""

import json

import numpy as np
import pytest

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.mpi import create_world, spmd
from repro.net import Topology, build_cluster
from repro.obs import TraceRecorder
from repro.obs.export import chrome_trace
from repro.padicotm import PadicoRuntime
from repro.sim import SimKernel, available_backends

IDL = """
module Bench {
    typedef sequence<octet> Blob;
    interface Sink { void push(in Blob data); };
};
"""

#: backends able to run the full PadicoTM stack (the trampoline cannot:
#: the sync primitives block from nested call frames by design)
FULL_STACK_BACKENDS = [n for n in available_backends() if n != "trampoline"]


def _run_cohabitation(backend):
    """CORBA push + MPI send sharing one NIC; returns the trace bytes."""
    kernel = SimKernel(backend=backend)
    topo = Topology()
    build_cluster(topo, "a", 2)
    rt = PadicoRuntime(topo, kernel=kernel)
    recorder = rt.observe(TraceRecorder())

    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    idl = compile_idl(IDL)
    s_orb = Orb(p1, OMNIORB4, idl)
    s_orb.start()
    c_orb = Orb(p0, OMNIORB4, compile_idl(IDL))

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    world = create_world(rt, "w", [p0, p1])
    size = 1_000_000
    start_gate = 0.001
    results = {}

    def corba_main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")  # warm up connection
        proc.sleep(start_gate - rt.kernel.now)
        stub.push(bytes(size))
        results["corba_done"] = rt.kernel.now

    def mpi_main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            proc.sleep(start_gate - rt.kernel.now)
            comm.Send(np.zeros(size, dtype="u1"), dest=1)
            results["mpi_done"] = rt.kernel.now
        else:
            buf = np.empty(size, dtype="u1")
            comm.Recv(buf, source=0)

    p0.spawn(corba_main)
    spmd(world, mpi_main)
    rt.run()
    rt.shutdown()

    flow_bytes = repr(rt.network.flow_log).encode()
    obs_bytes = json.dumps(chrome_trace(recorder), sort_keys=True).encode()
    return flow_bytes, obs_bytes, results


def test_flow_log_and_obs_trace_bytes_match_across_backends():
    reference = _run_cohabitation("thread")
    assert reference[2]  # the workload really ran
    for name in FULL_STACK_BACKENDS:
        if name == "thread":
            continue
        assert _run_cohabitation(name) == reference, name
    if FULL_STACK_BACKENDS == ["thread"]:
        pytest.skip("only the thread backend can run the full stack here "
                    "(greenlet not installed); rerun-determinism still "
                    "pinned below")


def test_workload_is_rerun_deterministic_per_backend():
    """Same backend, fresh kernel: the bytes must also be stable run to
    run (the property the cross-backend gate builds on)."""
    for name in FULL_STACK_BACKENDS:
        assert _run_cohabitation(name) == _run_cohabitation(name), name
