"""Shared fixtures for PadicoTM tests."""

import pytest

from repro.net import Topology, build_cluster, build_two_site_grid
from repro.padicotm import PadicoRuntime


@pytest.fixture()
def cluster_runtime():
    """A 4-node dual-CPU Myrinet+Ethernet cluster runtime."""
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


@pytest.fixture()
def grid_runtime():
    """Two 4-node clusters joined by a WAN."""
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=4)
    rt = PadicoRuntime(topo)
    yield rt, a_hosts, b_hosts
    rt.shutdown()
