"""Circuit / VLink abstraction layer and automatic mapping selection."""

import pytest

from repro.net import NoRouteError
from repro.padicotm import Circuit, VLink
from repro.padicotm.abstraction.vlink import ConnectionRefusedError


def test_circuit_on_san_is_straight_mapping(cluster_runtime):
    rt = cluster_runtime
    procs = [rt.create_process(f"a{i}", f"p{i}") for i in range(4)]
    circuit = Circuit.establish(rt, "c0", procs)
    assert circuit.mapping == "straight"
    assert circuit.fabric_name == "a-san"
    assert circuit.size == 4
    assert circuit.rank_of(procs[2]) == 2


def test_circuit_cross_paradigm_over_wan(grid_runtime):
    rt, a_hosts, b_hosts = grid_runtime
    pa = rt.create_process(a_hosts[0], "pa")
    pb = rt.create_process(b_hosts[0], "pb")
    circuit = Circuit.establish(rt, "c0", [pa, pb])
    # no parallel fabric spans both sites: parallel abstraction maps
    # cross-paradigm onto the WAN
    assert circuit.mapping == "cross-paradigm"
    assert circuit.fabric_name == "wan"


def test_circuit_message_roundtrip(cluster_runtime):
    rt = cluster_runtime
    procs = [rt.create_process(f"a{i}", f"p{i}") for i in range(2)]
    circuit = Circuit.establish(rt, "c0", procs)
    got = []

    def rank0(proc):
        circuit.send(proc, 0, 1, {"hello": 1}, 100)
        got.append(circuit.recv(proc, 0))

    def rank1(proc):
        src, payload, n = circuit.recv(proc, 1)
        circuit.send(proc, 1, 0, payload, n)

    procs[0].spawn(rank0)
    procs[1].spawn(rank1)
    rt.run()
    assert got == [(1, {"hello": 1}, 100)]


def test_circuit_forced_fabric_ablation(cluster_runtime):
    """Forcing the LAN under a Circuit (ablation A3) must still work —
    just slower and tagged cross-paradigm."""
    rt = cluster_runtime
    procs = [rt.create_process(f"a{i}", f"p{i}") for i in range(2)]
    circuit = Circuit.establish(rt, "c0", procs, fabric="a-lan")
    assert circuit.mapping == "cross-paradigm"
    result = {}

    def rank0(proc):
        t0 = rt.kernel.now
        circuit.send(proc, 0, 1, b"x", 1_120_000)
        result["elapsed"] = rt.kernel.now - t0

    def rank1(proc):
        circuit.recv(proc, 1)

    procs[0].spawn(rank0)
    procs[1].spawn(rank1)
    rt.run()
    bw = 1_120_000 / result["elapsed"]
    assert bw == pytest.approx(11.2e6, rel=0.01)


def test_circuit_no_common_fabric_raises():
    from repro.net import Topology, build_cluster
    from repro.padicotm import PadicoRuntime

    topo = Topology()
    build_cluster(topo, "a", 2)
    build_cluster(topo, "b", 2)  # disconnected clusters, no WAN
    with PadicoRuntime(topo) as rt:
        pa = rt.create_process("a0", "pa")
        pb = rt.create_process("b0", "pb")
        with pytest.raises(NoRouteError):
            Circuit.establish(rt, "c0", [pa, pb])


def test_vlink_cross_paradigm_on_myrinet(cluster_runtime):
    """The Figure-7 mechanism: a distributed-oriented stream between two
    SAN hosts rides Madeleine and reaches Myrinet bandwidth."""
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    listener = VLink.listen(server, "giop")
    result = {}

    def srv(proc):
        ep = listener.accept(proc)
        ep.recv(proc)

    def cli(proc):
        ep = VLink.connect(proc, client, "server", "giop")
        result["mapping"] = ep.mapping
        result["fabric"] = ep.fabric_name
        t0 = rt.kernel.now
        ep.send(proc, b"payload", 24_000_000)
        result["elapsed"] = rt.kernel.now - t0

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert result["mapping"] == "cross-paradigm"
    assert result["fabric"] == "a-san"
    assert 24_000_000 / result["elapsed"] == pytest.approx(240e6, rel=0.01)


def test_vlink_straight_on_lan(grid_runtime):
    rt, a_hosts, b_hosts = grid_runtime
    server = rt.create_process(b_hosts[0], "server")
    client = rt.create_process(a_hosts[0], "client")
    listener = VLink.listen(server, "giop")
    result = {}

    def srv(proc):
        ep = listener.accept(proc)
        ep.recv(proc)

    def cli(proc):
        ep = VLink.connect(proc, client, "server", "giop")
        result["mapping"] = ep.mapping
        result["fabric"] = ep.fabric_name

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert result["mapping"] == "straight"
    assert result["fabric"] == "wan"


def test_vlink_connect_refused(cluster_runtime):
    rt = cluster_runtime
    rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    errors = []

    def cli(proc):
        try:
            VLink.connect(proc, client, "server", "nope")
        except ConnectionRefusedError:
            errors.append(True)

    client.spawn(cli)
    rt.run()
    assert errors == [True]


def test_vlink_eof_semantics(cluster_runtime):
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    listener = VLink.listen(server, "x")
    log = []

    def srv(proc):
        ep = listener.accept(proc)
        while (item := ep.recv(proc)) is not None:
            log.append(item[0])
        log.append("eof")

    def cli(proc):
        ep = VLink.connect(proc, client, "server", "x")
        ep.send(proc, "a", 1)
        ep.send(proc, "b", 1)
        ep.close()
        with pytest.raises(BrokenPipeError):
            ep.send(proc, "c", 1)

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert log == ["a", "b", "eof"]


def test_vlink_port_collision(cluster_runtime):
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    VLink.listen(server, "p")
    with pytest.raises(OSError):
        VLink.listen(server, "p")


def test_vlink_security_policy_hook(cluster_runtime):
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    listener = VLink.listen(server, "sec")

    class AlwaysEncrypt:
        def transform_cost(self, nbytes, fabric_name, secure_wire):
            return nbytes * 1e-8  # 100 MB/s cipher

        def should_encrypt(self, fabric_name, secure_wire):
            return True

    result = {}

    def srv(proc):
        ep = listener.accept(proc)
        ep.recv(proc)

    def cli(proc):
        ep = VLink.connect(proc, client, "server", "sec")
        ep.security_policy = AlwaysEncrypt()
        t0 = rt.kernel.now
        ep.send(proc, b"x", 1_000_000)
        result["elapsed"] = rt.kernel.now - t0
        result["encrypted"] = ep.encrypted_bytes

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert result["encrypted"] == 1_000_000
    # cipher adds 10 ms on top of ~4.2 ms wire time
    assert result["elapsed"] > 0.014


def test_selector_prefers_san_over_lan(cluster_runtime):
    from repro.padicotm.abstraction.selector import select_pair_fabric

    rt = cluster_runtime
    choice = select_pair_fabric(rt.topology, "a0", "a1", "distributed")
    assert choice.fabric_name == "a-san"
    assert choice.mapping == "cross-paradigm"
    choice = select_pair_fabric(rt.topology, "a0", "a1", "parallel")
    assert choice.mapping == "straight"


def test_selector_loopback_same_host(cluster_runtime):
    from repro.padicotm.abstraction.selector import select_pair_fabric

    rt = cluster_runtime
    choice = select_pair_fabric(rt.topology, "a0", "a0", "distributed")
    assert choice.fabric is None
    assert choice.mapping == "loopback"
