"""Personality layer: Madeleine, FastMessages, BSD sockets, POSIX AIO."""

import pytest

from repro.padicotm import Circuit
from repro.padicotm.personality import (
    AioPersonality,
    BsdSocketPersonality,
    FMPersonality,
    MadPersonality,
)
from repro.padicotm.abstraction.vlink import VLink


def _two_procs(rt):
    return [rt.create_process(f"a{i}", f"p{i}") for i in range(2)]


def test_madeleine_personality_pack_unpack(cluster_runtime):
    rt = cluster_runtime
    procs = _two_procs(rt)
    circuit = Circuit.establish(rt, "c", procs)
    mads = [MadPersonality(circuit, i) for i in range(2)]
    got = []

    def sender(proc):
        conn = mads[0].begin_packing(1)
        mads[0].pack(conn, "header", 16)
        mads[0].pack(conn, [1, 2, 3], 24)
        mads[0].end_packing(proc, conn)

    def receiver(proc):
        conn = mads[1].begin_unpacking(proc)
        got.append(mads[1].unpack(conn))
        got.append(mads[1].unpack(conn))
        mads[1].end_unpacking(conn)

    procs[0].spawn(sender)
    procs[1].spawn(receiver)
    rt.run()
    assert got == ["header", [1, 2, 3]]


def test_madeleine_personality_incomplete_unpack_detected(cluster_runtime):
    rt = cluster_runtime
    procs = _two_procs(rt)
    circuit = Circuit.establish(rt, "c", procs)
    mads = [MadPersonality(circuit, i) for i in range(2)]

    def sender(proc):
        conn = mads[0].begin_packing(1)
        mads[0].pack(conn, "a", 1)
        mads[0].pack(conn, "b", 1)
        mads[0].end_packing(proc, conn)

    def receiver(proc):
        conn = mads[1].begin_unpacking(proc)
        mads[1].unpack(conn)
        with pytest.raises(RuntimeError):
            mads[1].end_unpacking(conn)

    procs[0].spawn(sender)
    procs[1].spawn(receiver)
    rt.run()


def test_fastmessages_handler_dispatch(cluster_runtime):
    rt = cluster_runtime
    procs = _two_procs(rt)
    circuit = Circuit.establish(rt, "c", procs)
    fms = [FMPersonality(circuit, i) for i in range(2)]
    handled = []
    fms[1].register_handler(7, lambda src, data: handled.append((src, data)))

    def sender(proc):
        fms[0].fm_send(proc, 1, 7, "payload", 64)

    def receiver(proc):
        assert fms[1].fm_extract(proc) == 1

    procs[0].spawn(sender)
    procs[1].spawn(receiver)
    rt.run()
    assert handled == [(0, "payload")]


def test_fastmessages_unregistered_handler_raises(cluster_runtime):
    rt = cluster_runtime
    procs = _two_procs(rt)
    circuit = Circuit.establish(rt, "c", procs)
    fms = [FMPersonality(circuit, i) for i in range(2)]
    failures = []

    def sender(proc):
        fms[0].fm_send(proc, 1, 99, "x", 1)

    def receiver(proc):
        try:
            fms[1].fm_extract(proc)
        except LookupError:
            failures.append(True)

    procs[0].spawn(sender)
    procs[1].spawn(receiver)
    rt.run()
    assert failures == [True]


def test_bsd_socket_roundtrip(cluster_runtime):
    rt = cluster_runtime
    procs = _two_procs(rt)
    bsd = [BsdSocketPersonality(p) for p in procs]
    got = []

    def srv(proc):
        s = bsd[0].socket()
        s.bind("http")
        s.listen()
        conn = s.accept(proc)
        got.append(conn.recv(proc))
        conn.send(proc, b"response")
        assert conn.recv(proc) == b""  # EOF
        conn.close()

    def cli(proc):
        s = bsd[1].socket()
        s.connect(proc, ("p0", "http"))
        s.send(proc, b"request")
        got.append(s.recv(proc))
        s.close()

    procs[0].spawn(srv)
    procs[1].spawn(cli)
    rt.run()
    assert got == [b"request", b"response"]


def test_bsd_socket_usage_errors(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    bsd = BsdSocketPersonality(p)
    s = bsd.socket()
    with pytest.raises(OSError):
        s.listen()  # not bound
    s.bind("x")
    with pytest.raises(OSError):
        s.bind("y")  # double bind
    with pytest.raises(OSError):
        bsd.socket().send(None, b"")  # not connected


def test_aio_overlaps_communication_with_compute(cluster_runtime):
    """The point of Aio: the writer computes while the write proceeds."""
    rt = cluster_runtime
    procs = _two_procs(rt)
    server, client = procs
    listener = VLink.listen(server, "aio")
    aio = AioPersonality(client)
    result = {}

    def srv(proc):
        ep = listener.accept(proc)
        ep.recv(proc)

    def cli(proc):
        ep = VLink.connect(proc, client, "p0", "aio")
        t0 = rt.kernel.now
        cb = aio.aio_write(ep, b"bulk", 2_400_000)  # 10 ms on the wire
        assert AioPersonality.aio_error(cb) == "EINPROGRESS"
        proc.sleep(0.010)  # overlapped "computation"
        AioPersonality.aio_suspend(proc, [cb])
        assert AioPersonality.aio_return(cb) == 2_400_000
        result["elapsed"] = rt.kernel.now - t0

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    # overlap: total ≈ max(compute, transfer), not their sum
    assert result["elapsed"] < 0.012


def test_aio_read_and_error_paths(cluster_runtime):
    rt = cluster_runtime
    procs = _two_procs(rt)
    server, client = procs
    listener = VLink.listen(server, "aio")
    aio = AioPersonality(server)
    got = []

    def srv(proc):
        ep = listener.accept(proc)
        cb = aio.aio_read(ep)
        with pytest.raises(RuntimeError):
            AioPersonality.aio_return(cb)  # still in progress
        AioPersonality.aio_suspend(proc, [cb])
        got.append(AioPersonality.aio_return(cb))

    def cli(proc):
        ep = VLink.connect(proc, client, "p0", "aio")
        ep.send(proc, b"data", 4)

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert got == [(b"data", 4)]
