"""Madeleine channels and the socket subsystem."""

import pytest

from repro.padicotm.arbitration.madeleine import open_channel
from repro.padicotm.arbitration.sockets import ConnectionRefusedError


def test_madeleine_pingpong_latency_is_11us(cluster_runtime):
    """Calibration check: 1 µs send + 9 µs wire + 1 µs recv = 11 µs
    one-way, the paper's MPI latency over PadicoTM/Myrinet."""
    rt = cluster_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    ch = open_channel(rt, "ch", [p0, p1], "a-san")
    result = {}

    def client(proc):
        t0 = rt.kernel.now
        ch.send(proc, 0, 1, b"x", 0)
        ch.recv(proc, 0)
        result["rtt"] = rt.kernel.now - t0

    def server(proc):
        ch.recv(proc, 1)
        ch.send(proc, 1, 0, b"x", 0)

    p0.spawn(client)
    p1.spawn(server)
    rt.run()
    assert result["rtt"] / 2 == pytest.approx(11e-6, rel=1e-6)


def test_madeleine_bandwidth_reaches_240(cluster_runtime):
    rt = cluster_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    ch = open_channel(rt, "ch", [p0, p1], "a-san")
    size = 8_000_000
    result = {}

    def sender(proc):
        t0 = rt.kernel.now
        ch.send(proc, 0, 1, b"big", size)
        result["elapsed"] = rt.kernel.now - t0

    def receiver(proc):
        ch.recv(proc, 1)

    p0.spawn(sender)
    p1.spawn(receiver)
    rt.run()
    bw = size / result["elapsed"]
    assert bw == pytest.approx(240e6, rel=0.01)


def test_madeleine_channel_requires_parallel_fabric(cluster_runtime):
    rt = cluster_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    with pytest.raises(ValueError):
        open_channel(rt, "bad", [p0, p1], "a-lan")


def test_madeleine_channel_claims_bip_cooperatively(cluster_runtime):
    rt = cluster_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    open_channel(rt, "ch", [p0, p1], "a-san")
    claims = p0.arbitration.claims
    assert len(claims) == 1
    assert claims[0].driver == "BIP"
    assert claims[0].cooperative


def test_madeleine_selective_receive(cluster_runtime):
    rt = cluster_runtime
    procs = [rt.create_process(f"a{i}", f"p{i}") for i in range(3)]
    ch = open_channel(rt, "ch", procs, "a-san")
    got = []

    def sender(proc, rank, delay):
        proc.sleep(delay)
        ch.send(proc, rank, 0, f"from{rank}", 10)

    def receiver(proc):
        # deliberately receive rank 2 first even though rank 1 arrives first
        got.append(ch.recv(proc, 0, source=2)[1])
        got.append(ch.recv(proc, 0, source=1)[1])

    procs[1].spawn(sender, 1, 0.0)
    procs[2].spawn(sender, 2, 0.001)
    procs[0].spawn(receiver)
    rt.run()
    assert got == ["from2", "from1"]


def test_madeleine_same_channel_id_returns_same_channel(cluster_runtime):
    rt = cluster_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    c1 = open_channel(rt, "ch", [p0, p1], "a-san")
    c2 = open_channel(rt, "ch", [p0, p1], "a-san")
    assert c1 is c2
    with pytest.raises(ValueError):
        open_channel(rt, "ch", [p1, p0], "a-san")  # different member order


def test_socket_connect_accept_send_recv(cluster_runtime):
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    listener = server.arbitration.sockets().listen("5000")
    got = []

    def srv(proc):
        conn = listener.accept(proc)
        item = conn.recv(proc)
        got.append(item)
        conn.send(proc, b"pong", 4)
        assert conn.recv(proc) is None  # client closed

    def cli(proc):
        conn = client.arbitration.sockets().connect(proc, "server", "5000")
        conn.send(proc, b"ping", 4)
        got.append(conn.recv(proc))
        conn.close()

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    assert got == [(b"ping", 4), (b"pong", 4)]


def test_socket_connect_refused(cluster_runtime):
    rt = cluster_runtime
    rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    errors = []

    def cli(proc):
        try:
            client.arbitration.sockets().connect(proc, "server", "9999")
        except ConnectionRefusedError:
            errors.append("refused")

    client.spawn(cli)
    rt.run()
    assert errors == ["refused"]


def test_socket_picks_distributed_fabric(cluster_runtime):
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    server.arbitration.sockets().listen("80")
    conns = []

    def cli(proc):
        conn = client.arbitration.sockets().connect(proc, "server", "80")
        conns.append(conn)

    client.spawn(cli)
    rt.run()
    # sockets never drive the SAN: the LAN fabric must be chosen
    assert conns[-1].fabric == "a-lan"


def test_socket_port_collision(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    p.arbitration.sockets().listen("80")
    with pytest.raises(OSError):
        p.arbitration.sockets().listen("80")


def test_socket_same_host_uses_loopback(cluster_runtime):
    rt = cluster_runtime
    server = rt.create_process("a0", "server")
    client = rt.create_process("a0", "client")  # same host
    listener = server.arbitration.sockets().listen("80")
    result = {}

    def srv(proc):
        conn = listener.accept(proc)
        conn.recv(proc)

    def cli(proc):
        conn = client.arbitration.sockets().connect(proc, "server", "80")
        t0 = rt.kernel.now
        conn.send(proc, b"x", 1_000_000)
        result["elapsed"] = rt.kernel.now - t0

    server.spawn(srv)
    client.spawn(cli)
    rt.run()
    # loopback at 800 MB/s: far faster than the 11.2 MB/s LAN
    assert result["elapsed"] < 1_000_000 / 100e6
