"""Arbitration layer: NIC claims, driver conflicts, thread policies."""

import pytest

from repro.padicotm import (
    ArbitrationConflictError,
    ModuleError,
    PadicoModule,
    ThreadPolicyError,
)


def test_cooperative_claims_coexist(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    p.arbitration.claim_nic("a-san", "BIP", "PadicoTM/madeleine",
                            cooperative=True)
    # second middleware through the multiplexer: fine (the point of PadicoTM)
    p.arbitration.claim_nic("a-san", "BIP", "PadicoTM/sockets",
                            cooperative=True)
    assert len(p.arbitration.claims) == 2


def test_direct_exclusive_claim_conflicts(cluster_runtime):
    """Paper §4.3.1: 'hardware with exclusive access (e.g. Myrinet
    through BIP)'."""
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    p.arbitration.claim_nic("a-san", "BIP", "legacy-mpi", cooperative=False)
    with pytest.raises(ArbitrationConflictError):
        p.arbitration.claim_nic("a-san", "BIP", "legacy-corba",
                                cooperative=False)
    # even a cooperative claim cannot share with a direct exclusive one
    with pytest.raises(ArbitrationConflictError):
        p.arbitration.claim_nic("a-san", "BIP", "PadicoTM/madeleine",
                                cooperative=True)


def test_incompatible_drivers_conflict(cluster_runtime):
    """Paper §4.3.1: 'incompatible drivers (e.g. BIP or GM on Myrinet)'."""
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    p.arbitration.claim_nic("a-san", "BIP", "mw1", cooperative=False)
    with pytest.raises(ArbitrationConflictError):
        p.arbitration.claim_nic("a-san", "GM", "mw2", cooperative=True)


def test_nonexclusive_driver_shared_on_lan(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    p.arbitration.claim_nic("a-lan", "tcp", "mw1", cooperative=False)
    p.arbitration.claim_nic("a-lan", "tcp", "mw2", cooperative=False)
    assert len(p.arbitration.claims) == 2


def test_claim_requires_nic_on_host(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    with pytest.raises(ValueError):
        p.arbitration.claim_nic("no-such-fabric", "tcp", "x", True)


def test_release_claims(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    p.arbitration.claim_nic("a-san", "BIP", "mw1", cooperative=True)
    assert p.arbitration.release_claims("mw1") == 1
    # now a direct claim succeeds
    p.arbitration.claim_nic("a-san", "BIP", "mw2", cooperative=False)


def test_thread_policy_adaptation_and_conflict(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    # via PadicoTM: everyone is adapted to Marcel
    assert p.arbitration.install_thread_policy(
        "pthread-fifo", "mpi", via_padico=True) == "marcel"
    assert p.arbitration.install_thread_policy(
        "java-threads", "kaffe", via_padico=True) == "marcel"
    # a direct second policy conflicts
    with pytest.raises(ThreadPolicyError):
        p.arbitration.install_thread_policy(
            "green-threads", "legacy", via_padico=False)


def test_direct_policy_first_then_adapted(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    assert p.arbitration.install_thread_policy(
        "pthread-fifo", "legacy", via_padico=False) == "pthread-fifo"
    # cooperative middleware adapts to whatever is resident
    assert p.arbitration.install_thread_policy(
        "whatever", "mpi", via_padico=True) == "pthread-fifo"


class _FakeMw(PadicoModule):
    name = "fake-mw"
    thread_policy = "pthread-fifo"

    def __init__(self):
        self.loaded = 0
        self.unloaded = 0

    def on_load(self, process):
        self.loaded += 1

    def on_unload(self, process):
        self.unloaded += 1


class _Dependent(PadicoModule):
    name = "dependent"
    requires = ("fake-mw",)


def test_module_lifecycle(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    mw = _FakeMw()
    p.modules.load(mw)
    assert mw.loaded == 1
    assert p.modules.is_loaded("fake-mw")
    assert p.arbitration.thread_policy == "marcel"

    with pytest.raises(ModuleError):
        p.modules.load(_FakeMw())  # duplicate

    dep = _Dependent()
    p.modules.load(dep)
    with pytest.raises(ModuleError):
        p.modules.unload("fake-mw")  # dependent still loaded
    p.modules.unload("dependent")
    p.modules.unload("fake-mw")
    assert mw.unloaded == 1
    assert not p.modules.is_loaded("fake-mw")


def test_module_missing_dependency(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    with pytest.raises(ModuleError):
        p.modules.load(_Dependent())


def test_module_get_unknown(cluster_runtime):
    rt = cluster_runtime
    p = rt.create_process("a0", "p0")
    with pytest.raises(ModuleError):
        p.modules.get("ghost")


def test_duplicate_process_and_unknown_host(cluster_runtime):
    rt = cluster_runtime
    rt.create_process("a0", "p0")
    with pytest.raises(ValueError):
        rt.create_process("a0", "p0")
    with pytest.raises(ValueError):
        rt.create_process("nowhere", "p1")
