"""Byte-order heterogeneity: big-endian and little-endian ORBs interop.

CORBA's receiver-makes-right rule: each side sends in its native order,
flagged in the message header; the receiver byte-swaps if needed."""

import numpy as np
import pytest

from repro.corba import MICO, OMNIORB4, Orb, compile_idl

from tests.corba.conftest import DEMO_IDL, make_adder_servant


@pytest.mark.parametrize("client_le,server_le", [
    (True, False), (False, True), (False, False),
])
def test_mixed_endianness_interop(runtime, client_le, server_le):
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL),
                little_endian=server_le)
    s_orb.start()
    c_orb = Orb(client, MICO, compile_idl(DEMO_IDL),
                little_endian=client_le)
    servant = make_adder_servant(s_orb)
    url = s_orb.object_to_string(s_orb.poa.activate_object(servant))
    out = {}

    def main(proc):
        from repro.corba.idl.types import UserExceptionBase

        stub = c_orb.string_to_object(url)
        out["sum"] = stub.add(-12345, 54321)
        out["dot"] = stub.dot(np.array([1.5, -2.5]),
                              np.array([4.0, 8.0]))
        out["greet"] = stub.greet("héllo")
        try:
            stub.divide(1, 0)
        except UserExceptionBase as e:
            out["exc"] = e.why

    client.spawn(main)
    runtime.run()
    assert out["sum"] == 41976
    assert out["dot"] == pytest.approx(1.5 * 4.0 + (-2.5) * 8.0)
    assert out["greet"] == "hello héllo"
    assert out["exc"] == "division by zero"
