"""Fixed-size IDL arrays: declarators, CDR, wire behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.corba.cdr import (
    CdrInputStream,
    CdrOutputStream,
    decode_value,
    encode_value,
    read_typecode,
    write_typecode,
)
from repro.corba.idl import IdlError
from repro.corba.idl.types import ANY, ArrayType, PrimitiveType

ARRAY_IDL = """
module A {
    typedef double Row[4];
    typedef double Grid[3][4];
    typedef octet Digest[16];
    struct Cell { long coords[2]; string name; };
    interface Math {
        double trace(in Grid m);
        Digest hash(in string text);
    };
};
"""


def _compiled():
    return compile_idl(ARRAY_IDL)


def roundtrip(t, value):
    out = CdrOutputStream()
    encode_value(out, t, value)
    return decode_value(CdrInputStream(out.getvalue()), t)


def test_array_typedefs_compile():
    idl = _compiled()
    row = idl.type("A::Row")
    assert isinstance(row, ArrayType) and row.length == 4
    grid = idl.type("A::Grid")
    assert grid.typename() == "double[3][4]"
    assert grid.length == 3 and grid.element.length == 4
    cell = idl.type("A::Cell")
    assert dict(cell.fields)["coords"] == ArrayType(PrimitiveType("long"), 2)


def test_array_wire_has_no_length_prefix():
    idl = _compiled()
    digest = idl.type("A::Digest")
    out = CdrOutputStream()
    encode_value(out, digest, bytes(16))
    assert len(out.getvalue()) == 16  # exactly the payload, no header


def test_array_roundtrip_numeric():
    idl = _compiled()
    row = idl.type("A::Row")
    back = roundtrip(row, np.array([1.0, 2.0, 3.0, 4.0]))
    assert np.array_equal(back, [1.0, 2.0, 3.0, 4.0])


def test_array_roundtrip_nested():
    idl = _compiled()
    grid = idl.type("A::Grid")
    v = np.arange(12.0).reshape(3, 4)
    back = roundtrip(grid, v)
    assert all(np.array_equal(r, v[i]) for i, r in enumerate(back))


def test_array_length_enforced():
    idl = _compiled()
    row = idl.type("A::Row")
    with pytest.raises(IdlError):
        roundtrip(row, np.zeros(5))
    with pytest.raises(IdlError):
        roundtrip(row, np.zeros(3))


def test_array_in_struct_and_any():
    idl = _compiled()
    cell = idl.type("A::Cell")
    value = cell.make(coords=[7, 9], name="cell")
    back = roundtrip(cell, value)
    assert list(back.coords) == [7, 9]
    out = CdrOutputStream()
    encode_value(out, ANY, (cell, value))
    t, v = decode_value(CdrInputStream(out.getvalue()), ANY)
    assert t == cell and list(v.coords) == [7, 9]


def test_array_typecode_roundtrip():
    idl = _compiled()
    for name in ("A::Row", "A::Grid", "A::Digest"):
        t = idl.type(name)
        out = CdrOutputStream()
        write_typecode(out, t)
        assert read_typecode(CdrInputStream(out.getvalue())) == t


def test_zero_length_array_rejected():
    with pytest.raises(IdlError):
        ArrayType(PrimitiveType("long"), 0)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 12), st.data())
def test_array_roundtrip_property(length, data):
    t = ArrayType(PrimitiveType("long"), length)
    values = data.draw(st.lists(st.integers(-2**31, 2**31 - 1),
                                min_size=length, max_size=length))
    back = roundtrip(t, values)
    assert list(back) == values


def test_arrays_through_full_invocation(runtime):
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(ARRAY_IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(ARRAY_IDL))

    class Math(s_orb.servant_base("A::Math")):
        def trace(self, m):
            return float(sum(m[i][i] for i in range(3)))

        def hash(self, text):
            return (text.encode() * 16)[:16]

    url = s_orb.object_to_string(s_orb.poa.activate_object(Math()))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        out["trace"] = stub.trace(np.arange(12.0).reshape(3, 4))
        out["hash"] = stub.hash("xy")

    client.spawn(main)
    runtime.run()
    assert out["trace"] == 0.0 + 5.0 + 10.0
    assert out["hash"] == b"xy" * 8
