"""IDL discriminated unions: parsing, CDR, invocation, `any`."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.corba.cdr import (
    CdrInputStream,
    CdrOutputStream,
    decode_value,
    encode_value,
    read_typecode,
    write_typecode,
)
from repro.corba.idl import IdlError
from repro.corba.idl.types import ANY

UNION_IDL = """
module U {
    enum Kind { INT, TEXT, NOTHING };
    union Payload switch (Kind) {
        case INT: long i;
        case TEXT: string s;
        default: boolean flag;
    };
    union Pick switch (long) {
        case 1:
        case 2: double small;
        case 10: string big;
    };
    union OnOff switch (boolean) {
        case TRUE: string reason;
    };
    interface Channel {
        Payload echo(in Payload p);
        Pick classify(in long n);
    };
};
"""


def _compiled():
    return compile_idl(UNION_IDL)


def roundtrip(t, value):
    out = CdrOutputStream()
    encode_value(out, t, value)
    return decode_value(CdrInputStream(out.getvalue()), t)


def test_union_compiles_with_enum_switch():
    idl = _compiled()
    payload = idl.type("U::Payload")
    assert payload.switch_type is idl.type("U::Kind")
    labels = [c[0] for c in payload.cases]
    assert labels == [(0,), (1,), None]  # enum labels resolve to indices


def test_multi_label_case():
    idl = _compiled()
    pick = idl.type("U::Pick")
    assert pick.cases[0][0] == (1, 2)
    assert pick.case_for(1)[1] == "small"
    assert pick.case_for(2)[1] == "small"
    assert pick.case_for(10)[1] == "big"
    assert pick.case_for(99) is None  # no default arm


def test_boolean_switch():
    idl = _compiled()
    onoff = idl.type("U::OnOff")
    v = onoff.make(True, "because")
    assert roundtrip(onoff, v) == v
    off = onoff.make(False)  # selects nothing
    assert roundtrip(onoff, off) == off


@pytest.mark.parametrize("d,v,member", [
    (0, 42, "i"), ("INT", 7, "i"), (1, "text", "s"), (2, True, "flag"),
])
def test_union_roundtrip_enum_switch(d, v, member):
    idl = _compiled()
    payload = idl.type("U::Payload")
    value = payload.make(d, v)
    assert value.member == member
    back = roundtrip(payload, value)
    assert back.v == v


def test_union_typecheck_rejects_wrong_member_type():
    idl = _compiled()
    payload = idl.type("U::Payload")
    with pytest.raises(IdlError):
        roundtrip(payload, payload.make(0, "not an int"))
    with pytest.raises(IdlError):
        roundtrip(payload, payload.make(9, None))  # bad enum index


def test_union_no_member_requires_none():
    idl = _compiled()
    pick = idl.type("U::Pick")
    with pytest.raises(IdlError):
        roundtrip(pick, pick.make(99, 3.14))  # 99 selects nothing


def test_union_in_any_with_typecode():
    idl = _compiled()
    payload = idl.type("U::Payload")
    value = payload.make("TEXT", "via any")
    out = CdrOutputStream()
    encode_value(out, ANY, (payload, value))
    t, v = decode_value(CdrInputStream(out.getvalue()), ANY)
    assert t == payload
    assert v == value


def test_union_typecode_roundtrip():
    idl = _compiled()
    for name in ("U::Payload", "U::Pick", "U::OnOff"):
        t = idl.type(name)
        out = CdrOutputStream()
        write_typecode(out, t)
        assert read_typecode(CdrInputStream(out.getvalue())) == t


@pytest.mark.parametrize("bad_idl,msg", [
    ("union U switch (double) { case 1: long x; };", "switch type"),
    ("union U switch (string) { case 1: long x; };", "switch type"),
    ("""union U switch (long) {
        case 1: long x;
        case 1: string y; };""", "duplicate case label"),
    ("""union U switch (long) {
        default: long x;
        default: string y; };""", "multiple default"),
])
def test_union_validation(bad_idl, msg):
    from repro.corba.idl import IdlParseError

    with pytest.raises((IdlError, IdlParseError)) as ei:
        compile_idl(bad_idl)
    assert msg in str(ei.value)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 2), st.data())
def test_union_roundtrip_property(arm, data):
    idl = _compiled()
    payload = idl.type("U::Payload")
    if arm == 0:
        value = payload.make(0, data.draw(st.integers(-2**31, 2**31 - 1)))
    elif arm == 1:
        value = payload.make(1, data.draw(st.text(max_size=30)))
    else:
        value = payload.make(2, data.draw(st.booleans()))
    assert roundtrip(payload, value) == value


def test_union_through_full_invocation(runtime):
    """Unions as operation arguments and results over GIOP."""
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(UNION_IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(UNION_IDL))
    payload_t = s_orb.idl.type("U::Payload")
    pick_t = s_orb.idl.type("U::Pick")

    class Channel(s_orb.servant_base("U::Channel")):
        def echo(self, p):
            return p

        def classify(self, n):
            if n in (1, 2):
                return pick_t.make(n, float(n) / 2)
            if n == 10:
                return pick_t.make(10, "ten")
            return pick_t.make(99)

    url = s_orb.object_to_string(s_orb.poa.activate_object(Channel()))
    out = {}

    def main(proc):
        c_payload = c_orb.idl.type("U::Payload")
        stub = c_orb.string_to_object(url)
        out["echo"] = stub.echo(c_payload.make("TEXT", "hello"))
        out["c1"] = stub.classify(1)
        out["c10"] = stub.classify(10)
        out["c99"] = stub.classify(99)

    client.spawn(main)
    runtime.run()
    assert out["echo"].v == "hello"
    assert out["c1"].v == 0.5
    assert out["c10"].v == "ten"
    assert out["c99"].v is None and out["c99"].d == 99
