"""IDL lexer, parser and compiler."""

import pytest

from repro.corba.idl import (
    IdlError,
    IdlParseError,
    compile_idl,
    parse_idl,
    tokenize,
)
from repro.corba.idl.types import (
    ObjRefType,
    PrimitiveType,
    SequenceType,
    StringType,
)


def test_tokenize_basics():
    toks = tokenize("module M { interface I; };")
    kinds = [(t.kind, t.value) for t in toks]
    assert kinds[0] == ("keyword", "module")
    assert kinds[1] == ("ident", "M")
    assert kinds[-1] == ("eof", "")


def test_tokenize_comments_and_preproc_skipped():
    toks = tokenize("""
    // a line comment
    /* a block
       comment */
    #include "x.idl"
    module M {};
    """)
    assert toks[0].value == "module"
    assert toks[0].line == 6


def test_tokenize_rejects_garbage():
    with pytest.raises(IdlParseError):
        tokenize("module M { $$$ };")


def test_tokenize_literals():
    toks = tokenize("1 0x1F 2.5 1e3 'c' \"str\"")
    assert [t.kind for t in toks[:-1]] == \
        ["int", "int", "float", "float", "char", "string"]


def test_parse_error_has_position():
    with pytest.raises(IdlParseError) as ei:
        parse_idl("module M {\n  interface {\n};")
    assert ei.value.line == 2


def test_compile_simple_module():
    idl = compile_idl("""
    module Demo {
        struct Point { double x, y; };
        enum Color { RED, GREEN, BLUE };
        typedef sequence<long> LongSeq;
        typedef sequence<long, 16> BoundedSeq;
        const long ANSWER = 6 * 7;
        const double PI2 = 6.28;
        const boolean YES = TRUE;
        const long MASK = (1 << 4) | 3;
        exception Oops { string why; };
        interface Thing {
            long op(in long a, inout double b, out string c);
            readonly attribute long count;
        };
    };
    """)
    assert idl.constants["Demo::ANSWER"] == 42
    assert idl.constants["Demo::MASK"] == 19
    assert idl.constants["Demo::YES"] is True
    pt = idl.type("Demo::Point")
    assert [f[0] for f in pt.fields] == ["x", "y"]
    seq = idl.type("Demo::LongSeq")
    assert isinstance(seq, SequenceType)
    assert seq.element == PrimitiveType("long")
    assert idl.type("Demo::BoundedSeq").bound == 16
    thing = idl.interface("Demo::Thing")
    op = thing.operation("op")
    assert [d for _n, d, _t in op.params] == ["in", "inout", "out"]
    assert [n for n, _t in op.in_params] == ["a", "b"]
    assert [n for n, _t in op.out_params] == ["b", "c"]
    assert thing.attributes["count"].readonly
    assert thing.repo_id == "IDL:Demo/Thing:1.0"


def test_interface_inheritance_flattens_operations():
    idl = compile_idl("""
    interface A { void fa(); attribute long x; };
    interface B : A { void fb(); };
    interface C : B { void fc(); };
    """)
    c = idl.interface("C")
    assert set(c.operations) == {"fa", "fb", "fc"}
    assert "x" in c.attributes
    assert c.bases == ["B"]


def test_interface_multiple_inheritance():
    idl = compile_idl("""
    interface A { void fa(); };
    interface B { void fb(); };
    interface AB : A, B {};
    """)
    assert set(idl.interface("AB").operations) == {"fa", "fb"}


def test_cross_module_name_resolution():
    idl = compile_idl("""
    module Base { struct S { long v; }; };
    module App {
        typedef sequence<Base::S> SList;
        interface I { Base::S get(); };
    };
    """)
    slist = idl.type("App::SList")
    assert slist.element is idl.type("Base::S")


def test_relative_resolution_prefers_inner_scope():
    idl = compile_idl("""
    struct S { long outer; };
    module M {
        struct S { long inner; };
        interface I { S get(); };
    };
    """)
    op = idl.interface("M::I").operation("get")
    assert op.return_type is idl.type("M::S")


def test_interface_reference_becomes_objref():
    idl = compile_idl("""
    interface Worker { void run(); };
    interface Factory { Worker create(); };
    """)
    ret = idl.interface("Factory").operation("create").return_type
    assert ret == ObjRefType("Worker")


def test_object_generic_type():
    idl = compile_idl("interface NS { Object resolve(in string n); };")
    ret = idl.interface("NS").operation("resolve").return_type
    assert ret == ObjRefType("")


def test_raises_clause_resolution():
    idl = compile_idl("""
    module M {
        exception E1 { long code; };
        interface I { void f() raises (E1); };
    };
    """)
    op = idl.interface("M::I").operation("f")
    assert op.raises[0] is idl.type("M::E1")


def test_raises_must_name_exception():
    with pytest.raises(IdlError):
        compile_idl("""
        struct NotAnExc { long x; };
        interface I { void f() raises (NotAnExc); };
        """)


def test_unknown_name_rejected():
    with pytest.raises(IdlError):
        compile_idl("interface I { Mystery get(); };")


def test_duplicate_names_rejected():
    with pytest.raises(IdlError):
        compile_idl("struct S { long a; }; struct S { long b; };")


def test_duplicate_operation_rejected():
    with pytest.raises(IdlError):
        compile_idl("interface I { void f(); void f(); };")


def test_oneway_must_be_void():
    with pytest.raises(IdlParseError):
        compile_idl("interface I { oneway long f(); };")


def test_component_declaration():
    idl = compile_idl("""
    module App {
        interface Port1 { void m(); };
        eventtype Tick { long count; };
        component Worker {
            provides Port1 input;
            uses Port1 output;
            emits Tick heartbeat;
            consumes Tick alarm;
            attribute long size;
        };
        home WorkerHome manages Worker {
            factory make(in long size);
        };
    };
    """)
    comp = idl.component("App::Worker")
    assert comp.provides == {"input": "App::Port1"}
    assert comp.uses == {"output": "App::Port1"}
    assert comp.emits == {"heartbeat": "App::Tick"}
    assert comp.consumes == {"alarm": "App::Tick"}
    assert "size" in comp.attributes
    home = idl.home("App::WorkerHome")
    assert home.manages == "App::Worker"
    assert home.factories[0].name == "make"
    assert idl.home_for_component("App::Worker") is home
    assert "App::Tick" in idl.events


def test_component_inheritance_merges_ports():
    idl = compile_idl("""
    interface P { void m(); };
    component Base { provides P a; };
    component Derived : Base { uses P b; };
    """)
    d = idl.component("Derived")
    assert set(d.all_ports()) == {"a", "b"}


def test_duplicate_port_rejected():
    with pytest.raises(IdlError):
        compile_idl("""
        interface P { void m(); };
        component C { provides P a; uses P a; };
        """)


def test_home_must_manage_component():
    with pytest.raises(IdlError):
        compile_idl("""
        interface I { void f(); };
        home H manages I {};
        """)


def test_nested_interface_types():
    idl = compile_idl("""
    interface I {
        struct Inner { long v; };
        Inner get();
    };
    """)
    inner = idl.type("I::Inner")
    assert idl.interface("I").operation("get").return_type is inner


def test_merge_compiled_units():
    a = compile_idl("struct A { long x; };")
    b = compile_idl("struct B { long y; };")
    a.merge(b)
    assert "B" in a.types
    with pytest.raises(IdlError):
        a.merge(compile_idl("struct B { long z; };"))


def test_string_bounds_and_primitives():
    idl = compile_idl("""
    struct S {
        string<32> name;
        unsigned long long big;
        long long sbig;
        octet o;
        char c;
        boolean flag;
        float f;
    };
    """)
    fields = dict(idl.type("S").fields)
    assert fields["name"] == StringType(32)
    assert fields["big"] == PrimitiveType("unsigned long long")
    assert fields["sbig"] == PrimitiveType("long long")


def test_circular_struct_rejected():
    with pytest.raises(IdlError):
        compile_idl("struct S { sequence<S> kids; };")
