"""Shared CORBA test fixtures."""

import pytest

from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime


@pytest.fixture()
def runtime():
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


DEMO_IDL = """
module Demo {
    exception Oops { string why; long code; };
    struct Point { double x; double y; };
    typedef sequence<double> Vector;

    interface Adder {
        long add(in long a, in long b);
        double dot(in Vector u, in Vector v);
        Point translate(in Point p, in double dx, in double dy);
        void divide(in long a, in long b, out long q, out long r)
            raises (Oops);
        string greet(in string name);
        oneway void notify(in string message);
        attribute string label;
        readonly attribute unsigned long calls;
    };

    interface Registry {
        void register(in string name, in Adder who);
        Adder find(in string name) raises (Oops);
    };
};
"""


def make_adder_servant(orb):
    """An Adder implementation counting its invocations."""

    class AdderImpl(orb.servant_base("Demo::Adder")):
        def __init__(self):
            self.label = "adder"
            self.calls = 0
            self.notifications = []

        def add(self, a, b):
            self.calls += 1
            return a + b

        def dot(self, u, v):
            self.calls += 1
            import numpy as np
            return float(np.dot(np.asarray(u), np.asarray(v)))

        def translate(self, p, dx, dy):
            self.calls += 1
            point = orb.idl.type("Demo::Point")
            return point.make(x=p.x + dx, y=p.y + dy)

        def divide(self, a, b):
            self.calls += 1
            if b == 0:
                raise orb.idl.type("Demo::Oops").make(
                    why="division by zero", code=-1)
            return (a // b, a % b)

        def greet(self, name):
            self.calls += 1
            return f"hello {name}"

        def notify(self, message):
            self.notifications.append(message)

    return AdderImpl()
