"""Property-based IDL compiler tests: render random type trees to IDL
source, compile, and check the resolved model matches."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba import compile_idl
from repro.corba.idl.types import (
    ArrayType,
    PrimitiveType,
    SequenceType,
    StringType,
)

_PRIM_KINDS = ["short", "unsigned short", "long", "unsigned long",
               "long long", "unsigned long long", "float", "double",
               "boolean", "char", "octet"]


@st.composite
def type_trees(draw, depth=2):
    kind = draw(st.sampled_from(
        ["prim", "string", "bstring"] +
        (["seq", "bseq", "array"] if depth > 0 else [])))
    if kind == "prim":
        return PrimitiveType(draw(st.sampled_from(_PRIM_KINDS)))
    if kind == "string":
        return StringType()
    if kind == "bstring":
        return StringType(draw(st.integers(1, 255)))
    if kind == "seq":
        return SequenceType(draw(type_trees(depth=depth - 1)))
    if kind == "bseq":
        return SequenceType(draw(type_trees(depth=depth - 1)),
                            draw(st.integers(1, 1000)))
    # array — arrays cannot directly contain anonymous arrays in IDL
    inner = draw(type_trees(depth=0))
    dims = draw(st.lists(st.integers(1, 9), min_size=1, max_size=3))
    out = inner
    for d in reversed(dims):
        out = ArrayType(out, d)
    return out


def _render(t) -> tuple[str, str]:
    """Render a type as (type spec text, array declarator suffix)."""
    if isinstance(t, ArrayType):
        dims = []
        while isinstance(t, ArrayType):
            dims.append(t.length)
            t = t.element
        spec, suffix = _render(t)
        assert not suffix
        return spec, "".join(f"[{d}]" for d in dims)
    if isinstance(t, PrimitiveType):
        return t.kind, ""
    if isinstance(t, StringType):
        return (f"string<{t.bound}>" if t.bound else "string"), ""
    if isinstance(t, SequenceType):
        inner, suffix = _render(t.element)
        if suffix:
            # anonymous arrays cannot appear inside sequences: lift via
            # the equality check instead (skip by rendering a typedef)
            raise _NeedsTypedef(t.element)
        bound = f", {t.bound}" if t.bound else ""
        return f"sequence<{inner}{bound}>", ""
    raise AssertionError(t)


class _NeedsTypedef(Exception):
    def __init__(self, inner):
        self.inner = inner


@settings(max_examples=250, deadline=None)
@given(st.lists(type_trees(), min_size=1, max_size=5))
def test_struct_member_types_roundtrip(member_types):
    """struct with these member types: compile(render(T)) == T."""
    members = []
    typedefs = []
    for i, t in enumerate(member_types):
        try:
            spec, suffix = _render(t)
        except _NeedsTypedef as need:
            # sequence<array> needs a named element type in IDL
            ispec, isuffix = _render(need.inner)
            typedefs.append(f"typedef {ispec} Elem{i}{isuffix};")
            outer = t
            spec, suffix = f"sequence<Elem{i}" + (
                f", {outer.bound}>" if outer.bound else ">"), ""
        members.append(f"{spec} f{i}{suffix};")
    source = "\n".join(typedefs) + "\nstruct S {\n" + \
        "\n".join(members) + "\n};"
    idl = compile_idl(source)
    fields = dict(idl.type("S").fields)
    for i, t in enumerate(member_types):
        assert fields[f"f{i}"] == t, (source, i)


@settings(max_examples=250, deadline=None)
@given(type_trees())
def test_typedef_roundtrip(t):
    try:
        spec, suffix = _render(t)
    except _NeedsTypedef as need:
        ispec, isuffix = _render(need.inner)
        source = f"typedef {ispec} Inner{isuffix};\n"
        bound = f", {t.bound}" if getattr(t, "bound", None) else ""
        source += f"typedef sequence<Inner{bound}> T;"
    else:
        source = f"typedef {spec} T{suffix};"
    idl = compile_idl(source)
    assert idl.type("T") == t
