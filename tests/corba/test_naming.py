"""Naming Service over the full GIOP path."""

from repro.corba import NamingContext, NamingService, Orb, OMNIORB4, compile_idl
from repro.corba.idl.types import UserExceptionBase

from tests.corba.conftest import DEMO_IDL, make_adder_servant


def test_naming_bind_resolve_unbind_list(runtime):
    server = runtime.create_process("a0", "ns-host")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL))
    s_orb.start()
    ns = NamingService(s_orb)
    adder_url = s_orb.object_to_string(
        s_orb.poa.activate_object(make_adder_servant(s_orb)))
    c_orb = Orb(client, OMNIORB4, compile_idl(DEMO_IDL))
    out = {}

    def main(proc):
        ctx = NamingContext(c_orb, ns.url)
        adder = c_orb.string_to_object(adder_url)
        ctx.bind("services.adder", adder)
        ctx.bind("services.other", adder)
        out["list"] = ctx.list()
        found = ctx.resolve("services.adder")
        out["sum"] = found.add(4, 5)
        try:
            ctx.bind("services.adder", adder)
        except UserExceptionBase as e:
            out["already"] = e.name
        ctx.rebind("services.adder", adder)  # rebind is fine
        ctx.unbind("services.other")
        out["list2"] = ctx.list()
        try:
            ctx.resolve("services.other")
        except UserExceptionBase as e:
            out["missing"] = e.name

    client.spawn(main)
    runtime.run()
    assert out["list"] == ["services.adder", "services.other"]
    assert out["sum"] == 9
    assert out["already"] == "services.adder"
    assert out["list2"] == ["services.adder"]
    assert out["missing"] == "services.other"


def test_resolved_reference_is_invocable_typed_stub(runtime):
    server = runtime.create_process("a0", "ns-host")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL))
    s_orb.start()
    ns = NamingService(s_orb)
    servant = make_adder_servant(s_orb)
    ref = s_orb.poa.activate_object(servant)
    c_orb = Orb(client, OMNIORB4, compile_idl(DEMO_IDL))
    out = {}

    def server_main(proc):
        # the server itself binds (collocated naming calls)
        ctx = NamingContext(s_orb, ns.url)
        ctx.bind("adder", ref)

    def client_main(proc):
        proc.sleep(0.001)
        ctx = NamingContext(c_orb, ns.url)
        stub = ctx.resolve("adder")
        out["type"] = type(stub).__name__
        out["greet"] = stub.greet("naming")

    server.spawn(server_main)
    client.spawn(client_main)
    runtime.run()
    assert out["type"] == "AdderStub"
    assert out["greet"] == "hello naming"
