"""CDR marshalling: alignment, both byte orders, zero-copy accounting,
and property-based round-trips over randomly generated IDL values."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba.cdr import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    ZERO_COPY_THRESHOLD,
    decode_value,
    encode_value,
    read_typecode,
    write_typecode,
)
from repro.corba.idl.types import (
    ANY,
    ArrayType,
    EnumType,
    ExceptionType,
    ObjRefType,
    PrimitiveType,
    SequenceType,
    StringType,
    StructType,
    UnionType,
    UnionValue,
)
from repro.corba.ior import IOR


def roundtrip(t, value, little=True, zero_copy=False):
    out = CdrOutputStream(little_endian=little, zero_copy=zero_copy)
    encode_value(out, t, value)
    return decode_value(CdrInputStream(out.getvalue(), little), t)


# ---------------------------------------------------------------------------
# directed tests
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("kind,value", [
    ("short", -123), ("unsigned short", 65535),
    ("long", -2**31), ("unsigned long", 2**32 - 1),
    ("long long", -2**63), ("unsigned long long", 2**64 - 1),
    ("float", 1.5), ("double", -2.75),
    ("boolean", True), ("boolean", False),
    ("char", "A"), ("octet", 200),
])
@pytest.mark.parametrize("little", [True, False])
def test_primitive_roundtrip(kind, value, little):
    assert roundtrip(PrimitiveType(kind), value, little) == value


def test_primitive_range_check():
    from repro.corba.idl.errors import IdlError

    with pytest.raises(IdlError):
        roundtrip(PrimitiveType("short"), 40000)
    with pytest.raises(IdlError):
        roundtrip(PrimitiveType("octet"), -1)


def test_alignment_layout():
    """CDR aligns each primitive to its natural boundary."""
    out = CdrOutputStream()
    out.write_primitive("octet", 1)
    out.write_primitive("double", 2.0)   # pads 7 bytes
    data = out.getvalue()
    assert len(data) == 16
    assert data[1:8] == b"\x00" * 7


def test_string_roundtrip_unicode():
    assert roundtrip(StringType(), "héllo wörld") == "héllo wörld"
    assert roundtrip(StringType(), "") == ""


def test_string_bound_enforced():
    from repro.corba.idl.errors import IdlError

    with pytest.raises(IdlError):
        roundtrip(StringType(4), "too long")


def test_octet_sequence_roundtrip():
    t = SequenceType(PrimitiveType("octet"))
    assert roundtrip(t, b"\x00\x01\xff") == b"\x00\x01\xff"
    assert roundtrip(t, b"") == b""


@pytest.mark.parametrize("dtype,kind", [
    ("i2", "short"), ("u2", "unsigned short"),
    ("i4", "long"), ("u4", "unsigned long"),
    ("i8", "long long"), ("f4", "float"), ("f8", "double"),
])
def test_numeric_sequence_roundtrip(dtype, kind):
    t = SequenceType(PrimitiveType(kind))
    arr = np.arange(100).astype(dtype)
    back = roundtrip(t, arr)
    assert np.array_equal(back, arr)


def test_numeric_sequence_big_endian():
    t = SequenceType(PrimitiveType("double"))
    arr = np.linspace(0, 1, 50)
    back = roundtrip(t, arr, little=False)
    assert np.allclose(back, arr)


def test_sequence_bound_enforced_on_decode():
    t_unbounded = SequenceType(PrimitiveType("long"))
    out = CdrOutputStream()
    encode_value(out, t_unbounded, list(range(10)))
    t_bounded = SequenceType(PrimitiveType("long"), bound=5)
    with pytest.raises(CdrError):
        decode_value(CdrInputStream(out.getvalue()), t_bounded)


def test_nested_sequences():
    t = SequenceType(SequenceType(PrimitiveType("long")))
    value = [[1, 2], [], [3, 4, 5]]
    back = roundtrip(t, value)
    assert [list(np.asarray(x)) for x in back] == value


def test_struct_and_enum_roundtrip():
    color = EnumType("Color", "Color", ["RED", "GREEN", "BLUE"])
    point = StructType("Point", "Geo::Point", [
        ("x", PrimitiveType("double")),
        ("y", PrimitiveType("double")),
        ("tint", color),
    ])
    value = point.make(x=1.0, y=-2.0, tint="BLUE")
    back = roundtrip(point, value)
    assert back.x == 1.0 and back.y == -2.0
    assert back.tint == 2  # enums decode to member index
    assert roundtrip(color, "GREEN") == 1
    assert roundtrip(color, 0) == 0


def test_exception_roundtrip():
    exc = ExceptionType("Oops", "M::Oops", [("why", StringType())],
                        "IDL:M/Oops:1.0")
    back = roundtrip(exc, exc.make(why="bad"))
    assert back.why == "bad"
    assert isinstance(back, Exception)


def test_objref_roundtrip_and_nil():
    t = ObjRefType("Demo::Adder")
    ior = IOR("IDL:Demo/Adder:1.0", "server", "iiop", "adder-1")
    assert roundtrip(t, ior) == ior
    assert roundtrip(t, None) is None


def test_any_roundtrip():
    t = SequenceType(PrimitiveType("long"))
    back_t, back_v = roundtrip(ANY, (t, np.array([5, 6, 7], "i4")))
    assert back_t == t
    assert list(back_v) == [5, 6, 7]


def test_any_struct_roundtrip():
    point = StructType("Point", "Geo::Point", [
        ("x", PrimitiveType("double")), ("y", PrimitiveType("double"))])
    back_t, back_v = roundtrip(ANY, (point, point.make(x=1.0, y=2.0)))
    assert back_t == point
    assert back_v == point.make(x=1.0, y=2.0)


def test_typecode_roundtrip_complex():
    t = SequenceType(StructType("S", "M::S", [
        ("name", StringType(16)),
        ("data", SequenceType(PrimitiveType("octet"))),
        ("ref", ObjRefType("M::I")),
    ]), bound=8)
    out = CdrOutputStream()
    write_typecode(out, t)
    assert read_typecode(CdrInputStream(out.getvalue())) == t


def test_truncated_stream_detected():
    out = CdrOutputStream()
    encode_value(out, PrimitiveType("double"), 1.0)
    data = out.getvalue()[:-2]
    with pytest.raises(CdrError):
        decode_value(CdrInputStream(data), PrimitiveType("double"))


# ---------------------------------------------------------------------------
# zero-copy accounting (the Figure-7 mechanism)
# ---------------------------------------------------------------------------

def test_zero_copy_skips_bulk_payload():
    t = SequenceType(PrimitiveType("double"))
    arr = np.zeros(100_000)
    out = CdrOutputStream(zero_copy=True)
    encode_value(out, t, arr)
    assert out.copied_bytes < 100           # only the length header
    assert len(out.getvalue()) >= arr.nbytes


def test_copying_mode_copies_everything():
    t = SequenceType(PrimitiveType("double"))
    arr = np.zeros(100_000)
    out = CdrOutputStream(zero_copy=False)
    encode_value(out, t, arr)
    assert out.copied_bytes >= arr.nbytes


def test_zero_copy_threshold_small_payloads_copied():
    t = SequenceType(PrimitiveType("octet"))
    small = bytes(ZERO_COPY_THRESHOLD - 1)
    out = CdrOutputStream(zero_copy=True)
    encode_value(out, t, small)
    assert out.copied_bytes >= len(small)


def test_decode_numeric_sequence_is_view_not_copy():
    """The guide's views-not-copies idiom on the receive path."""
    t = SequenceType(PrimitiveType("long"))
    out = CdrOutputStream()
    encode_value(out, t, np.arange(1000, dtype="i4"))
    data = out.getvalue()
    back = decode_value(CdrInputStream(data), t)
    assert back.base is not None  # it's a view over the message buffer


# ---------------------------------------------------------------------------
# property-based round-trips
# ---------------------------------------------------------------------------

_prim_values = {
    "short": st.integers(-2**15, 2**15 - 1),
    "unsigned short": st.integers(0, 2**16 - 1),
    "long": st.integers(-2**31, 2**31 - 1),
    "unsigned long": st.integers(0, 2**32 - 1),
    "long long": st.integers(-2**63, 2**63 - 1),
    "unsigned long long": st.integers(0, 2**64 - 1),
    "double": st.floats(allow_nan=False, allow_infinity=False),
    "boolean": st.booleans(),
    "octet": st.integers(0, 255),
    "char": st.characters(min_codepoint=32, max_codepoint=126),
}


@st.composite
def typed_values(draw, depth=2):
    """A random (IdlType, conforming value) pair."""
    choices = ["prim", "string", "octetseq", "numseq"]
    if depth > 0:
        choices += ["listseq", "struct", "enum", "array", "union"]
    kind = draw(st.sampled_from(choices))
    if kind == "prim":
        pk = draw(st.sampled_from(sorted(_prim_values)))
        return PrimitiveType(pk), draw(_prim_values[pk])
    if kind == "string":
        return StringType(), draw(st.text(max_size=40))
    if kind == "octetseq":
        return (SequenceType(PrimitiveType("octet")),
                draw(st.binary(max_size=300)))
    if kind == "numseq":
        nk = draw(st.sampled_from(["long", "double", "short"]))
        vals = draw(st.lists(_prim_values[nk], max_size=50))
        dtype = PrimitiveType(nk).dtype
        return (SequenceType(PrimitiveType(nk)),
                np.array(vals, dtype=dtype))
    if kind == "listseq":
        inner_t, _ = draw(typed_values(depth=0))
        n = draw(st.integers(0, 5))
        vals = [draw(_value_for(inner_t)) for _ in range(n)]
        return SequenceType(inner_t), vals
    if kind == "enum":
        members = draw(st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6),
            min_size=1, max_size=5, unique=True))
        et = EnumType("E", "E", members)
        return et, draw(st.integers(0, len(members) - 1))
    if kind == "array":
        inner_t, _ = draw(typed_values(depth=0))
        length = draw(st.integers(1, 6))
        at = ArrayType(inner_t, length)
        return at, [draw(_value_for(inner_t)) for _ in range(length)]
    if kind == "union":
        n_arms = draw(st.integers(1, 3))
        cases = []
        arm_types = []
        for i in range(n_arms):
            at, _ = draw(typed_values(depth=0))
            arm_types.append(at)
            cases.append(((i,), f"m{i}", at))
        has_default = draw(st.booleans())
        if has_default:
            dt, _ = draw(typed_values(depth=0))
            arm_types.append(dt)
            cases.append((None, "dflt", dt))
        ut = UnionType("U", "U", PrimitiveType("long"), cases)
        if has_default and draw(st.booleans()):
            d = n_arms + 100  # falls to the default arm
            return ut, ut.make(d, draw(_value_for(arm_types[-1])))
        arm = draw(st.integers(0, n_arms - 1))
        return ut, ut.make(arm, draw(_value_for(arm_types[arm])))
    # struct
    nfields = draw(st.integers(1, 4))
    fields = []
    values = {}
    for i in range(nfields):
        ft, _ = draw(typed_values(depth=0))
        fields.append((f"f{i}", ft))
        values[f"f{i}"] = draw(_value_for(ft))
    stype = StructType("S", "S", fields)
    return stype, stype.make(**values)


def _value_for(t):
    if isinstance(t, PrimitiveType):
        return _prim_values[t.kind]
    if isinstance(t, StringType):
        return st.text(max_size=20)
    if isinstance(t, SequenceType):
        elem = t.element
        if isinstance(elem, PrimitiveType) and elem.kind == "octet":
            return st.binary(max_size=60)
        if isinstance(elem, PrimitiveType) and elem.kind != "char":
            return st.lists(_prim_values[elem.kind], max_size=20).map(
                lambda v: np.array(v, dtype=elem.dtype))
    raise AssertionError(f"no strategy for {t}")


def _eq(t, a, b):
    if isinstance(t, ArrayType):
        return len(a) == len(b) and all(
            _eq(t.element, x, y) for x, y in zip(a, b))
    if isinstance(t, UnionType):
        if a.d != b.d:
            return False
        case = t.case_for(a.d)
        if case is None:
            return a.v is None and b.v is None
        return _eq(case[2], a.v, b.v)
    if isinstance(t, SequenceType):
        elem = t.element
        if isinstance(elem, PrimitiveType) and elem.kind == "octet":
            return bytes(a) == bytes(b)
        if isinstance(elem, PrimitiveType):
            return np.array_equal(np.asarray(a), np.asarray(b))
        return len(a) == len(b) and all(
            _eq(elem, x, y) for x, y in zip(a, b))
    if isinstance(t, EnumType):
        return t.index_of(a) == t.index_of(b)
    if isinstance(t, StructType):
        return all(_eq(ft, getattr(a, fn), getattr(b, fn))
                   for fn, ft in t.fields)
    if isinstance(t, PrimitiveType) and t.kind in ("float",):
        return np.float32(a) == np.float32(b)
    return a == b


@settings(max_examples=250, deadline=None)
@given(typed_values(), st.booleans(), st.booleans())
def test_cdr_roundtrip_property(tv, little, zero_copy):
    t, value = tv
    out = CdrOutputStream(little_endian=little, zero_copy=zero_copy)
    encode_value(out, t, value)
    back = decode_value(CdrInputStream(out.getvalue(), little), t)
    assert _eq(t, back, value)


@settings(max_examples=100, deadline=None)
@given(typed_values())
def test_any_roundtrip_property(tv):
    t, value = tv
    out = CdrOutputStream()
    encode_value(out, ANY, (t, value))
    back_t, back_v = decode_value(CdrInputStream(out.getvalue()), ANY)
    assert back_t == t
    assert _eq(t, back_v, value)


@settings(max_examples=100, deadline=None)
@given(typed_values(), typed_values())
def test_cdr_streams_concatenate(tv1, tv2):
    """Two values encoded back-to-back decode back-to-back (alignment
    is positional, not per-value)."""
    (t1, v1), (t2, v2) = tv1, tv2
    out = CdrOutputStream()
    encode_value(out, t1, v1)
    encode_value(out, t2, v2)
    inp = CdrInputStream(out.getvalue())
    assert _eq(t1, decode_value(inp, t1), v1)
    assert _eq(t2, decode_value(inp, t2), v2)
