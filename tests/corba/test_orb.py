"""ORB end-to-end: stubs, skeletons, GIOP, profiles, error paths."""

import numpy as np
import pytest

from repro.corba import (
    MICO,
    OMNIORB3,
    OMNIORB4,
    ORBACUS,
    CorbaError,
    Orb,
    SystemException,
    compile_idl,
)
from repro.corba.idl.types import UserExceptionBase

from tests.corba.conftest import DEMO_IDL, make_adder_servant


def _setup(rt, client_profile=OMNIORB4, server_profile=OMNIORB4,
           server_host="a0", client_host="a1"):
    server = rt.create_process(server_host, "server")
    client = rt.create_process(client_host, "client")
    s_orb = Orb(server, server_profile, compile_idl(DEMO_IDL))
    s_orb.start()
    c_orb = Orb(client, client_profile, compile_idl(DEMO_IDL))
    servant = make_adder_servant(s_orb)
    ref = s_orb.poa.activate_object(servant)
    url = s_orb.object_to_string(ref)
    return server, client, s_orb, c_orb, servant, url


def _run_client(rt, client_process, c_orb, url, body):
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        body(proc, stub, out)

    client_process.spawn(main)
    rt.run()
    return out


def test_basic_invocation(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        out["sum"] = stub.add(20, 22)
        out["greet"] = stub.greet("grid")

    out = _run_client(runtime, client, c_orb, url, body)
    assert out == {"sum": 42, "greet": "hello grid"}
    assert servant.calls == 2


def test_struct_and_sequence_arguments(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)
    point = c_orb.idl.type("Demo::Point")

    def body(proc, stub, out):
        out["dot"] = stub.dot(np.array([1.0, 2.0, 3.0]),
                              np.array([4.0, 5.0, 6.0]))
        moved = stub.translate(point.make(x=1.0, y=2.0), 0.5, -0.5)
        out["moved"] = (moved.x, moved.y)

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["dot"] == pytest.approx(32.0)
    assert out["moved"] == (1.5, 1.5)


def test_out_parameters(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        out["qr"] = stub.divide(17, 5)

    assert _run_client(runtime, client, c_orb, url, body)["qr"] == (3, 2)


def test_user_exception_propagates(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        try:
            stub.divide(1, 0)
        except UserExceptionBase as e:
            out["exc"] = (type(e).__name__, e.why, e.code)

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["exc"] == ("Oops", "division by zero", -1)


def test_attributes_via_giop(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        out["label"] = stub.label
        stub.label = "renamed"
        out["label2"] = stub.label
        out["calls"] = stub.calls

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["label"] == "adder"
    assert out["label2"] == "renamed"
    assert servant.label == "renamed"


def test_readonly_attribute_rejects_set(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        with pytest.raises(AttributeError):
            stub.calls = 7
        out["done"] = True

    assert _run_client(runtime, client, c_orb, url, body)["done"]


def test_oneway_returns_before_delivery(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        stub.add(0, 0)  # warm up the connection
        t0 = runtime.kernel.now
        stub.notify("fire and forget")
        out["elapsed"] = runtime.kernel.now - t0
        proc.sleep(0.01)  # let it arrive
        out["delivered"] = list(servant.notifications)

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["delivered"] == ["fire and forget"]
    # oneway pays the send path but never waits for a reply: it still
    # costs wire time in our blocking transport, but no server turnaround
    assert out["elapsed"] < 30e-6


def test_is_a_and_narrow(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        out["is_adder"] = stub._is_a("IDL:Demo/Adder:1.0")
        out["is_other"] = stub._is_a("IDL:Demo/Registry:1.0")
        renarrowed = stub._narrow("Demo::Adder")
        out["sum"] = renarrowed.add(1, 2)

    out = _run_client(runtime, client, c_orb, url, body)
    assert out == {"is_adder": True, "is_other": False, "sum": 3}


def test_object_reference_as_argument(runtime):
    """Registry stores and returns Adder references (IOR round-trip)."""
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    class RegistryImpl(s_orb.servant_base("Demo::Registry")):
        def __init__(self):
            self.table = {}

        def register(self, name, who):
            self.table[name] = who

        def find(self, name):
            if name not in self.table:
                raise s_orb.idl.type("Demo::Oops").make(
                    why=f"{name} unknown", code=404)
            return self.table[name]

    reg_url = s_orb.object_to_string(
        s_orb.poa.activate_object(RegistryImpl()))

    def body(proc, stub, out):
        registry = c_orb.string_to_object(reg_url)
        registry.register("the-adder", stub)
        found = registry.find("the-adder")
        out["sum"] = found.add(5, 6)
        try:
            registry.find("ghost")
        except UserExceptionBase as e:
            out["code"] = e.code

    out = _run_client(runtime, client, c_orb, url, body)
    assert out == {"sum": 11, "code": 404}


def test_object_not_exist(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        s_orb.poa.deactivate_object(stub.ior.object_key)
        try:
            stub.add(1, 1)
        except SystemException as e:
            out["minor"] = e.minor

    assert _run_client(runtime, client, c_orb, url, body)["minor"] == \
        "OBJECT_NOT_EXIST"


def test_servant_bug_becomes_unknown(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)
    servant.add = lambda a, b: 1 / 0  # sabotage

    def body(proc, stub, out):
        try:
            stub.add(1, 1)
        except SystemException as e:
            out["minor"] = e.minor
            out["detail"] = e.detail

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["minor"] == "UNKNOWN"
    assert "ZeroDivisionError" in out["detail"]


def test_wrong_arity_rejected_locally(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        with pytest.raises(CorbaError):
            stub.add(1)
        out["ok"] = True

    assert _run_client(runtime, client, c_orb, url, body)["ok"]


def test_collocated_invocation_short_circuits(runtime):
    """Same-process calls skip GIOP entirely (collocation optimisation)."""
    server = runtime.create_process("a0", "server")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL))
    s_orb.start()
    servant = make_adder_servant(s_orb)
    ref = s_orb.poa.activate_object(servant)
    out = {}

    def main(proc):
        t0 = runtime.kernel.now
        out["sum"] = ref.add(1, 2)
        out["elapsed"] = runtime.kernel.now - t0

    server.spawn(main)
    runtime.run()
    assert out["sum"] == 3
    assert out["elapsed"] == pytest.approx(OMNIORB4.collocated_overhead)


def test_two_orbs_cohabitate_in_one_process(runtime):
    """The paper's §4.3.4 claim: several middleware systems (here two
    different ORB products) coexist in one PadicoTM process."""
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb1 = Orb(server, OMNIORB4, compile_idl(DEMO_IDL))
    s_orb2 = Orb(server, MICO, compile_idl(DEMO_IDL))
    s_orb1.start()
    s_orb2.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(DEMO_IDL))
    url1 = s_orb1.object_to_string(
        s_orb1.poa.activate_object(make_adder_servant(s_orb1)))
    url2 = s_orb2.object_to_string(
        s_orb2.poa.activate_object(make_adder_servant(s_orb2)))
    out = {}

    def main(proc):
        out["via_omni"] = c_orb.string_to_object(url1).add(1, 1)
        out["via_mico"] = c_orb.string_to_object(url2).add(2, 2)

    client.spawn(main)
    runtime.run()
    assert out == {"via_omni": 2, "via_mico": 4}
    assert server.modules.is_loaded("corba/omniORB-4.0.0")
    assert server.modules.is_loaded("corba/Mico-2.3.7")


@pytest.mark.parametrize("profile,expected_us", [
    (OMNIORB3, 20.0),
    (OMNIORB4, 19.0),
    (ORBACUS, 54.0),
    (MICO, 62.0),
])
def test_one_way_latency_matches_paper(runtime, profile, expected_us):
    """§4.4 latency calibration: one-way empty invocation over Myrinet."""
    server, client, s_orb, c_orb, servant, url = _setup(
        runtime, client_profile=profile, server_profile=profile)

    def body(proc, stub, out):
        stub.add(0, 0)  # warm up the connection
        t0 = runtime.kernel.now
        stub.add(1, 1)
        out["rtt"] = runtime.kernel.now - t0

    out = _run_client(runtime, client, c_orb, url, body)
    one_way = out["rtt"] / 2 * 1e6
    # the reply carries a small result (no request header), so the two
    # directions are not exactly symmetric: allow 15%
    assert one_way == pytest.approx(expected_us, rel=0.15)


def test_corba_reaches_myrinet_bandwidth_with_omniorb(runtime):
    """Figure 7 headline: omniORB over PadicoTM ≈ 240 MB/s."""
    server, client, s_orb, c_orb, servant, url = _setup(runtime)
    n = 3_000_000  # 24 MB of doubles

    def body(proc, stub, out):
        u = np.zeros(n)
        stub.dot(u[:1], u[:1])  # connection warm-up
        t0 = runtime.kernel.now
        stub.dot(u, u)
        elapsed = runtime.kernel.now - t0
        out["bw"] = 2 * u.nbytes / elapsed  # two vectors per call

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["bw"] / 1e6 == pytest.approx(240, rel=0.03)


def test_mico_bandwidth_limited_by_copies(runtime):
    """Figure 7: Mico peaks near 55 MB/s because it copies on both sides."""
    server, client, s_orb, c_orb, servant, url = _setup(
        runtime, client_profile=MICO, server_profile=MICO)
    n = 1_000_000

    def body(proc, stub, out):
        u = np.zeros(n)
        stub.dot(u[:1], u[:1])
        t0 = runtime.kernel.now
        stub.dot(u, u)
        out["bw"] = 2 * u.nbytes / (runtime.kernel.now - t0)

    out = _run_client(runtime, client, c_orb, url, body)
    assert out["bw"] / 1e6 == pytest.approx(55, rel=0.05)


def test_invocation_outside_sim_thread_rejected(runtime):
    server, client, s_orb, c_orb, servant, url = _setup(runtime)
    stub = c_orb.string_to_object(url)
    with pytest.raises(CorbaError):
        stub.add(1, 2)  # no simulated thread context


def test_non_existent_liveness_probe(runtime):
    """CORBA `_non_existent`: liveness without OBJECT_NOT_EXIST noise."""
    server, client, s_orb, c_orb, servant, url = _setup(runtime)

    def body(proc, stub, out):
        out["alive"] = stub._non_existent()
        s_orb.poa.deactivate_object(stub.ior.object_key)
        out["gone"] = stub._non_existent()

    out = _run_client(runtime, client, c_orb, url, body)
    assert out == {"alive": False, "gone": True}
