"""ESIOP: the environment-specific protocol (§4.4 improvement path)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.corba import esiop, giop
from repro.corba.cdr import CdrError, CdrInputStream, CdrOutputStream

from tests.corba.conftest import DEMO_IDL, make_adder_servant


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.integers(0, 15), st.integers(0, esiop.MAX_BODY))
def test_esiop_header_roundtrip(msg_type, size):
    header = esiop.pack_header(msg_type, size)
    assert len(header) == esiop.HEADER_SIZE
    m, s, little, version = esiop.parse_header(header)
    assert (m, s, little) == (msg_type, size, True)
    assert version == (1, 0)


@settings(max_examples=100, deadline=None)
@given(st.integers(0, 6), st.integers(0, 2**32 - 1), st.booleans())
def test_giop_header_roundtrip(msg_type, size, little):
    header = giop.pack_header(msg_type, size, little)
    m, s, l, version = giop.parse_header(header)
    assert (m, s, l) == (msg_type, size, little)
    assert version == (1, 0)


def test_esiop_rejects_oversize_and_big_endian():
    with pytest.raises(CdrError):
        esiop.pack_header(0, esiop.MAX_BODY + 1)
    with pytest.raises(CdrError):
        esiop.pack_header(0, 10, little_endian=False)
    with pytest.raises(CdrError):
        esiop.parse_header(b"GIOP" + bytes(4))


def test_esiop_request_header_smaller_than_giop():
    def encode(module):
        out = CdrOutputStream()
        module.start_request(out, 7, "object-key", "operation", True)
        return out.getvalue()

    assert len(encode(esiop)) < len(encode(giop))
    # round-trips (empty principal)
    inp = CdrInputStream(encode(esiop))
    assert esiop.read_request(inp) == \
        (7, True, "object-key", "operation", "")


def test_esiop_reply_roundtrip():
    out = CdrOutputStream()
    esiop.start_reply(out, 42, esiop.REPLY_USER_EXCEPTION)
    rid, status = esiop.read_reply(CdrInputStream(out.getvalue()))
    assert (rid, status) == (42, esiop.REPLY_USER_EXCEPTION)


# ---------------------------------------------------------------------------
# end-to-end
# ---------------------------------------------------------------------------

def _latency(runtime, protocol, hosts=("a0", "a1")):
    server = runtime.create_process(hosts[0], f"server-{protocol}")
    client = runtime.create_process(hosts[1], f"client-{protocol}")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL), protocol=protocol)
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(DEMO_IDL), protocol=protocol)
    servant = make_adder_servant(s_orb)
    url = s_orb.object_to_string(s_orb.poa.activate_object(servant))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        assert stub.add(20, 22) == 42   # full semantics preserved
        t0 = runtime.kernel.now
        stub.add(1, 1)
        out["one_way_us"] = (runtime.kernel.now - t0) / 2 * 1e6

    client.spawn(main)
    runtime.run()
    return out["one_way_us"]


def test_esiop_lowers_latency_below_giop(runtime):
    giop_lat = _latency(runtime, "giop", hosts=("a0", "a1"))
    esiop_lat = _latency(runtime, "esiop", hosts=("a2", "a3"))
    # paper: GIOP/omniORB ≈ 20 µs; ESIOP should approach MPI's 11 µs
    assert giop_lat == pytest.approx(19.0, rel=0.1)
    assert esiop_lat < giop_lat - 2.0
    assert esiop_lat < 16.0
    assert esiop_lat > 11.0  # the wire still costs 11 µs


def test_esiop_full_semantics(runtime):
    """Exceptions, attributes, out-params all survive the lean wire."""
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(DEMO_IDL), protocol="esiop")
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(DEMO_IDL), protocol="esiop")
    servant = make_adder_servant(s_orb)
    url = s_orb.object_to_string(s_orb.poa.activate_object(servant))
    out = {}

    def main(proc):
        from repro.corba.idl.types import UserExceptionBase

        stub = c_orb.string_to_object(url)
        out["div"] = stub.divide(17, 5)
        stub.label = "esiop"
        out["label"] = stub.label
        try:
            stub.divide(1, 0)
        except UserExceptionBase as e:
            out["exc"] = e.why

    client.spawn(main)
    runtime.run()
    assert out == {"div": (3, 2), "label": "esiop",
                   "exc": "division by zero"}


def test_unknown_protocol_rejected(runtime):
    from repro.corba import CorbaError

    p = runtime.create_process("a0", "p")
    with pytest.raises(CorbaError):
        Orb(p, OMNIORB4, protocol="carrier-pigeon")
