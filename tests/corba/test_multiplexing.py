"""Connection multiplexing: concurrent requests share one connection."""

import pytest

from repro.corba import OMNIORB4, Orb, compile_idl

IDL = """
interface Slow {
    double work(in double seconds, in long tag);
};
"""


def test_concurrent_requests_one_connection(runtime):
    """Three client threads fire long-running requests at one servant.

    The multiplexed connection keeps all three requests in flight and
    the server's thread-per-request dispatch runs the servant bodies
    concurrently: total time ≈ one service time, not three."""
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

    class Slow(s_orb.servant_base("Slow")):
        def work(self, seconds, tag):
            runtime.kernel.current.sleep(seconds)
            return float(tag)

    url = s_orb.object_to_string(s_orb.poa.activate_object(Slow()))
    results = {}

    def warmup(proc):
        stub = c_orb.string_to_object(url)
        stub.work(0.0, 0)
        # now fire three concurrent 10ms requests
        workers = [client.spawn(make_worker(stub, i), name=f"w{i}")
                   for i in range(3)]
        t0 = runtime.kernel.now
        for w in workers:
            proc.join(w)
        results["elapsed"] = runtime.kernel.now - t0
        results["conns"] = len(c_orb._connections)

    def make_worker(stub, i):
        def worker(proc):
            results[i] = stub.work(0.010, i)
        return worker

    client.spawn(warmup)
    runtime.run()
    assert [results[i] for i in range(3)] == [0.0, 1.0, 2.0]
    assert results["conns"] == 1  # one shared connection
    # fully overlapped: just over ONE 10 ms service time, not three
    assert results["elapsed"] < 0.012


def test_interleaved_replies_demultiplex_correctly(runtime):
    """Out-of-order completion: a fast request issued after a slow one
    still gets its own reply (ids must not cross)."""
    server = runtime.create_process("a0", "server")
    client = runtime.create_process("a1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

    class Slow(s_orb.servant_base("Slow")):
        def work(self, seconds, tag):
            runtime.kernel.current.sleep(seconds)
            return float(tag)

    url = s_orb.object_to_string(s_orb.poa.activate_object(Slow()))
    order = []

    def main(proc):
        stub = c_orb.string_to_object(url)
        stub.work(0.0, 0)

        def slow(p):
            order.append(("slow", stub.work(0.020, 111)))

        def fast(p):
            p.sleep(0.001)
            order.append(("fast", stub.work(0.001, 222)))

        ws = [client.spawn(slow, name="slow"),
              client.spawn(fast, name="fast")]
        for w in ws:
            proc.join(w)

    client.spawn(main)
    runtime.run()
    # concurrent dispatch: the fast request overtakes the slow one and
    # each caller still gets the value matching its own request id
    assert dict(order) == {"slow": 111.0, "fast": 222.0}
    assert order[0][0] == "fast"  # out-of-order completion happened
