"""IORs and ORB cost profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba import MICO, OMNIORB3, OMNIORB4, ORBACUS
from repro.corba.ior import IOR
from repro.corba.profiles import ALL_PROFILES, OPENCCM_JAVA

_name = st.text(
    alphabet=st.characters(blacklist_characters=":/#",
                           blacklist_categories=("Cs", "Cc", "Zs")),
    min_size=1, max_size=24)


@settings(max_examples=200, deadline=None)
@given(_name, _name, _name, st.text(min_size=1, max_size=40).filter(
    lambda s: "#" not in s))
def test_ior_stringify_roundtrip(process, port, key, type_id):
    ior = IOR(type_id, process, port, key)
    assert IOR.destringify(ior.stringify()) == ior


def test_ior_rejects_delimiters_in_address_fields():
    for bad in ("a:b", "a/b", "a#b"):
        with pytest.raises(ValueError):
            IOR("IDL:X:1.0", bad, "port", "key")
        with pytest.raises(ValueError):
            IOR("IDL:X:1.0", "proc", bad, "key")
        with pytest.raises(ValueError):
            IOR("IDL:X:1.0", "proc", "port", bad)


@pytest.mark.parametrize("text", [
    "not-a-corbaloc", "corbaloc:padico:", "corbaloc:padico:p:q",
    "corbaloc:padico:p:q/k",  # missing type anchor
])
def test_destringify_rejects_malformed(text):
    with pytest.raises(ValueError):
        IOR.destringify(text)


def test_profile_inventory_and_keys():
    keys = {p.key for p in ALL_PROFILES}
    assert keys == {"omniORB-3.0.2", "omniORB-4.0.0", "Mico-2.3.7",
                    "ORBacus-4.0.5", "OpenCCM-0.4-java"}


def test_zero_copy_profiles_have_no_copy_cost():
    for p in (OMNIORB3, OMNIORB4):
        assert p.zero_copy
        assert p.marshal_cost(1e6) == 0.0
        assert p.unmarshal_cost(1e6) == 0.0


def test_copying_profiles_charge_both_sides():
    for p in (MICO, ORBACUS, OPENCCM_JAVA):
        assert not p.zero_copy
        assert p.marshal_cost(1e6) > 0
        assert p.unmarshal_cost(1e6) == p.copy_cost_per_byte * 1e6


def test_profile_latency_ordering_matches_paper():
    def one_way(p):
        return p.client_overhead + p.server_overhead

    assert one_way(OMNIORB4) < one_way(OMNIORB3) < one_way(ORBACUS) \
        < one_way(MICO) < one_way(OPENCCM_JAVA)


def test_peak_bandwidth_formula():
    """1 / (2·copy_cost + 1/240e6) reproduces the Figure-7 plateaus."""
    for profile, paper in ((MICO, 55.0), (ORBACUS, 63.0)):
        peak = 1 / (2 * profile.copy_cost_per_byte + 1 / 240e6) / 1e6
        assert peak == pytest.approx(paper, rel=0.01)
