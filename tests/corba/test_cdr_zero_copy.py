"""Property tests for the zero-copy CDR wire discipline.

The zero-copy contract is purely about *how* the octets are produced,
never *which* octets: ``CdrOutputStream(zero_copy=True)`` +
:class:`WireBuffer` must emit byte-identical CDR to the copying
discipline for every IDL type and both byte orders, and
``CdrInputStream`` reading directly over the segment list must decode
values equal to a read over the joined contiguous bytes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corba.cdr import (
    CdrError,
    CdrInputStream,
    CdrOutputStream,
    WireBuffer,
    decode_value,
    encode_value,
)
from repro.corba.idl.types import (
    ArrayType,
    PrimitiveType,
    SequenceType,
    StringType,
    StructType,
)

#: a tiny threshold so even small generated sequences exercise the
#: reference-segment (rendezvous) path
TINY_THRESHOLD = 8

_INT_KINDS = {
    "short": (-2**15, 2**15 - 1),
    "unsigned short": (0, 2**16 - 1),
    "long": (-2**31, 2**31 - 1),
    "unsigned long": (0, 2**32 - 1),
    "long long": (-2**63, 2**63 - 1),
    "unsigned long long": (0, 2**64 - 1),
}

_NUMERIC_KINDS = list(_INT_KINDS) + ["float", "double"]


def _scalar_values(kind: str):
    if kind in _INT_KINDS:
        lo, hi = _INT_KINDS[kind]
        return st.integers(lo, hi)
    if kind == "float":
        return st.floats(allow_nan=False, allow_infinity=False, width=32)
    if kind == "double":
        return st.floats(allow_nan=False, allow_infinity=False)
    if kind == "boolean":
        return st.booleans()
    if kind == "char":
        return st.integers(0, 255).map(chr)
    if kind == "octet":
        return st.integers(0, 255)
    raise AssertionError(kind)


@st.composite
def _numeric_sequences(draw):
    """(SequenceType, value) for a bulk numeric sequence."""
    kind = draw(st.sampled_from(_NUMERIC_KINDS))
    elems = draw(st.lists(_scalar_values(kind), max_size=64))
    t = SequenceType(PrimitiveType(kind))
    if draw(st.booleans()):
        order = "<" if draw(st.booleans()) else ">"
        return t, np.array(elems, dtype=order + PrimitiveType(kind).dtype)
    return t, elems


@st.composite
def _typed_values(draw, depth=2):
    """(IdlType, value) pairs over the bulk-relevant corner of IDL."""
    options = ["prim", "string", "octet_seq", "numeric_seq", "array"]
    if depth > 0:
        options += ["nested_seq", "struct", "string_seq"]
    kind = draw(st.sampled_from(options))
    if kind == "prim":
        k = draw(st.sampled_from(_NUMERIC_KINDS + ["boolean", "char",
                                                   "octet"]))
        return PrimitiveType(k), draw(_scalar_values(k))
    if kind == "string":
        return StringType(), draw(st.text(max_size=32))
    if kind == "octet_seq":
        return (SequenceType(PrimitiveType("octet")),
                draw(st.binary(max_size=64)))
    if kind == "numeric_seq":
        return draw(_numeric_sequences())
    if kind == "array":
        k = draw(st.sampled_from(_NUMERIC_KINDS))
        elems = draw(st.lists(_scalar_values(k), min_size=1, max_size=16))
        return ArrayType(PrimitiveType(k), len(elems)), elems
    if kind == "nested_seq":
        inner_t, rows = draw(st.lists(_numeric_sequences(), max_size=4)
                             .filter(lambda rs: len({t for t, _ in rs}) <= 1)
                             .map(lambda rs: (rs[0][0] if rs else
                                              SequenceType(
                                                  PrimitiveType("long")),
                                              [v for _, v in rs])))
        return SequenceType(inner_t), rows
    if kind == "string_seq":
        return (SequenceType(StringType()),
                draw(st.lists(st.text(max_size=16), max_size=8)))
    # struct of a few simpler members
    members = draw(st.lists(_typed_values(depth=depth - 1),
                            min_size=1, max_size=4))
    t = StructType("S", "Test::S",
                   [(f"f{i}", mt) for i, (mt, _v) in enumerate(members)])
    return t, t.make(**{f"f{i}": v for i, (_mt, v) in enumerate(members)})


def _values_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, list) and isinstance(b, list):
        return (len(a) == len(b)
                and all(_values_equal(x, y) for x, y in zip(a, b)))
    if hasattr(a, "_struct_type") and hasattr(b, "_struct_type"):
        return (a._struct_type == b._struct_type
                and all(_values_equal(getattr(a, f), getattr(b, f))
                        for f, _t in a._struct_type.fields))
    return a == b


def _encode(t, value, *, little_endian, zero_copy):
    out = CdrOutputStream(little_endian=little_endian, zero_copy=zero_copy,
                          threshold=TINY_THRESHOLD)
    encode_value(out, t, value)
    return out


@settings(max_examples=300, deadline=None)
@given(_typed_values(), st.booleans())
def test_zero_copy_octets_identical(tv, little_endian):
    """zero_copy=True emits exactly the octets of the copying mode."""
    t, value = tv
    copied = _encode(t, value, little_endian=little_endian, zero_copy=False)
    zero = _encode(t, value, little_endian=little_endian, zero_copy=True)
    wire = zero.getbuffer()
    assert isinstance(wire, WireBuffer)
    assert wire.nbytes == len(copied.getvalue())
    assert wire.getvalue() == copied.getvalue()
    # and the join cache on the zero-copy stream agrees with its buffer
    assert zero.getvalue() == copied.getvalue()


@settings(max_examples=300, deadline=None)
@given(_typed_values(), st.booleans())
def test_decode_over_segments_equals_contiguous(tv, little_endian):
    """CdrInputStream over a segment list decodes the same values."""
    t, value = tv
    zero = _encode(t, value, little_endian=little_endian, zero_copy=True)
    wire = zero.getbuffer()
    seg_inp = CdrInputStream(wire, little_endian=little_endian)
    flat_inp = CdrInputStream(wire.getvalue(), little_endian=little_endian)
    from_segments = decode_value(seg_inp, t)
    from_flat = decode_value(flat_inp, t)
    assert _values_equal(from_segments, from_flat)
    assert seg_inp.remaining == 0
    assert flat_inp.remaining == 0


@settings(max_examples=200, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=24), max_size=8),
       st.data())
def test_straddling_reads_join_correctly(chunks, data):
    """Arbitrary reads over arbitrary segmentation equal the flat bytes."""
    wire = WireBuffer([memoryview(c) for c in chunks])
    flat = wire.getvalue()
    inp = CdrInputStream(wire)
    pos = 0
    while pos < len(flat):
        n = data.draw(st.integers(1, min(7, len(flat) - pos)))
        got = inp._take(n)
        assert bytes(got) == flat[pos:pos + n]
        pos += n
    assert inp.remaining == 0


# ---------------------------------------------------------------------------
# WireBuffer unit behaviour
# ---------------------------------------------------------------------------

def test_wirebuffer_nbytes_len_and_lazy_join():
    arr = np.arange(64, dtype=np.int64)
    wb = WireBuffer([b"head", memoryview(arr).cast("B"), b"tail"])
    assert wb.nbytes == 4 + arr.nbytes + 4
    assert len(wb) == wb.nbytes
    joined = wb.getvalue()
    assert joined == b"head" + arr.tobytes() + b"tail"
    assert wb.getvalue() is joined  # cached, not re-joined
    assert bytes(wb) == joined
    assert "segments=3" in repr(wb)


def test_wirebuffer_segments_reference_caller_memory():
    arr = np.zeros(32, dtype=np.uint8)
    out = CdrOutputStream(zero_copy=True, threshold=8)
    out.write_bulk(arr)
    wb = out.getbuffer()
    view = [s for s in wb.segments if isinstance(s, memoryview)][0]
    arr[:] = 7  # mutating the caller's array is visible through the wire
    assert bytes(view) == bytes(arr)


def test_getbuffer_does_not_count_copies():
    arr = np.arange(1024, dtype=np.float64)
    out = CdrOutputStream(zero_copy=True, threshold=8)
    encode_value(out, SequenceType(PrimitiveType("double")), arr)
    copied_before = out.copied_bytes
    wb = out.getbuffer()
    assert out.copied_bytes == copied_before  # flush is not a copy
    assert out.referenced_bytes == arr.nbytes
    wb.getvalue()
    assert out.copied_bytes == copied_before  # lazy join is uncounted


def test_eager_below_threshold_copies_and_counts():
    arr = np.arange(4, dtype=np.uint8)
    out = CdrOutputStream(zero_copy=True, threshold=256)
    out.write_bulk(arr)
    assert out.referenced_bytes == 0
    assert out.copied_bytes == arr.nbytes
    # eager payload is copied: later mutation must NOT be visible
    wire = out.getbuffer()
    arr[:] = 9
    assert wire.getvalue() == bytes(range(4))


def test_read_bulk_counts_referenced_not_copied():
    payload = bytes(range(256))
    inp = CdrInputStream(WireBuffer([payload]))
    view = inp.read_bulk(256)
    assert bytes(view) == payload
    assert inp.referenced_bytes == 256
    assert inp.copied_bytes == 0


def test_read_bulk_copy_counts_one_copy():
    payload = bytes(range(64))
    inp = CdrInputStream(payload)
    out = inp.read_bulk_copy(64)
    assert out == payload
    assert isinstance(out, bytes)
    assert inp.copied_bytes == 64
    assert inp.referenced_bytes == 0


def test_straddling_read_is_metered_once():
    wire = WireBuffer([b"\x01" * 6, b"\x02" * 6])
    inp = CdrInputStream(wire)
    inp.read_bulk(4)           # within first segment: referenced
    joined = inp.read_bulk(4)  # straddles the boundary: copied
    assert bytes(joined) == b"\x01\x01\x02\x02"
    assert inp.copied_bytes == 4
    assert inp.referenced_bytes == 4


def test_truncated_stream_raises():
    inp = CdrInputStream(WireBuffer([b"abc", b"de"]))
    inp.read_bulk(3)
    try:
        inp.read_bulk(3)
    except CdrError as exc:
        assert "truncated" in str(exc)
    else:
        raise AssertionError("expected CdrError")


def test_empty_wirebuffer_decodes_nothing():
    inp = CdrInputStream(WireBuffer([]))
    assert inp.remaining == 0
    assert bytes(inp.read_bulk(0)) == b""
