"""Zero-perturbation guarantees: the sanitizer must not change what the
simulation *does* — only observe it — and must be entirely absent by
default."""

from repro.sanitizer import Sanitizer
from repro.sim.kernel import SimKernel
from repro.sim.sync import Mailbox, SimBarrier, SimLock


def _workload(kernel, san=None):
    """A representative mixed workload: locks, barrier, mailbox, sleeps."""
    lock = SimLock(kernel)
    barrier = SimBarrier(kernel, 3)
    box = Mailbox(kernel, capacity=2)
    state = {"counter": 0, "log": []}
    shared = san.tracked(state, label="bench") if san else state

    def worker(p, ident):
        for i in range(4):
            p.sleep(0.001 * (ident + 1))
            lock.acquire(p)
            shared["counter"] = shared["counter"] + 1
            lock.release(p)
            box.put(p, (ident, i))
        barrier.wait(p)

    def drain(p):
        for _ in range(8):
            box.get(p)
        barrier.wait(p)

    for ident in range(2):
        kernel.spawn(worker, ident, name=f"w{ident}")
    kernel.spawn(drain, name="drain")
    kernel.run()
    return state["counter"], kernel.now, kernel.events_processed


def test_instrumented_run_matches_plain_run_exactly():
    plain_kernel = SimKernel()
    with plain_kernel:
        plain = _workload(plain_kernel)

    sane_kernel = SimKernel()
    with sane_kernel:
        san = Sanitizer(sane_kernel)
        instrumented = _workload(sane_kernel, san)

    # same result, same simulated time, same event count, bit for bit:
    # observation must never perturb the schedule
    assert instrumented == plain
    assert san.races == []


def test_sanitizer_hooks_are_absent_by_default():
    kernel = SimKernel()
    assert kernel.tracer is None
    assert kernel.seed is None
    timer = kernel.schedule(1.0, lambda: None)
    # no seed -> canonical (time, seq) order: shuffle key stays zero
    assert timer.shuffle == 0
    assert timer.trace_clock is None


def test_uninstalled_sanitizer_leaves_no_residue():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    san.uninstall()
    with kernel:
        result = _workload(kernel)
    assert result[0] == 8  # 2 workers x 4 increments
    assert kernel.tracer is None
