"""Backend matrix for the sanitizer tests.

The dynamic sanitizer (race detector, typestate monitors, schedule
exploration) instruments the kernel through the tracer hooks, which the
switch backends must keep semantics-identical; running the whole
directory under each available general-purpose backend pins that.
"""

import pytest

from repro.sim.backends import BACKEND_ENV_VAR, available_backends

_MATRIX = [
    pytest.param("thread", id="thread"),
    pytest.param(
        "greenlet", id="greenlet",
        marks=pytest.mark.skipif(
            "greenlet" not in available_backends(),
            reason="greenlet package not installed (repro[sim-fast])")),
]


@pytest.fixture(autouse=True, params=_MATRIX)
def sim_backend(request, monkeypatch):
    """Select the switch backend for every kernel the test constructs."""
    monkeypatch.setenv(BACKEND_ENV_VAR, request.param)
    return request.param
