"""Seeded schedule exploration: determinism proofs and seed-stamped
divergence, plus exact replayability of every seeded schedule."""

import pytest

from repro.sanitizer import (
    ScheduleDivergenceError,
    assert_schedule_deterministic,
    explore_schedules,
    run_scenario,
)
from repro.sanitizer.explore import main as explore_main, smoke_scenario
from repro.sim.kernel import SimKernel
from repro.sim.sync import Mailbox, SimLock


def _racy_scenario(kernel):
    shared = {"x": 0}

    def bump(p):
        tmp = shared["x"]
        p.yield_()
        shared["x"] = tmp + 1

    kernel.spawn(bump, name="a")
    kernel.spawn(bump, name="b")
    kernel.run()
    return shared["x"]


def _locked_scenario(kernel):
    lock = SimLock(kernel)
    shared = {"x": 0}

    def bump(p):
        lock.acquire(p)
        tmp = shared["x"]
        p.yield_()
        shared["x"] = tmp + 1
        lock.release(p)

    kernel.spawn(bump, name="a")
    kernel.spawn(bump, name="b")
    kernel.run()
    return shared["x"]


def test_smoke_scenario_is_schedule_invariant():
    report = assert_schedule_deterministic(smoke_scenario, seeds=5)
    assert len(report.runs) == 5
    assert report.deterministic


def test_locked_scenario_is_schedule_invariant():
    report = assert_schedule_deterministic(_locked_scenario, seeds=5)
    assert all(r.fingerprint[0] == "2" for r in report.runs)


def test_racy_scenario_diverges_with_seed_stamped_failure():
    with pytest.raises(ScheduleDivergenceError) as info:
        assert_schedule_deterministic(_racy_scenario, seeds=5)
    message = str(info.value)
    assert "replay with SimKernel(seed=" in message
    assert info.value.report.divergent


def test_divergent_seed_replays_bit_for_bit():
    report = explore_schedules(_racy_scenario, seeds=5)
    assert report.divergent, "the racy scenario must diverge somewhere"
    bad = report.divergent[0]
    replay = run_scenario(_racy_scenario, seed=bad.seed)
    assert replay.fingerprint == bad.fingerprint
    assert replay.events == bad.events


def test_unseeded_kernel_keeps_canonical_order():
    first = run_scenario(_racy_scenario, seed=None)
    second = run_scenario(_racy_scenario, seed=None)
    assert first.fingerprint == second.fingerprint
    assert first.events == second.events


def test_explicit_seed_sequence_is_respected():
    report = explore_schedules(_locked_scenario, seeds=[7, 99])
    assert [r.seed for r in report.runs] == [7, 99]
    assert report.baseline.seed is None


def test_crash_is_a_first_class_fingerprint():
    def crashing(kernel):
        def boom(p):
            raise ValueError("deliberate")

        kernel.spawn(boom, name="boom")
        kernel.run()

    run = run_scenario(crashing)
    assert run.error is not None
    assert "deliberate" in run.fingerprint[0]


def test_seeded_kernels_reorder_same_instant_events_only():
    def stamps(kernel):
        order = []

        def leg(p, tag):
            p.sleep(0.5 if tag == "late" else 0.0)
            order.append(tag)

        kernel.spawn(leg, "early-1", name="e1")
        kernel.spawn(leg, "early-2", name="e2")
        kernel.spawn(leg, "late", name="l")
        kernel.run()
        return order

    for seed in (None, 1, 2, 3):
        order = run_scenario(stamps, seed=seed).fingerprint[0]
        # virtual-time ordering is inviolable: "late" is always last
        assert order.endswith("'late']")


def test_cli_smoke_exits_zero(capsys):
    assert explore_main(["--seeds", "3"]) == 0
    out = capsys.readouterr().out
    assert "bit-identical" in out


def test_mailbox_fifo_under_every_seed():
    def fifo(kernel):
        box = Mailbox(kernel)
        got = []

        def producer(p):
            for i in range(5):
                box.put(p, i)
                p.sleep(0.001)

        def consumer(p):
            for _ in range(5):
                got.append(box.get(p))

        kernel.spawn(producer, name="prod")
        kernel.spawn(consumer, name="cons")
        kernel.run()
        return got

    report = assert_schedule_deterministic(fifo, seeds=5)
    assert report.baseline.fingerprint[0] == "[0, 1, 2, 3, 4]"
