"""Runtime typestate monitor: the VLink/Circuit lifecycle DFA enforced
on a live runtime, plus claim balancing on the arbitration core."""

import pytest

from repro.net import Topology, build_cluster
from repro.net.devices import DISTRIBUTED
from repro.padicotm import PadicoRuntime
from repro.padicotm.abstraction.circuit import Circuit
from repro.padicotm.abstraction.selector import select_pair_fabric
from repro.padicotm.abstraction.vlink import VLink, VLinkEndpoint
from repro.sanitizer import Sanitizer, TypestateError, TypestateMonitor


@pytest.fixture()
def monitored_runtime():
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)
    san = Sanitizer(runtime=rt)
    yield rt, san
    rt.shutdown()


def test_happy_path_echo_records_no_violations(monitored_runtime):
    rt, san = monitored_runtime
    p0 = rt.create_process("a0", "server")
    p1 = rt.create_process("a1", "client")
    got = {}

    def server(sp):
        listener = VLink.listen(p0, "echo")
        ep = listener.accept(sp)
        payload, nbytes = ep.recv(sp)
        ep.send(sp, payload, nbytes)
        ep.close()
        listener.close()

    def client(sp):
        ep = VLink.connect(sp, p1, "server", "echo")
        ep.send(sp, "ping", 64)
        got["reply"] = ep.recv(sp)
        ep.close()

    p0.spawn(server, name="srv")
    p1.spawn(client, name="cli", delay=1e-6)
    rt.kernel.run()
    assert got["reply"] == ("ping", 64)
    assert san.monitor.violations == []


def test_send_after_close_is_a_typestate_error(monitored_runtime):
    rt, san = monitored_runtime
    p0 = rt.create_process("a0", "server")
    p1 = rt.create_process("a1", "client")
    caught = {}

    def server(sp):
        listener = VLink.listen(p0, "x")
        ep = listener.accept(sp)
        ep.recv(sp)

    def client(sp):
        ep = VLink.connect(sp, p1, "server", "x")
        ep.send(sp, "one", 8)
        ep.close()
        with pytest.raises(TypestateError) as info:
            ep.send(sp, "two", 8)
        caught["msg"] = str(info.value)

    p0.spawn(server, name="srv", daemon=True)
    p1.spawn(client, name="cli", delay=1e-6)
    rt.kernel.run()
    assert "closed" in caught["msg"]
    assert len(san.monitor.violations) == 1


def test_send_before_connect_is_a_typestate_error(monitored_runtime):
    rt, san = monitored_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    choice = select_pair_fabric(rt.topology, "a0", "a1", DISTRIBUTED)
    raw = VLinkEndpoint(rt, p0, p1, choice)  # constructed, never connected

    def bad(sp):
        with pytest.raises(TypestateError) as info:
            raw.send(sp, "x", 8)
        assert "raw" in str(info.value)

    p0.spawn(bad, name="bad")
    rt.kernel.run()
    assert san.monitor.violations


def test_circuit_use_after_close_is_rejected(monitored_runtime):
    rt, san = monitored_runtime
    members = [rt.create_process(f"a{i}", f"m{i}") for i in range(2)]

    def ring(sp):
        circuit = Circuit.establish(rt, "ring", members)
        circuit.send(sp, 0, 1, "tok", 32)
        assert circuit.recv(sp, 1) == (0, "tok", 32)
        circuit.close()
        with pytest.raises(TypestateError):
            circuit.poll(0)

    members[0].spawn(ring, name="ring")
    rt.kernel.run()
    assert any("Circuit" in v for v in san.monitor.violations)


def test_circuit_close_is_enforced_even_without_monitor():
    topo = Topology()
    build_cluster(topo, "a", 2)
    with PadicoRuntime(topo) as rt:
        members = [rt.create_process(f"a{i}", f"m{i}") for i in range(2)]

        def ring(sp):
            circuit = Circuit.establish(rt, "ring", members)
            circuit.close()
            with pytest.raises(RuntimeError, match="closed"):
                circuit.send(sp, 0, 1, "x", 8)

        members[0].spawn(ring, name="ring")
        rt.kernel.run()


def test_double_bind_detected_by_monitor_directly():
    monitor = TypestateMonitor()
    monitor.on_bind("proc", "port-7", listener="L1")
    with pytest.raises(TypestateError, match="double bind"):
        monitor.on_bind("proc", "port-7", listener="L2")
    monitor.on_unbind("proc", "port-7")
    monitor.on_bind("proc", "port-7", listener="L3")  # rebind after close


def test_listener_close_unbinds_port(monitored_runtime):
    rt, san = monitored_runtime
    p0 = rt.create_process("a0", "server")
    listener = VLink.listen(p0, "reuse")
    listener.close()
    # after the unbind the same (process, port) may be bound again
    VLink.listen(p0, "reuse")
    assert san.monitor.violations == []


def test_claim_balance_tracked_through_arbitration(monitored_runtime):
    rt, san = monitored_runtime
    p0 = rt.create_process("a0", "legacy-host")
    p0.arbitration.claim_nic("a-san", "BIP", "legacy-mw",
                             cooperative=False)
    assert san.monitor.unreleased_claims() == \
        [("legacy-host", "legacy-mw", 1)]
    p0.arbitration.release_claims("legacy-mw")
    assert san.monitor.unreleased_claims() == []


def test_over_release_is_a_violation():
    monitor = TypestateMonitor()
    with pytest.raises(TypestateError, match="released"):
        monitor.on_release("proc", "mw", dropped=1)
    assert monitor.violations


def test_monitor_states_snapshot(monitored_runtime):
    rt, san = monitored_runtime
    p0 = rt.create_process("a0", "p0")
    p1 = rt.create_process("a1", "p1")
    choice = select_pair_fabric(rt.topology, "a0", "a1", DISTRIBUTED)
    a, b = VLinkEndpoint.make_pair(rt, p0, p1, choice)
    states = san.monitor.states()
    assert states[a] == "connected" and states[b] == "connected"
    a.close()
    assert san.monitor.states()[a] == "closed"
