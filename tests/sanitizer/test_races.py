"""Happens-before race detector: true positives and true negatives.

The acceptance demo — two processes mutating a shared dict across a
yield with no lock — must be flagged with BOTH access sites; every
properly synchronised variant of the same shape must stay silent.
"""

import pytest

from repro.sanitizer import RaceError, Sanitizer
from repro.sim.kernel import SimKernel
from repro.sim.sync import Mailbox, SimEvent, SimLock


def test_unsynchronised_rmw_across_yield_is_a_race():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    shared = san.tracked({"x": 0}, label="shared")

    def bump(p):
        tmp = shared["x"]       # read
        p.yield_()              # the other process runs here
        shared["x"] = tmp + 1   # write based on a stale read

    kernel.spawn(bump, name="a")
    kernel.spawn(bump, name="b")
    kernel.run()

    assert san.races, "the racy read-modify-write must be detected"
    report = san.races[0].render()
    # both access sites, with file:line coordinates, in one report
    assert report.count(__file__) == 2
    assert "read by" in report or "write by" in report
    assert "no happens-before edge" in report
    with pytest.raises(RaceError):
        san.check()


def test_race_report_names_both_processes():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    shared = san.tracked({}, label="table")

    def writer(p, who):
        p.yield_()
        shared["slot"] = who

    kernel.spawn(writer, "first", name="alpha")
    kernel.spawn(writer, "second", name="beta")
    kernel.run()

    names = {r.prior.ctx_name for r in san.races} | \
        {r.current.ctx_name for r in san.races}
    assert {"alpha", "beta"} <= names


def test_lock_protected_rmw_is_clean():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    lock = SimLock(kernel)
    shared = san.tracked({"x": 0}, label="shared")

    def bump(p):
        lock.acquire(p)
        tmp = shared["x"]
        p.yield_()
        shared["x"] = tmp + 1
        lock.release(p)

    kernel.spawn(bump, name="a")
    kernel.spawn(bump, name="b")
    kernel.run()

    assert san.races == []
    assert shared["x"] == 2


def test_mailbox_handoff_orders_accesses():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    box = Mailbox(kernel)
    shared = san.tracked({}, label="handoff")

    def producer(p):
        shared["payload"] = 42
        box.put(p, "ready")

    def consumer(p):
        box.get(p)
        assert shared["payload"] == 42

    kernel.spawn(producer, name="prod")
    kernel.spawn(consumer, name="cons")
    kernel.run()
    assert san.races == []


def test_event_signal_orders_accesses():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    done = SimEvent(kernel)
    shared = san.tracked({}, label="result")

    def writer(p):
        p.sleep(0.5)
        shared["out"] = "value"
        done.set()

    def reader(p):
        done.wait(p)
        assert shared["out"] == "value"

    kernel.spawn(writer, name="w")
    kernel.spawn(reader, name="r")
    kernel.run()
    assert san.races == []


def test_spawn_and_join_edges_are_ordered():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    shared = san.tracked({}, label="lifecycle")
    shared["before-spawn"] = 1   # kernel context, pre-spawn

    def child(p):
        assert shared["before-spawn"] == 1   # ordered via spawn
        shared["child-out"] = 2

    def parent(p):
        proc = kernel.spawn(child, name="child")
        p.join(proc)
        assert shared["child-out"] == 2      # ordered via join

    kernel.spawn(parent, name="parent")
    kernel.run()
    assert san.races == []


def test_on_race_raise_fires_inside_the_guilty_process():
    kernel = SimKernel()
    san = Sanitizer(kernel, on_race="raise")
    shared = san.tracked({}, label="shared")

    def writer(p, val):
        p.yield_()
        shared["k"] = val

    kernel.spawn(writer, 1, name="a")
    victim = kernel.spawn(writer, 2, name="b")
    with pytest.raises(Exception) as info:
        kernel.run()
    # the failure is attributed to the process that performed the
    # second, racing access
    assert victim.name in str(info.value) or isinstance(
        info.value.__cause__, RaceError) or san.races


def test_uninstall_restores_zero_overhead_configuration():
    kernel = SimKernel()
    san = Sanitizer(kernel)
    assert kernel.tracer is san.detector
    san.uninstall()
    assert kernel.tracer is None


def test_context_manager_raises_on_exit_when_racy():
    with pytest.raises(RaceError):
        with SimKernel() as kernel, Sanitizer(kernel) as san:
            shared = san.tracked({}, label="cm")

            def writer(p, v):
                p.yield_()
                shared["k"] = v

            kernel.spawn(writer, 1, name="a")
            kernel.spawn(writer, 2, name="b")
            kernel.run()
    assert kernel.tracer is None  # uninstalled on the way out
