"""tracked() proxies: container semantics preserved, accesses recorded."""

import pytest

from repro.sanitizer import RaceDetector, tracked
from repro.sanitizer.tracked import STRUCTURE
from repro.sim.kernel import SimKernel


class _Spy:
    """Stand-in detector recording every on_access call."""

    def __init__(self):
        self.accesses = []

    def on_access(self, label, key, write, site):
        self.accesses.append((label, key, write))


def test_tracked_dict_behaves_like_a_dict():
    spy = _Spy()
    d = tracked({"a": 1}, spy, label="d")
    d["b"] = 2
    assert d["a"] == 1 and d["b"] == 2
    assert "a" in d and "missing" not in d
    assert sorted(d) == ["a", "b"]
    assert len(d) == 2
    del d["a"]
    assert len(d) == 1
    assert dict(d.items()) == {"b": 2}


def test_tracked_dict_reports_per_key_and_structure_cells():
    spy = _Spy()
    d = tracked({}, spy, label="d")
    d["k"] = 1          # new key: structure write + key write
    _ = d["k"]          # key read
    list(d)             # structure read
    kinds = spy.accesses
    assert ("d", STRUCTURE, True) in kinds
    assert ("d", "k", True) in kinds
    assert ("d", "k", False) in kinds
    assert ("d", STRUCTURE, False) in kinds


def test_tracked_list_behaves_like_a_list():
    spy = _Spy()
    lst = tracked([1, 2, 3], spy, label="l")
    lst.append(4)
    assert lst[0] == 1 and lst[-1] == 4
    lst[1] = 20
    assert list(lst) == [1, 20, 3, 4]
    assert lst[1:3] == [20, 3]
    del lst[0]
    assert len(lst) == 3


def test_tracked_object_proxies_attributes():
    class Box:
        pass

    spy = _Spy()
    box = Box()
    proxy = tracked(box, spy, label="box")
    proxy.field = 7
    assert proxy.field == 7
    assert box.field == 7
    assert ("box", "field", True) in spy.accesses
    assert ("box", "field", False) in spy.accesses


def test_default_label_is_the_type_name():
    spy = _Spy()
    d = tracked({}, spy)
    d["x"] = 1
    assert spy.accesses[0][0] == "dict"


def test_single_process_accesses_never_race():
    kernel = SimKernel()
    detector = RaceDetector(kernel)
    kernel.attach_tracer(detector)
    shared = tracked({}, detector, label="solo")

    def worker(p):
        for i in range(5):
            shared[i] = i
            p.yield_()
            assert shared[i] == i

    kernel.spawn(worker, name="solo")
    kernel.run()
    assert detector.races == []


def test_disjoint_keys_do_not_collide():
    kernel = SimKernel()
    detector = RaceDetector(kernel)
    kernel.attach_tracer(detector)
    shared = tracked({"a": 0, "b": 0}, detector, label="split")

    def worker(p, key):
        tmp = shared[key]
        p.yield_()
        shared[key] = tmp + 1

    kernel.spawn(worker, "a", name="pa")
    kernel.spawn(worker, "b", name="pb")
    kernel.run()
    # each process touches its own pre-existing key: no shared cell
    assert detector.races == []


def test_unhashable_keys_fall_back_to_repr():
    kernel = SimKernel()
    detector = RaceDetector(kernel)
    kernel.attach_tracer(detector)
    shared = tracked({}, detector, label="odd")
    with pytest.raises(TypeError):
        {}[["unhashable"]]  # sanity: lists are unhashable as dict keys
    # the detector itself must not choke on an unhashable access key
    detector.on_access("odd", ["unhashable"], True, ("f.py", 1, "fn"))
    detector.on_access("odd", ["unhashable"], True, ("f.py", 2, "fn"))
    assert detector.races == []  # same (kernel) context: never a race
