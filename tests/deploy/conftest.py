"""Shared fixtures for deployment tests."""

import pytest

from repro.ccm import ImplementationRepository
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

from tests.ccm.conftest import DriverImpl, MonitorImpl, WorkerImpl


@pytest.fixture()
def runtime():
    topo = Topology()
    build_cluster(topo, "a", 4)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


@pytest.fixture()
def impl_repository():
    ImplementationRepository.clear()
    ImplementationRepository.register("DCE:worker-1", "App::Worker",
                                      WorkerImpl)
    ImplementationRepository.register("DCE:driver-1", "App::Driver",
                                      DriverImpl)
    ImplementationRepository.register("DCE:monitor-1", "App::Monitor",
                                      MonitorImpl)
    yield ImplementationRepository
    ImplementationRepository.clear()
