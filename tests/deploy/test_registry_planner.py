"""Discovery registry and the deployment planner (§2 scenarios)."""

import pytest

from repro.ccm import AssemblyDescriptor
from repro.deploy import (
    DeploymentPlanner,
    DiscoveryError,
    MachineRegistry,
    PlanningError,
)
from repro.net import Topology, build_cluster, build_two_site_grid


@pytest.fixture()
def grid():
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=2)
    reg = MachineRegistry(topo)
    for h in a_hosts:
        reg.advertise(h.name, f"cs-{h.name}", labels=["company-x"])
    for h in b_hosts:
        reg.advertise(h.name, f"cs-{h.name}")
    return topo, reg


def test_advertise_fills_topology_facts(grid):
    topo, reg = grid
    m = reg.machine("cs-a0")
    assert m.site == "site-a"
    assert m.cpus == 2
    assert {"a-san", "a-lan", "wan"} <= set(m.fabrics)
    assert "company-x" in m.labels


def test_advertise_validation(grid):
    topo, reg = grid
    with pytest.raises(ValueError):
        reg.advertise("a0", "cs-a0")  # duplicate process
    with pytest.raises(ValueError):
        reg.advertise("ghost-host", "cs-x")


def test_discover_by_label_site_fabric(grid):
    topo, reg = grid
    assert len(reg.discover(labels=["company-x"])) == 2
    assert {m.host for m in reg.discover(site="site-b")} == {"b0", "b1"}
    assert {m.host for m in reg.discover(fabric="a-san")} == {"a0", "a1"}
    with pytest.raises(DiscoveryError):
        reg.discover(labels=["nonexistent"])
    assert reg.discover(labels=["nonexistent"], require=False) == []


def test_withdraw(grid):
    topo, reg = grid
    reg.withdraw("cs-a0")
    with pytest.raises(DiscoveryError):
        reg.machine("cs-a0")


ASM = AssemblyDescriptor.parse("""
<componentassembly id="coupling">
  <componentfiles>
    <componentfile id="chem" softpkg="chemistry"/>
    <componentfile id="trans" softpkg="transport"/>
  </componentfiles>
  <instance id="chem0" componentfile="chem">
    <constraint label="company-x"/>
  </instance>
  <instance id="trans0" componentfile="trans"/>
  <connection>
    <uses instance="trans0" port="density"/>
    <provides instance="chem0" port="densities"/>
  </connection>
</componentassembly>""")


def test_planner_honours_localization_constraint(grid):
    """§2: the patented chemistry code must stay on company machines."""
    topo, reg = grid
    placement = DeploymentPlanner(reg, topo).plan(ASM)
    chem_host = reg.machine(placement["chem0"]).host
    assert chem_host in ("a0", "a1")  # company-x machines


def test_planner_colocates_coupled_codes_on_fast_network(grid):
    """§2 'communication flexibility': the transport code follows the
    chemistry code onto the same SAN rather than sitting across the WAN."""
    topo, reg = grid
    placement = DeploymentPlanner(reg, topo).plan(ASM)
    chem = reg.machine(placement["chem0"])
    trans = reg.machine(placement["trans0"])
    # both at site-a: they share the Myrinet SAN
    assert chem.site == trans.site == "site-a"


def test_planner_capacity_cap_forces_spread(grid):
    topo, reg = grid
    placement = DeploymentPlanner(reg, topo).plan(
        ASM, instances_per_machine=1)
    assert placement["chem0"] != placement["trans0"]


def test_planner_respects_explicit_destination(grid):
    topo, reg = grid
    asm = AssemblyDescriptor.parse("""
    <componentassembly id="x">
      <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
      <instance id="i0" componentfile="c" destination="cs-b1"/>
    </componentassembly>""")
    placement = DeploymentPlanner(reg, topo).plan(asm)
    assert placement == {"i0": "cs-b1"}


def test_planner_rejects_pinned_machine_without_label(grid):
    topo, reg = grid
    asm = AssemblyDescriptor.parse("""
    <componentassembly id="x">
      <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
      <instance id="i0" componentfile="c" destination="cs-b0">
        <constraint label="company-x"/>
      </instance>
    </componentassembly>""")
    with pytest.raises(PlanningError):
        DeploymentPlanner(reg, topo).plan(asm)


def test_planner_unsatisfiable_constraint(grid):
    topo, reg = grid
    asm = AssemblyDescriptor.parse("""
    <componentassembly id="x">
      <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
      <instance id="i0" componentfile="c">
        <constraint label="gpu"/>
      </instance>
    </componentassembly>""")
    with pytest.raises(PlanningError):
        DeploymentPlanner(reg, topo).plan(asm)


def test_planner_single_site_when_cluster_is_big_enough():
    """The paper's two deployment configurations: one big cluster hosts
    both codes; the planner never reaches for the WAN."""
    topo = Topology()
    hosts = build_cluster(topo, "big", 4)
    reg = MachineRegistry(topo)
    for h in hosts:
        reg.advertise(h.name, f"cs-{h.name}", labels=["company-x"])
    placement = DeploymentPlanner(reg, topo).plan(ASM)
    hosts_used = {reg.machine(p).host for p in placement.values()}
    assert hosts_used <= {h.name for h in hosts}
