"""Grid-wide authentication for component servers (§6 future work)."""

import pytest

from repro.ccm import ComponentServer, Container
from repro.corba import NamingContext, NamingService, OMNIORB4, Orb, compile_idl
from repro.corba.idl.types import UserExceptionBase
from repro.deploy import (
    AccessPolicy,
    AuthenticationError,
    GridCredential,
    grant_credentials,
)
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

from tests.ccm.conftest import APP_IDL


def test_credential_token_roundtrip():
    cred = GridCredential("alice@site-a")
    assert cred.token == "grid-ca:alice@site-a"
    assert GridCredential.parse(cred.token) == cred
    with pytest.raises(AuthenticationError):
        GridCredential.parse("no-colon")
    with pytest.raises(AuthenticationError):
        GridCredential.parse(":missing-issuer")


def test_access_policy_rules():
    policy = AccessPolicy(subjects=["alice"], issuers=["grid-ca"])
    assert policy.permits("grid-ca:alice")
    assert not policy.permits("grid-ca:mallory")
    assert not policy.permits("rogue-ca:alice")
    assert not policy.permits("")
    # empty subject list = any subject from a trusted issuer
    open_policy = AccessPolicy()
    assert open_policy.permits("grid-ca:anyone")
    assert not open_policy.permits("rogue-ca:anyone")


def test_component_server_enforces_acl(runtime, impl_repository):
    container = Container(runtime.create_process("a0", "node0"),
                          compile_idl(APP_IDL))
    naming = NamingService(container.orb)
    policy = AccessPolicy(subjects=["deployer@hq"])
    server = ComponentServer(container,
                             NamingContext(container.orb, naming.url),
                             access_policy=policy)
    client_proc = runtime.create_process("a1", "deployer")
    c_orb = Orb(client_proc, OMNIORB4, compile_idl(APP_IDL))
    from repro.ccm.idl import COMPONENTS_IDL
    c_orb.idl.merge(compile_idl(COMPONENTS_IDL))
    url = container.orb.object_to_string(server.ref)
    out = {}

    def main(proc):
        cs = c_orb.narrow(c_orb.string_to_object(url),
                          "Components::ComponentServer")
        # anonymous: refused
        with pytest.raises(UserExceptionBase) as ei:
            cs.install_home("App::Worker", "DCE:worker-1")
        out["anon"] = ei.value.why
        # wrong identity: refused
        grant_credentials(c_orb, GridCredential("mallory@nowhere"))
        with pytest.raises(UserExceptionBase) as ei:
            cs.install_home("App::Worker", "DCE:worker-1")
        out["mallory"] = ei.value.why
        # authorised identity: succeeds
        grant_credentials(c_orb, GridCredential("deployer@hq"))
        home = cs.install_home("App::Worker", "DCE:worker-1")
        out["home"] = home is not None
        out["installed"] = cs.installed_homes()

    client_proc.spawn(main)
    runtime.run()
    assert "anonymous" in out["anon"]
    assert "not authorised" in out["mallory"]
    assert out["home"]
    assert len(out["installed"]) == 1


def test_servant_sees_caller_principal(runtime):
    """Any servant can read the authenticated caller's identity."""
    server_p = runtime.create_process("a0", "server")
    client_p = runtime.create_process("a1", "client")
    idl_src = "interface WhoAmI { string whoami(); };"
    s_orb = Orb(server_p, OMNIORB4, compile_idl(idl_src))
    s_orb.start()
    c_orb = Orb(client_p, OMNIORB4, compile_idl(idl_src))

    class Servant(s_orb.servant_base("WhoAmI")):
        def whoami(self):
            return s_orb.caller_principal()

    url = s_orb.object_to_string(s_orb.poa.activate_object(Servant()))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        out["anon"] = stub.whoami()
        grant_credentials(c_orb, GridCredential("bob@site-b"))
        out["bob"] = stub.whoami()

    client_p.spawn(main)
    runtime.run()
    assert out["anon"] == ""
    assert out["bob"] == "grid-ca:bob@site-b"
