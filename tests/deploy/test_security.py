"""Per-link security policy (§2 / §6)."""

import pytest

from repro.deploy import GridSecurityPolicy, secure_process
from repro.net import Topology, build_two_site_grid
from repro.padicotm import PadicoRuntime, VLink


@pytest.fixture()
def grid_rt():
    topo, a_hosts, b_hosts = build_two_site_grid(n_per_site=2)
    rt = PadicoRuntime(topo)
    yield rt, a_hosts, b_hosts
    rt.shutdown()


def test_policy_modes():
    wan_only = GridSecurityPolicy("wan-only")
    assert wan_only.should_encrypt("wan", secure_wire=False)
    assert not wan_only.should_encrypt("a-san", secure_wire=True)
    assert GridSecurityPolicy("always").should_encrypt("a-san", True)
    assert not GridSecurityPolicy("never").should_encrypt("wan", False)
    with pytest.raises(ValueError):
        GridSecurityPolicy("sometimes")


def test_cost_zero_when_not_encrypting():
    p = GridSecurityPolicy("wan-only")
    assert p.transform_cost(1e6, "a-san", True) == 0.0
    assert p.transform_cost(1e6, "wan", False) > 0.05  # 20 MB/s cipher


def _transfer(rt, src_proc, dst_proc, nbytes, out):
    listener = VLink.listen(dst_proc, "sec")

    def srv(proc):
        ep = listener.accept(proc)
        ep.recv(proc)

    def cli(proc):
        ep = VLink.connect(proc, src_proc, dst_proc.name, "sec")
        t0 = rt.kernel.now
        ep.send(proc, b"payload", nbytes)
        out["elapsed"] = rt.kernel.now - t0
        out["encrypted"] = ep.encrypted_bytes
        out["fabric"] = ep.fabric_name

    dst_proc.spawn(srv)
    src_proc.spawn(cli)
    rt.run()


def test_wan_traffic_encrypted_san_traffic_not(grid_rt):
    """§6 optimisation: same policy, cipher only on the untrusted wire."""
    rt, a_hosts, b_hosts = grid_rt
    policy = GridSecurityPolicy("wan-only")
    pa = rt.create_process(a_hosts[0], "pa")
    pa2 = rt.create_process(a_hosts[1], "pa2")
    pb = rt.create_process(b_hosts[0], "pb")
    for p in (pa, pa2, pb):
        secure_process(p, policy)

    out_wan = {}
    _transfer(rt, pa, pb, 1_000_000, out_wan)
    assert out_wan["fabric"] == "wan"
    assert out_wan["encrypted"] == 1_000_000

    out_san = {}
    _transfer(rt, pa, pa2, 1_000_000, out_san)
    assert out_san["fabric"] == "a-san"
    assert out_san["encrypted"] == 0
    # SAN transfer is untouched by the cipher: ~240 MB/s
    assert 1_000_000 / out_san["elapsed"] > 200e6


def test_always_mode_cripples_the_san(grid_rt):
    """The coarse-grained baseline the paper criticises: encrypting
    inside the parallel machine throttles Myrinet to cipher speed."""
    rt, a_hosts, _ = grid_rt
    pa = rt.create_process(a_hosts[0], "pa")
    pa2 = rt.create_process(a_hosts[1], "pa2")
    for p in (pa, pa2):
        secure_process(p, GridSecurityPolicy("always"))
    out = {}
    _transfer(rt, pa, pa2, 1_000_000, out)
    assert out["encrypted"] == 1_000_000
    bw = 1_000_000 / out["elapsed"]
    assert bw < 25e6  # cipher-bound, not network-bound


def test_wan_encryption_nearly_free(grid_rt):
    """On a 4 MB/s WAN the 20 MB/s cipher costs little extra time."""
    rt, a_hosts, b_hosts = grid_rt
    pa = rt.create_process(a_hosts[0], "pa")
    pb = rt.create_process(b_hosts[0], "pb")
    out_plain = {}
    _transfer(rt, pa, pb, 1_000_000, out_plain)

    topo2, a2, b2 = build_two_site_grid(n_per_site=2)
    rt2 = PadicoRuntime(topo2)
    pa2 = rt2.create_process(a2[0].name, "pa")
    pb2 = rt2.create_process(b2[0].name, "pb")
    secure_process(pa2, GridSecurityPolicy("wan-only"))
    secure_process(pb2, GridSecurityPolicy("wan-only"))
    out_enc = {}
    _transfer(rt2, pa2, pb2, 1_000_000, out_enc)
    rt2.shutdown()

    overhead = out_enc["elapsed"] / out_plain["elapsed"]
    assert overhead < 1.35  # ≤ 35% on the slow wire


def test_policy_applies_to_future_endpoints_only(grid_rt):
    rt, a_hosts, b_hosts = grid_rt
    pa = rt.create_process(a_hosts[0], "pa")
    pb = rt.create_process(b_hosts[0], "pb")
    out = {}
    # no policy installed: nothing encrypted
    _transfer(rt, pa, pb, 10_000, out)
    assert out["encrypted"] == 0
