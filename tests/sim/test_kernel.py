"""Unit tests for the deterministic simulation kernel."""

import pytest

from repro.sim import (
    SimDeadlockError,
    SimInterrupt,
    SimKernel,
    SimProcessError,
)
from repro.sim.kernel import run_processes


def test_clock_starts_at_zero():
    with SimKernel() as k:
        assert k.now == 0.0


def test_sleep_advances_virtual_time():
    with SimKernel() as k:
        times = []

        def proc(p):
            p.sleep(1.5)
            times.append(k.now)
            p.sleep(0.5)
            times.append(k.now)

        k.spawn(proc)
        k.run()
        assert times == [1.5, 2.0]
        assert k.now == 2.0


def test_zero_sleep_is_allowed():
    with SimKernel() as k:
        def proc(p):
            p.sleep(0.0)
            return "done"

        pr = k.spawn(proc)
        assert k.run_until_complete(pr) == "done"
        assert k.now == 0.0


def test_negative_sleep_rejected():
    with SimKernel() as k:
        def proc(p):
            with pytest.raises(ValueError):
                p.sleep(-1.0)

        k.run_until_complete(k.spawn(proc))


def test_two_processes_interleave_deterministically():
    def trace_run():
        trace = []
        with SimKernel() as k:
            def a(p):
                for i in range(3):
                    trace.append(("a", i, k.now))
                    p.sleep(1.0)

            def b(p):
                for i in range(3):
                    trace.append(("b", i, k.now))
                    p.sleep(1.0)

            k.spawn(a, name="a")
            k.spawn(b, name="b")
            k.run()
        return trace

    t1 = trace_run()
    t2 = trace_run()
    assert t1 == t2  # determinism
    # spawn order breaks ties at equal times
    assert t1[0][0] == "a" and t1[1][0] == "b"


def test_schedule_callback_fires_in_order():
    with SimKernel() as k:
        fired = []
        k.schedule(2.0, fired.append, "late")
        k.schedule(1.0, fired.append, "early")
        k.schedule(1.0, fired.append, "early2")
        k.run()
        assert fired == ["early", "early2", "late"]
        assert k.now == 2.0


def test_timer_cancel():
    with SimKernel() as k:
        fired = []
        t = k.schedule(1.0, fired.append, "x")
        t.cancel()
        k.run()
        assert fired == []


def test_run_until_stops_clock():
    with SimKernel() as k:
        def proc(p):
            p.sleep(10.0)

        k.spawn(proc)
        k.run(until=3.0)
        assert k.now == 3.0


def test_process_result_and_join():
    with SimKernel() as k:
        def worker(p):
            p.sleep(1.0)
            return 42

        def waiter(p, target):
            return p.join(target)

        w = k.spawn(worker)
        j = k.spawn(waiter, w)
        k.run()
        assert j.result == 42
        assert w.result == 42


def test_join_already_finished_process():
    with SimKernel() as k:
        def worker(p):
            return "early"

        def waiter(p, target):
            p.sleep(5.0)
            return p.join(target)

        w = k.spawn(worker)
        j = k.spawn(waiter, w)
        k.run()
        assert j.result == "early"


def test_nondaemon_failure_propagates():
    with SimKernel() as k:
        def bad(p):
            raise ValueError("boom")

        k.spawn(bad)
        with pytest.raises(SimProcessError) as ei:
            k.run()
        assert isinstance(ei.value.exc, ValueError)


def test_daemon_failure_is_recorded_not_raised():
    with SimKernel() as k:
        def bad(p):
            raise ValueError("boom")

        pr = k.spawn(bad, daemon=True)
        k.run()
        assert isinstance(pr.exc, ValueError)


def test_interrupt_breaks_sleep():
    with SimKernel() as k:
        log = []

        def sleeper(p):
            try:
                p.sleep(100.0)
            except SimInterrupt as e:
                log.append(("interrupted", k.now, e.cause))

        def killer(p, target):
            p.sleep(1.0)
            target.interrupt("link down")

        s = k.spawn(sleeper)
        k.spawn(killer, s)
        k.run()
        assert log == [("interrupted", 1.0, "link down")]


def test_stale_wakeup_after_interrupt_is_ignored():
    with SimKernel() as k:
        log = []

        def sleeper(p):
            try:
                p.sleep(2.0)
            except SimInterrupt:
                log.append("interrupted")
            p.sleep(10.0)  # the stale t=2.0 wake must not end this early
            log.append(k.now)

        def killer(p, target):
            p.sleep(1.0)
            target.interrupt()

        s = k.spawn(sleeper)
        k.spawn(killer, s)
        k.run()
        assert log == ["interrupted", 11.0]


def test_run_until_complete_deadlock_detection():
    with SimKernel() as k:
        def stuck(p):
            p.suspend()

        pr = k.spawn(stuck)
        with pytest.raises(SimDeadlockError):
            k.run_until_complete(pr)


def test_shutdown_terminates_blocked_processes():
    k = SimKernel()
    def stuck(p):
        p.suspend()

    pr = k.spawn(stuck)
    k.run()
    assert pr.alive
    k.shutdown()
    assert not pr.alive
    assert pr.exc is None  # SimShutdown is a clean exit


def test_shutdown_terminates_never_started_process():
    k = SimKernel()
    ran = []

    def proc(p):
        ran.append(True)

    k.spawn(proc, delay=5.0)
    k.run(until=1.0)
    k.shutdown()
    assert ran == []


def test_spawn_delay():
    with SimKernel() as k:
        start = []

        def proc(p):
            start.append(k.now)

        k.spawn(proc, delay=2.5)
        k.run()
        assert start == [2.5]


def test_wake_value_roundtrip():
    with SimKernel() as k:
        def receiver(p):
            return p.suspend()

        def sender(p, target):
            p.sleep(1.0)
            k.wake(target, {"payload": 7})

        r = k.spawn(receiver)
        k.spawn(sender, r)
        k.run()
        assert r.result == {"payload": 7}


def test_primitive_from_wrong_context_rejected():
    with SimKernel() as k:
        def proc(p):
            p.sleep(0.1)

        pr = k.spawn(proc)
        with pytest.raises(RuntimeError):
            pr.sleep(1.0)  # called from the pytest thread, not the process
        k.run()


def test_run_processes_helper():
    def f(p):
        p.sleep(1.0)
        return "f"

    def g(p):
        p.sleep(2.0)
        return "g"

    assert run_processes([f, g]) == ["f", "g"]


def test_many_processes_scale():
    with SimKernel() as k:
        done = []

        def proc(p, i):
            p.sleep(float(i % 7) * 0.001)
            done.append(i)

        for i in range(200):
            k.spawn(proc, i)
        k.run()
        assert sorted(done) == list(range(200))
