"""Switch-backend contract tests: selection, parity, and the redesigned
``repro.sim`` attach surface.

The parity tests run the same coroutine workload on the thread backend
and on the trampoline and require identical results, event counts, and
final clocks — the backends may only change *how* a switch happens,
never the event order.  (The autouse ``sim_backend`` matrix from
``conftest.py`` additionally runs this whole file under each available
general-purpose backend; tests that construct kernels with an explicit
``backend=`` are deliberately unaffected by it.)
"""

import pytest

from repro.sim import (
    BackendUnavailableError,
    SimKernel,
    SimProcessError,
    ThreadBackend,
    available_backends,
    best_available_backend,
    format_wait_graph,
)
from repro.sim.backends import BACKEND_ENV_VAR
from repro.sim.sync import Mailbox

HAS_GREENLET = "greenlet" in available_backends()

#: backends that can run *coroutine* (generator-function) processes
COROUTINE_BACKENDS = list(available_backends())


# ----------------------------------------------------------------------
# selection contract
# ----------------------------------------------------------------------
def test_unknown_backend_name_is_rejected_loudly():
    with pytest.raises(ValueError, match="unknown sim backend 'fibers'"):
        SimKernel(backend="fibers")
    # the error names the valid set so the fix is in the message
    with pytest.raises(ValueError, match="'thread'.*'trampoline'"):
        SimKernel(backend="fibers")


def test_backend_of_wrong_type_is_rejected():
    with pytest.raises(TypeError, match="SwitchBackend"):
        SimKernel(backend=42)


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV_VAR, "trampoline")
    assert SimKernel().backend.name == "trampoline"
    # an explicit argument wins over the environment
    assert SimKernel(backend="thread").backend.name == "thread"


def test_backend_instance_passes_through_and_binds_once():
    backend = ThreadBackend()
    kernel = SimKernel(backend=backend)
    assert kernel.backend is backend
    with pytest.raises(RuntimeError, match="already attached"):
        SimKernel(backend=backend)
    kernel.shutdown()


@pytest.mark.skipif(HAS_GREENLET, reason="greenlet installed here")
def test_greenlet_backend_unavailable_without_package():
    with pytest.raises(BackendUnavailableError, match="sim-fast"):
        SimKernel(backend="greenlet")
    assert "greenlet" not in available_backends()
    assert best_available_backend() == "trampoline"


@pytest.mark.skipif(not HAS_GREENLET, reason="greenlet not installed")
def test_greenlet_backend_available_with_package():
    assert best_available_backend() == "greenlet"
    with SimKernel(backend="greenlet") as kernel:
        out = []
        kernel.spawn(lambda p: out.append(p.kernel.now) or p.sleep(0.5),
                     name="g")
        kernel.run()
    assert out == [0.0]


# ----------------------------------------------------------------------
# backend-portable coroutine workload: byte-identical across backends
# ----------------------------------------------------------------------
def _coroutine_workload(kernel):
    """Sleeps, wakes with values, joins, and an interrupt — every leaf
    primitive a coroutine process can exercise.  Returns a trace of
    ``(time, marker)`` pairs plus per-process results."""
    trace = []

    def worker(p, ident):
        for i in range(3):
            yield p.sleep(0.25 + ident * 0.01)
            trace.append((p.kernel.now, f"w{ident}.{i}"))
        return ident * 10

    def waiter(p):
        value = yield p.suspend(waiting_on="poker")
        trace.append((p.kernel.now, f"woken:{value}"))
        return value

    def victim(p):
        try:
            yield p.sleep(100.0)
        except Exception as exc:  # SimInterrupt
            trace.append((p.kernel.now, f"interrupted:{exc.cause}"))
            return "survived"

    def boss(p, workers, sleeper, prey):
        yield p.sleep(0.1)
        p.kernel.wake(sleeper, "ping")
        prey.interrupt("storm")
        total = 0
        for w in workers:
            total += yield p.join(w)
        trace.append((p.kernel.now, f"joined:{total}"))
        return total

    workers = [kernel.spawn(worker, i, name=f"w{i}") for i in range(3)]
    sleeper = kernel.spawn(waiter, name="waiter")
    prey = kernel.spawn(victim, name="victim")
    chief = kernel.spawn(boss, workers, sleeper, prey, name="boss")
    kernel.run()
    return {
        "trace": tuple(trace),
        "results": tuple(p.result for p in workers + [sleeper, prey, chief]),
        "events": kernel.events_processed,
        "skipped": kernel.events_skipped,
        "now": kernel.now,
    }


def test_coroutine_workload_identical_on_every_backend():
    reference = _coroutine_workload(SimKernel(backend="thread"))
    assert reference["results"] == (0, 10, 20, "ping", "survived", 30)
    for name in COROUTINE_BACKENDS:
        if name == "thread":
            continue
        assert _coroutine_workload(SimKernel(backend=name)) == reference, name


def test_seeded_exploration_identical_on_every_backend():
    def fingerprint(backend, seed):
        order = []

        def racer(p, ident):
            yield p.sleep(1.0)  # all three wake at the same instant
            order.append(ident)

        kernel = SimKernel(seed=seed, backend=backend)
        for i in range(3):
            kernel.spawn(racer, i, name=f"r{i}")
        kernel.run()
        return tuple(order)

    for seed in range(5):
        reference = fingerprint("thread", seed)
        for name in COROUTINE_BACKENDS:
            assert fingerprint(name, seed) == reference, (name, seed)
    # sanity: the seeds really explore different same-instant orders
    assert len({fingerprint("thread", s) for s in range(5)}) > 1


def test_wake_value_roundtrip_through_yield():
    out = []

    def sleeper(p):
        out.append((yield p.suspend()))
        out.append((yield p.suspend()))

    def poker(p, target):
        yield p.sleep(0.1)
        p.kernel.wake(target, "first")
        yield p.sleep(0.1)
        p.kernel.wake(target, {"second": 2})

    for name in COROUTINE_BACKENDS:
        out.clear()
        with SimKernel(backend=name) as kernel:
            t = kernel.spawn(sleeper, name="sleeper")
            kernel.spawn(poker, t, name="poker")
            kernel.run()
        assert out == ["first", {"second": 2}], name


# ----------------------------------------------------------------------
# trampoline-specific semantics
# ----------------------------------------------------------------------
def test_trampoline_join_on_dead_target_is_immediate():
    def quick(p):
        return "done"
        yield  # pragma: no cover - makes this a generator function

    def late_joiner(p, target):
        yield p.sleep(1.0)  # target long dead by now
        t_before = p.kernel.now
        value = yield p.join(target)
        assert p.kernel.now == t_before  # no extra event, no time passed
        return value

    kernel = SimKernel(backend="trampoline")
    target = kernel.spawn(quick, name="quick")
    joiner = kernel.spawn(late_joiner, target, name="late")
    kernel.run()
    assert joiner.result == "done"


def test_trampoline_join_propagates_failure():
    def bomb(p):
        yield p.sleep(0.1)
        raise ValueError("boom")

    def joiner(p, target):
        with pytest.raises(SimProcessError, match="boom"):
            yield p.join(target)
        return "caught"

    kernel = SimKernel(backend="trampoline")
    target = kernel.spawn(bomb, name="bomb", daemon=True)
    j = kernel.spawn(joiner, target, name="joiner")
    kernel.run()
    assert j.result == "caught"


def test_trampoline_rejects_nested_frame_blocking():
    def reader(p, box):
        yield box.get(p)  # blocks inside Mailbox, not at a kernel leaf

    kernel = SimKernel(backend="trampoline")
    box = Mailbox(kernel)
    kernel.spawn(reader, box, name="reader")
    with pytest.raises(SimProcessError, match="nested call frame"):
        kernel.run()


def test_trampoline_rejects_blocking_plain_function():
    kernel = SimKernel(backend="trampoline")
    kernel.spawn(lambda p: p.sleep(1.0), name="plain")
    with pytest.raises(SimProcessError, match="plain function"):
        kernel.run()


def test_trampoline_runs_nonblocking_plain_functions():
    kernel = SimKernel(backend="trampoline")
    proc = kernel.spawn(lambda p: 7 * 6, name="pure")
    kernel.run()
    assert proc.result == 42 and proc.state == "done"


def test_trampoline_detects_unyielded_primitive():
    def sloppy(p):
        p.sleep(1.0)  # armed to block but the result is never yielded
        return "unreachable"
        yield  # pragma: no cover - makes this a generator function

    kernel = SimKernel(backend="trampoline")
    with pytest.raises(SimProcessError, match="without yielding"):
        kernel.run_until_complete(kernel.spawn(sloppy, name="sloppy"))


def test_trampoline_shutdown_terminates_blocked_coroutines():
    def idler(p):
        yield p.sleep(1000.0)

    with SimKernel(backend="trampoline") as kernel:
        proc = kernel.spawn(idler, name="idler")
        kernel.run(until=1.0)
        assert proc.state == "blocked"
    assert proc.state == "done"  # SimShutdown delivered at the yield


# ----------------------------------------------------------------------
# waitgraph: suspend() hints
# ----------------------------------------------------------------------
def test_bare_suspend_labelled_in_wait_graph():
    def stuck(p):
        p.suspend()

    kernel = SimKernel(backend="thread")
    kernel.spawn(stuck, name="stuck")
    kernel.run()
    graph = format_wait_graph(kernel)
    assert "stuck waits on bare suspend() awaiting an external wake()" \
        in graph
    kernel.shutdown()


def test_suspend_hint_labelled_in_wait_graph():
    def stuck(p):
        p.suspend(waiting_on="io-completion from nic0")

    kernel = SimKernel(backend="thread")
    kernel.spawn(stuck, name="stuck")
    kernel.run()
    assert "suspend() awaiting io-completion from nic0" \
        in format_wait_graph(kernel)
    kernel.shutdown()


# ----------------------------------------------------------------------
# redesigned attach surface
# ----------------------------------------------------------------------
class _CountingTracer:
    """Full hook surface (a single attached tracer must implement it
    all; only fan *members* may implement subsets)."""

    def __init__(self):
        self.fires = 0
        self.switches = 0

    def on_fire(self, timer):
        self.fires += 1

    def on_switch(self, proc):
        self.switches += 1

    def on_schedule(self, timer):
        pass

    def on_exit(self, proc):
        pass

    def on_join(self, proc, target):
        pass

    def hb_release(self, obj):
        pass

    def hb_acquire(self, obj):
        pass


def test_direct_tracer_assignment_is_deprecated_but_delegates():
    kernel = SimKernel(backend="thread")
    tracer = _CountingTracer()
    with pytest.warns(DeprecationWarning, match="attach_tracer"):
        kernel.tracer = tracer
    assert kernel.tracer is tracer
    kernel.spawn(lambda p: p.sleep(0.1), name="tick")
    kernel.run()
    assert tracer.fires > 0 and tracer.switches > 0
    with pytest.warns(DeprecationWarning):
        kernel.tracer = None
    assert kernel.tracer is None
    kernel.shutdown()


def test_tracer_fan_rebuilds_on_attach_and_detach():
    kernel = SimKernel(backend="thread")
    first, second = _CountingTracer(), _CountingTracer()
    kernel.attach_tracer(first)
    kernel.attach_tracer(second)
    kernel.spawn(lambda p: p.sleep(0.1), name="t1")
    kernel.run()
    assert first.fires == second.fires > 0
    kernel.detach_tracer(first)
    baseline = first.fires
    kernel.spawn(lambda p: p.sleep(0.1), name="t2")
    kernel.run()
    assert first.fires == baseline  # detached member no longer called
    assert second.fires > baseline
    assert kernel.tracer is second  # fan unwraps to the last member
    kernel.shutdown()


# ----------------------------------------------------------------------
# run-loop optimisations stay semantics-identical
# ----------------------------------------------------------------------
def test_wake_timers_are_pooled_and_reused():
    def ticker(p):
        for _ in range(50):
            p.sleep(0.01)

    kernel = SimKernel(backend="thread")
    kernel.spawn(ticker, name="ticker")
    kernel.run()
    assert kernel._timer_pool, "wake timers should return to the free-list"
    # and the recycling is invisible: a fresh identical run agrees
    again = SimKernel(backend="thread")
    again.spawn(ticker, name="ticker")
    again.run()
    assert (again.events_processed, again.now) \
        == (kernel.events_processed, kernel.now)


def test_pooling_stands_down_while_traced():
    kernel = SimKernel(backend="thread")
    kernel.attach_tracer(_CountingTracer())
    kernel.spawn(lambda p: [p.sleep(0.01) for _ in range(10)], name="t")
    kernel.run()
    assert kernel._timer_pool == []  # every traced timer stays unique


def test_batched_drain_honours_mid_batch_cancellation():
    fired = []
    timers = {}
    kernel = SimKernel(backend="thread")
    kernel.schedule(1.0, lambda: (fired.append("a"), timers["c"].cancel()))
    kernel.schedule(1.0, fired.append, "b")
    timers["c"] = kernel.schedule(1.0, fired.append, "c")
    kernel.run()
    assert fired == ["a", "b"]
    assert kernel.events_skipped == 1
