"""Unit tests for simulation synchronisation primitives."""

import pytest

from repro.sim import (
    Mailbox,
    SimBarrier,
    SimCondition,
    SimEvent,
    SimInterrupt,
    SimKernel,
    SimLock,
    SimSemaphore,
)


def test_mailbox_fifo_order():
    with SimKernel() as k:
        box = Mailbox(k)
        got = []

        def producer(p):
            for i in range(5):
                box.put(p, i)
                p.sleep(0.1)

        def consumer(p):
            for _ in range(5):
                got.append(box.get(p))

        k.spawn(producer)
        k.spawn(consumer)
        k.run()
        assert got == [0, 1, 2, 3, 4]


def test_mailbox_get_blocks_until_put():
    with SimKernel() as k:
        box = Mailbox(k)
        when = []

        def consumer(p):
            box.get(p)
            when.append(k.now)

        def producer(p):
            p.sleep(3.0)
            box.put(p, "msg")

        k.spawn(consumer)
        k.spawn(producer)
        k.run()
        assert when == [3.0]


def test_mailbox_capacity_blocks_put():
    with SimKernel() as k:
        box = Mailbox(k, capacity=2)
        log = []

        def producer(p):
            for i in range(4):
                box.put(p, i)
                log.append(("put", i, k.now))

        def consumer(p):
            p.sleep(1.0)
            for _ in range(4):
                box.get(p)
                p.sleep(1.0)

        k.spawn(producer)
        k.spawn(consumer)
        k.run()
        # first two puts immediate, then blocked until consumer drains
        assert log[0] == ("put", 0, 0.0)
        assert log[1] == ("put", 1, 0.0)
        assert log[2][2] >= 1.0
        assert log[3][2] >= 2.0


def test_mailbox_two_consumers_each_get_one():
    with SimKernel() as k:
        box = Mailbox(k)
        got = []

        def consumer(p, name):
            got.append((name, box.get(p)))

        def producer(p):
            p.sleep(1.0)
            box.put(p, "x")
            box.put(p, "y")

        k.spawn(consumer, "c1")
        k.spawn(consumer, "c2")
        k.spawn(producer)
        k.run()
        assert sorted(got) == [("c1", "x"), ("c2", "y")]


def test_mailbox_nowait_paths():
    with SimKernel() as k:
        box = Mailbox(k, capacity=1)
        box.put_nowait(1)
        with pytest.raises(OverflowError):
            box.put_nowait(2)
        assert box.peek() == 1
        assert box.get_nowait() == 1
        with pytest.raises(LookupError):
            box.get_nowait()
        with pytest.raises(LookupError):
            box.peek()


def test_interrupted_consumer_does_not_lose_message():
    """Failure injection: a consumer killed while blocked must not eat
    a message destined for the surviving consumer."""
    with SimKernel() as k:
        box = Mailbox(k)
        got = []

        def victim(p):
            try:
                box.get(p)
            except SimInterrupt:
                pass
            p.suspend()  # stay out of the way

        def survivor(p):
            p.sleep(0.5)
            got.append(box.get(p))

        v = k.spawn(victim, daemon=True)

        def killer(p):
            p.sleep(0.2)
            v.interrupt()
            p.sleep(0.6)
            box.put(p, "payload")

        k.spawn(survivor)
        k.spawn(killer)
        k.run()
        assert got == ["payload"]


def test_event_set_releases_all_waiters():
    with SimKernel() as k:
        ev = SimEvent(k)
        woken = []

        def waiter(p, name):
            val = ev.wait(p)
            woken.append((name, val, k.now))

        def setter(p):
            p.sleep(2.0)
            ev.set("go")

        k.spawn(waiter, "w1")
        k.spawn(waiter, "w2")
        k.spawn(setter)
        k.run()
        assert woken == [("w1", "go", 2.0), ("w2", "go", 2.0)]


def test_event_wait_after_set_returns_immediately():
    with SimKernel() as k:
        ev = SimEvent(k)
        ev.set(123)

        def waiter(p):
            return ev.wait(p)

        pr = k.spawn(waiter)
        k.run()
        assert pr.result == 123
        assert k.now == 0.0


def test_semaphore_limits_concurrency():
    with SimKernel() as k:
        sem = SimSemaphore(k, 2)
        active = [0]
        peak = [0]

        def worker(p, i):
            sem.acquire(p)
            active[0] += 1
            peak[0] = max(peak[0], active[0])
            p.sleep(1.0)
            active[0] -= 1
            sem.release()

        for i in range(6):
            k.spawn(worker, i)
        k.run()
        assert peak[0] == 2
        assert k.now == 3.0  # 6 workers, 2 at a time, 1s each


def test_lock_mutual_exclusion_and_errors():
    with SimKernel() as k:
        lock = SimLock(k)
        order = []

        def worker(p, name):
            lock.acquire(p)
            order.append((name, "in", k.now))
            p.sleep(1.0)
            order.append((name, "out", k.now))
            lock.release(p)

        k.spawn(worker, "a")
        k.spawn(worker, "b")
        k.run()
        assert order == [("a", "in", 0.0), ("a", "out", 1.0),
                         ("b", "in", 1.0), ("b", "out", 2.0)]

        def bad_release(p):
            with pytest.raises(RuntimeError):
                lock.release(p)

        k2 = SimKernel()
        with k2:
            lock2 = SimLock(k2)
            k2.run_until_complete(k2.spawn(
                lambda p: (lock2.acquire(p),
                           pytest.raises(RuntimeError, lock2.acquire, p),
                           lock2.release(p))))


def test_condition_notify_wakes_in_fifo_order():
    with SimKernel() as k:
        lock = SimLock(k)
        cond = SimCondition(k, lock)
        shared = []
        woken = []

        def waiter(p, name):
            lock.acquire(p)
            while not shared:
                cond.wait(p)
            woken.append(name)
            lock.release(p)

        def notifier(p):
            p.sleep(1.0)
            lock.acquire(p)
            shared.append("data")
            cond.notify_all()
            lock.release(p)

        k.spawn(waiter, "w1")
        k.spawn(waiter, "w2")
        k.spawn(notifier)
        k.run()
        assert woken == ["w1", "w2"]


def test_barrier_synchronises_parties():
    with SimKernel() as k:
        bar = SimBarrier(k, 3)
        crossing = []

        def worker(p, i):
            p.sleep(float(i))
            bar.wait(p)
            crossing.append((i, k.now))

        for i in range(3):
            k.spawn(worker, i)
        k.run()
        # everyone crosses when the slowest (i=2) arrives
        assert all(t == 2.0 for _, t in crossing)


def test_barrier_is_reusable():
    with SimKernel() as k:
        bar = SimBarrier(k, 2)
        log = []

        def worker(p, name, delays):
            for d in delays:
                p.sleep(d)
                bar.wait(p)
                log.append((name, k.now))

        k.spawn(worker, "a", [1.0, 1.0])
        k.spawn(worker, "b", [2.0, 2.0])
        k.run()
        times = sorted(set(t for _, t in log))
        assert times == [2.0, 4.0]


def test_barrier_validation():
    with SimKernel() as k:
        with pytest.raises(ValueError):
            SimBarrier(k, 0)
        with pytest.raises(ValueError):
            Mailbox(k, capacity=0)
        with pytest.raises(ValueError):
            SimSemaphore(k, -1)
