"""Edge cases in the sync primitives: timeout-while-queued, the
lost-interrupt race in the WaitQueue timeout path (a real bug this
suite surfaced — the expiry wake-up is now bound to the token armed at
wait() entry), barrier reuse across generations, MatchQueue shutdown
with unmatched items, and the deadlock wait-for graph."""

import pytest

from repro.sim.kernel import (
    SimDeadlockError,
    SimInterrupt,
    SimKernel,
)
from repro.sim.sync import (
    Mailbox,
    MatchQueue,
    SimBarrier,
    SimLock,
    SimTimeout,
)
from repro.sim.waitgraph import format_wait_graph, wait_edges


# ----------------------------------------------------------------------
# timeout while queued behind other waiters
# ----------------------------------------------------------------------
def test_timeout_while_queued_preserves_fifo_for_survivors():
    """A waiter that times out mid-queue must drop out cleanly: the
    item that would have gone to it goes to the next waiter in FIFO
    order instead."""
    outcomes = {}
    with SimKernel() as kernel:
        box = Mailbox(kernel)

        def impatient(p):
            try:
                box.get(p, timeout=0.5)
                outcomes["impatient"] = "got"
            except SimTimeout:
                outcomes["impatient"] = "timeout"

        def patient(p):
            outcomes["patient"] = box.get(p)

        def producer(p):
            p.sleep(1.0)  # after the impatient waiter has expired
            box.put(p, "late-item")

        kernel.spawn(impatient, name="impatient")
        kernel.spawn(patient, name="patient", delay=1e-9)
        kernel.spawn(producer, name="producer")
        kernel.run()

    assert outcomes["impatient"] == "timeout"
    assert outcomes["patient"] == "late-item"


def test_timed_out_waiter_is_removed_from_the_queue():
    with SimKernel() as kernel:
        box = Mailbox(kernel)

        def waiter(p):
            with pytest.raises(SimTimeout):
                box.get(p, timeout=0.1)

        kernel.spawn(waiter, name="w")
        kernel.run()
        assert len(box._getters) == 0


def test_timeout_measures_from_wait_entry():
    times = {}
    with SimKernel() as kernel:
        box = Mailbox(kernel)

        def waiter(p):
            p.sleep(2.0)
            try:
                box.get(p, timeout=0.25)
            except SimTimeout:
                times["expired_at"] = kernel.now

        kernel.spawn(waiter, name="w")
        kernel.run()
    assert times["expired_at"] == pytest.approx(2.25)


# ----------------------------------------------------------------------
# the lost-interrupt race (regression)
# ----------------------------------------------------------------------
def test_interrupt_beats_timeout_at_the_same_instant():
    """An interrupt armed before the timeout expiry fires — even at the
    very same virtual instant — must win.  The old implementation read
    the process's *current* wake token at expiry time, so the timeout
    matched the interrupt's token, delivered SimTimeout, and the
    interrupt was silently lost."""
    outcome = {}
    with SimKernel() as kernel:
        box = Mailbox(kernel)

        def victim(p):
            try:
                box.get(p, timeout=1.0)
                outcome["result"] = "got"
            except SimInterrupt:
                outcome["result"] = "interrupt"
            except SimTimeout:
                outcome["result"] = "timeout"

        proc = kernel.spawn(victim, name="victim")
        # fires at t=1.0 BEFORE the expiry timer (which is scheduled
        # later, from inside wait(), and so has a higher sequence
        # number at the same instant)
        kernel.schedule(1.0, proc.interrupt, "failure-injection")
        kernel.run()

    assert outcome["result"] == "interrupt"


def test_timeout_still_fires_when_nothing_intervenes():
    outcome = {}
    with SimKernel() as kernel:
        box = Mailbox(kernel)

        def victim(p):
            try:
                box.get(p, timeout=1.0)
            except SimTimeout:
                outcome["at"] = kernel.now

        kernel.spawn(victim, name="victim")
        kernel.run()
    assert outcome["at"] == pytest.approx(1.0)


def test_interrupted_waiter_leaves_the_queue_consistent():
    with SimKernel() as kernel:
        box = Mailbox(kernel)
        got = []

        def victim(p):
            with pytest.raises(SimInterrupt):
                box.get(p, timeout=5.0)

        def survivor(p):
            got.append(box.get(p))

        vic = kernel.spawn(victim, name="victim")
        kernel.spawn(survivor, name="survivor", delay=1e-9)
        kernel.schedule(0.5, vic.interrupt, "chaos")
        kernel.schedule(1.0, box.put_nowait, "item")
        kernel.run()
        assert got == ["item"]
        assert len(box._getters) == 0


# ----------------------------------------------------------------------
# barrier reuse across generations
# ----------------------------------------------------------------------
def test_barrier_is_reusable_across_generations():
    rounds_done = []
    with SimKernel() as kernel:
        barrier = SimBarrier(kernel, 3)

        def party(p, ident):
            for round_no in range(4):
                p.sleep(0.001 * (ident + 1))
                barrier.wait(p)
                rounds_done.append((round_no, ident))

        for ident in range(3):
            kernel.spawn(party, ident, name=f"party-{ident}")
        kernel.run()

    assert len(rounds_done) == 12
    # generations are strict: nobody enters round N+1 before every
    # party finished round N
    for i in range(4):
        chunk = rounds_done[i * 3:(i + 1) * 3]
        assert {r for r, _ in chunk} == {i}
    assert barrier._generation == 4
    assert barrier._count == 0


def test_barrier_late_arrival_does_not_join_a_released_generation():
    order = []
    with SimKernel() as kernel:
        barrier = SimBarrier(kernel, 2)

        def fast(p):
            barrier.wait(p)
            order.append("fast-r1")
            barrier.wait(p)
            order.append("fast-r2")

        def slow(p):
            p.sleep(1.0)
            barrier.wait(p)
            order.append("slow-r1")
            p.sleep(1.0)
            barrier.wait(p)
            order.append("slow-r2")

        kernel.spawn(fast, name="fast")
        kernel.spawn(slow, name="slow")
        kernel.run()
    assert order.index("fast-r2") > order.index("slow-r1")
    assert set(order) == {"fast-r1", "fast-r2", "slow-r1", "slow-r2"}


# ----------------------------------------------------------------------
# MatchQueue: unmatched items at shutdown
# ----------------------------------------------------------------------
def test_matchqueue_unmatched_at_shutdown_cleans_waiters():
    """A consumer whose predicate never matches stays blocked when the
    heap drains; shutdown must terminate it AND leave the queue's
    waiter list empty (no ghost entries) with the unmatched items still
    queued and inspectable."""
    kernel = SimKernel()
    mq = MatchQueue(kernel)

    def picky(p):
        mq.get(p, predicate=lambda item: item == "unicorn")

    def producer(p):
        for item in ("apple", "banana"):
            mq.put(item)
            p.yield_()

    picky_proc = kernel.spawn(picky, name="picky")
    kernel.spawn(producer, name="producer")
    kernel.run()

    # blocked forever: predicate unmatched, items retained
    assert picky_proc.alive
    assert len(mq) == 2
    assert [proc for proc, _ in wait_edges(kernel)] == [picky_proc]

    kernel.shutdown()
    assert not picky_proc.alive
    assert len(mq._waiters) == 0, "shutdown left a ghost waiter queued"
    assert mq.get_nowait() == "apple"  # unmatched items survive intact
    assert mq.get_nowait() == "banana"


def test_matchqueue_timeout_keeps_unmatched_items():
    with SimKernel() as kernel:
        mq = MatchQueue(kernel)
        mq.put("other")

        def picky(p):
            with pytest.raises(SimTimeout):
                mq.get(p, predicate=lambda item: item == "wanted",
                       timeout=0.5)

        kernel.spawn(picky, name="picky")
        kernel.run()
        assert len(mq) == 1
        assert len(mq._waiters) == 0


# ----------------------------------------------------------------------
# deadlock wait-for graph
# ----------------------------------------------------------------------
def test_deadlock_error_renders_the_wait_for_graph():
    kernel = SimKernel()
    lock_a = SimLock(kernel)
    lock_b = SimLock(kernel)

    def leg(p, first, second):
        first.acquire(p)
        p.sleep(0.1)
        second.acquire(p)  # classic AB/BA deadlock
        second.release(p)
        first.release(p)

    p1 = kernel.spawn(leg, lock_a, lock_b, name="ab")
    kernel.spawn(leg, lock_b, lock_a, name="ba")

    with pytest.raises(SimDeadlockError) as info:
        kernel.run_until_complete(p1)
    message = str(info.value)
    assert "wait-for graph:" in message
    assert "ab waits on" in message and "ba waits on" in message
    # each lock line names the process currently holding it
    assert "held by 'ba'" in message and "held by 'ab'" in message
    kernel.shutdown()


def test_wait_graph_names_mailbox_roles():
    kernel = SimKernel()
    box = Mailbox(kernel, capacity=1)

    def overfill(p):
        box.put(p, 1)
        box.put(p, 2)  # blocks: full, nobody drains

    def starve(p):
        box.get(p)
        box.get(p)
        box.get(p)  # blocks: empty after draining both puts

    kernel.spawn(overfill, name="writer")
    kernel.spawn(starve, name="reader", delay=1.0)
    kernel.run()
    graph = format_wait_graph(kernel)
    assert "reader waits on" in graph
    assert "[get side]" in graph
    assert "Mailbox#" in graph
    kernel.shutdown()


def test_wait_graph_reports_join_targets():
    kernel = SimKernel()
    mq = MatchQueue(kernel)

    def stuck(p):
        mq.get(p)

    def joiner(p):
        p.join(stuck_proc)

    stuck_proc = kernel.spawn(stuck, name="stuck")
    kernel.spawn(joiner, name="joiner")
    kernel.run()
    graph = format_wait_graph(kernel)
    assert "joiner waits on join on process 'stuck'" in graph
    assert "0 unmatched item(s)" in graph
    kernel.shutdown()
