"""Timed waits: SimTimeout semantics on sync primitives."""

import pytest

from repro.sim import Mailbox, MatchQueue, SimKernel, SimTimeout, WaitQueue


def test_mailbox_get_times_out_at_deadline():
    with SimKernel() as k:
        box = Mailbox(k)
        out = {}

        def consumer(p):
            try:
                box.get(p, timeout=2.0)
            except SimTimeout:
                out["t"] = k.now

        k.spawn(consumer)
        k.run()
        assert out["t"] == 2.0


def test_mailbox_get_returns_before_timeout():
    with SimKernel() as k:
        box = Mailbox(k)
        out = {}

        def consumer(p):
            out["item"] = box.get(p, timeout=5.0)
            out["t"] = k.now

        def producer(p):
            p.sleep(1.0)
            box.put(p, "hello")

        k.spawn(consumer)
        k.spawn(producer)
        k.run()
        assert out == {"item": "hello", "t": 1.0}
        # the timeout timer was cancelled: nothing left at t=5
        assert k.now == 1.0


def test_matchqueue_timeout_with_predicate():
    with SimKernel() as k:
        q = MatchQueue(k)
        out = {}

        def consumer(p):
            try:
                q.get(p, lambda it: it == "wanted", timeout=1.0)
            except SimTimeout:
                out["timed_out"] = k.now

        def producer(p):
            q.put("unwanted")  # wakes the consumer, who re-blocks

        k.spawn(consumer)
        k.spawn(producer)
        k.run()
        assert out["timed_out"] == 1.0


def test_timeout_measured_as_total_budget():
    """Repeated wakeups with non-matching items must not extend the
    deadline."""
    with SimKernel() as k:
        q = MatchQueue(k)
        out = {}

        def consumer(p):
            try:
                q.get(p, lambda it: it == "never", timeout=1.0)
            except SimTimeout:
                out["t"] = k.now

        def producer(p):
            for _ in range(5):
                p.sleep(0.3)
                q.put("noise")

        k.spawn(consumer)
        k.spawn(producer)
        k.run()
        assert out["t"] == pytest.approx(1.0)


def test_waitqueue_timeout_removes_entry():
    with SimKernel() as k:
        wq = WaitQueue(k)
        out = {}

        def waiter(p):
            try:
                wq.wait(p, timeout=0.5)
            except SimTimeout:
                out["len"] = len(wq)

        k.spawn(waiter)
        k.run()
        assert out["len"] == 0


def test_orb_request_timeout():
    """A slow servant triggers SystemException('TIMEOUT') client-side."""
    from repro.corba import OMNIORB4, Orb, SystemException, compile_idl
    from repro.net import Topology, build_cluster
    from repro.padicotm import PadicoRuntime

    topo = Topology()
    build_cluster(topo, "a", 2)
    rt = PadicoRuntime(topo)
    server = rt.create_process("a0", "server")
    client = rt.create_process("a1", "client")
    idl_src = "interface Slow { long work(in double seconds); };"
    s_orb = Orb(server, OMNIORB4, compile_idl(idl_src))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(idl_src))

    class Slow(s_orb.servant_base("Slow")):
        def work(self, seconds):
            rt.kernel.current.sleep(seconds)
            return 1

    url = s_orb.object_to_string(s_orb.poa.activate_object(Slow()))
    out = {}

    def main(proc):
        stub = c_orb.string_to_object(url)
        c_orb.request_timeout = 0.01
        assert stub.work(0.001) == 1   # fast call fits the budget
        try:
            stub.work(1.0)
        except SystemException as e:
            out["minor"] = e.minor
            out["when"] = rt.kernel.now
        # the connection was dropped; a later call reconnects cleanly
        c_orb.request_timeout = None
        out["retry"] = stub.work(0.001)

    client.spawn(main)
    rt.run()
    rt.shutdown()
    assert out["minor"] == "TIMEOUT"
    assert out["when"] == pytest.approx(0.012, abs=2e-3)
    assert out["retry"] == 1
