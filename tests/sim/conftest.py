"""Backend matrix for the kernel tests.

Every test in this directory runs once per available *general-purpose*
switch backend (thread, and greenlet when the optional package is
installed) by pointing ``REPRO_SIM_BACKEND`` at it — the tests construct
kernels normally and inherit the selection.  The trampoline backend is
excluded from the blanket matrix (it rejects nested-frame blocking by
design) and is exercised directly in ``test_backends.py``.
"""

import pytest

from repro.sim.backends import BACKEND_ENV_VAR, available_backends

_MATRIX = [
    pytest.param("thread", id="thread"),
    pytest.param(
        "greenlet", id="greenlet",
        marks=pytest.mark.skipif(
            "greenlet" not in available_backends(),
            reason="greenlet package not installed (repro[sim-fast])")),
]


@pytest.fixture(autouse=True, params=_MATRIX)
def sim_backend(request, monkeypatch):
    """Select the switch backend for every kernel the test constructs."""
    monkeypatch.setenv(BACKEND_ENV_VAR, request.param)
    return request.param
