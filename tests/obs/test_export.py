"""Exporters: Chrome trace_event JSON and the flat metrics dict."""

import json

import pytest

from repro.obs import TraceRecorder, chrome_trace, metrics, write_chrome_trace
from repro.sim import SimKernel
from tests.obs._workload import pingpong


def _recorded_run():
    kernel = SimKernel()
    rec = TraceRecorder()
    with kernel:
        result = pingpong(kernel, monitors=[rec])
    return rec, result


def test_chrome_trace_structure():
    rec, result = _recorded_run()
    assert result == (32 * 1024, 32 * 1024)
    doc = chrome_trace(rec)
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["schema"] == "padico-trace/1"

    by_phase: dict[str, list] = {}
    for event in events:
        by_phase.setdefault(event["ph"], []).append(event)
    # metadata names the pid/tid int ids; complete events carry spans
    assert by_phase["M"], "expected process/thread metadata events"
    assert len(by_phase["X"]) == len(rec.closed_spans())
    ended = sum(1 for r in rec.flow_records() if r.end is not None)
    assert len(by_phase["b"]) == len(by_phase["e"]) == ended > 0
    for event in by_phase["X"]:
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        assert event["dur"] >= 0
        assert "span" in event["args"]
    names = {e["name"] for e in by_phase["X"]}
    assert {"corba.invoke", "vlink.send", "arbitration.send",
            "net.transfer"} <= names


def test_chrome_trace_is_loadable_json_and_deterministic(tmp_path):
    rec_a, _ = _recorded_run()
    rec_b, _ = _recorded_run()
    path_a = tmp_path / "a.json"
    path_b = tmp_path / "b.json"
    write_chrome_trace(rec_a, str(path_a))
    write_chrome_trace(rec_b, str(path_b))
    # byte-for-byte reproducible across identical runs
    assert path_a.read_bytes() == path_b.read_bytes()
    reloaded = json.loads(path_a.read_text())
    assert reloaded["traceEvents"]


def test_metrics_flat_dict():
    rec, _ = _recorded_run()
    flat = metrics(rec)
    spans = flat["spans"]
    assert spans["corba.invoke"]["count"] == 2
    assert spans["corba.invoke"]["total"] > 0
    assert flat["counters"]["giop.requests"] == 2.0
    assert flat["counters"]["giop.replies"] == 2.0
    io = flat["driver_io"]
    assert io["madeleine.send"]["calls"] >= 2
    assert flat["flows"] == len(rec.flows)
    assert flat["context_switches"] > 0
    assert flat["events_fired"] > 0
    # keys are sorted for deterministic serialisation
    assert list(spans) == sorted(spans)
    assert list(flat["counters"]) == sorted(flat["counters"])


def test_empty_recorder_exports_cleanly():
    rec = TraceRecorder()
    doc = chrome_trace(rec)
    assert doc["traceEvents"] == []
    flat = metrics(rec)
    assert flat["spans"] == {}
    assert flat["flows"] == 0
    assert pytest.approx(flat["context_switches"]) == 0
