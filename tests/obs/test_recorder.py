"""TraceRecorder unit behaviour: spans, counters, flows, driver I/O."""

import pytest

from repro.obs import TraceRecorder
from repro.sim import SimKernel


@pytest.fixture()
def kernel():
    k = SimKernel()
    yield k
    k.shutdown()


def test_spans_nest_per_thread(kernel):
    rec = TraceRecorder().bind(kernel)

    def main(p):
        with rec.span("outer"):
            p.sleep(0.001)
            with rec.span("inner", cat="test", detail=42):
                p.sleep(0.002)

    kernel.spawn(main, name="worker")
    kernel.run()

    outer, inner = rec.spans
    assert (outer.name, outer.depth, outer.parent) == ("outer", 0, None)
    assert (inner.name, inner.depth, inner.parent) == ("inner", 1, 0)
    assert inner.attrs == {"detail": 42}
    assert inner.start == pytest.approx(0.001)
    assert inner.duration == pytest.approx(0.002)
    assert outer.duration == pytest.approx(0.003)
    assert all(s.closed for s in rec.spans)
    assert rec.children(outer) == [inner]
    assert rec.roots() == [outer]
    tree = rec.render_tree()
    assert tree.splitlines()[0].startswith("outer")
    assert tree.splitlines()[1].startswith("  inner")


def test_sibling_threads_get_separate_stacks(kernel):
    rec = TraceRecorder().bind(kernel)

    def worker(p, label):
        with rec.span(label):
            p.sleep(0.001)

    kernel.spawn(worker, "a", name="a")
    kernel.spawn(worker, "b", name="b")
    kernel.run()
    assert sorted(s.name for s in rec.roots()) == ["a", "b"]
    # two roots, not one nested under the other
    assert all(s.parent is None for s in rec.spans)
    assert {s.tid for s in rec.spans} == {"a", "b"}


def test_span_end_tolerates_skipped_frames(kernel):
    rec = TraceRecorder().bind(kernel)

    def main(p):
        rec.on_span_start("outer")
        rec.on_span_start("middle")
        rec.on_span_start("leaf")
        p.sleep(0.001)
        rec.on_span_end("outer")  # leaf/middle never ended explicitly

    kernel.spawn(main)
    kernel.run()
    assert all(s.closed for s in rec.spans)
    assert all(s.end == pytest.approx(0.001) for s in rec.spans)


def test_counters_and_gauges(kernel):
    rec = TraceRecorder().bind(kernel)
    assert rec.counter("hits") == 1.0
    assert rec.counter("hits", 2.0) == 3.0
    rec.gauge("depth", 5.0)
    rec.gauge("depth", 2.0)
    assert rec.counters == {"hits": 3.0}
    assert rec.gauges == {"depth": 2.0}
    assert [s.value for s in rec.counter_series] == [1.0, 3.0]
    assert [s.value for s in rec.gauge_series] == [5.0, 2.0]


def test_flow_accounting(kernel):
    rec = TraceRecorder().bind(kernel)
    rec.on_flow_start(1, "a0", "a1", 1000.0, "san")
    rec.on_flow_start(2, "a0", "a2", 500.0, "san")
    rec.on_flow_end(1, ok=True)
    rec.on_flow_end(2, ok=False)
    rec.on_flow_end(99)  # unknown fid: ignored
    records = rec.flow_records()
    assert [r.fid for r in records] == [1, 2]
    assert records[0].ok is True and records[1].ok is False
    # only successful flows add to the fabric roll-up
    assert rec.fabric_bytes == {"san": 1000.0}


def test_driver_io_totals(kernel):
    rec = TraceRecorder().bind(kernel)
    rec.on_driver_io("madeleine", "send", 100.0)
    rec.on_driver_io("madeleine", "send", 50.0)
    rec.on_driver_io("tcp", "recv", 10.0)
    assert rec.driver_io[("madeleine", "send")] == [2.0, 150.0]
    assert rec.driver_io[("tcp", "recv")] == [1.0, 10.0]


def test_unbound_recorder_stamps_time_zero():
    rec = TraceRecorder()
    with rec.span("setup"):
        pass
    span = rec.spans[0]
    assert (span.start, span.end) == (0.0, 0.0)
    assert (span.pid, span.tid) == ("sim", "main")
