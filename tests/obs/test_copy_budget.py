"""Deterministic copy-budget gate (wired into ``make check``).

Replays two paper workloads and pins the ``wire.copied_bytes.*``
counters to committed expected values.  The counters are driven by the
simulation, not the wall clock, so the gate is exact and deterministic:
any new copy on the wire path changes a total and fails CI with the
offending layer in the counter name.

Pre-PR baselines are analytic, recorded here from the pre-zero-copy
implementation of each path (the constants are *floors*: they count
only the full-payload copies and ignore scalar headers, so the real
pre-PR totals were strictly larger).
"""

from __future__ import annotations

import numpy as np

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.corba import OMNIORB4, Orb, compile_idl
from repro.mpi import CollTuning, create_world, spmd
from repro.net import MYRINET_2000, Topology, build_cluster, build_grid
from repro.obs import TraceRecorder
from repro.padicotm import PadicoRuntime

# ---------------------------------------------------------------------------
# §4.4 concurrency workload: 1 MB CORBA push + 1 MB MPI send over one SAN
# ---------------------------------------------------------------------------

_SIZE = 1_000_000

#: pre-PR copies on this workload.  CORBA: the client joined the whole
#: message for the wire (``out.getvalue()``) and the server decode
#: materialised the octet blob — two full-payload copies.  MPI: ``Send``
#: staged an eager copy of the buffer and ``Recv`` copied into the
#: posted buffer — two more.
_PRE_PR_CORBA_COPIED = 2 * _SIZE
_PRE_PR_MPI_COPIED = 2 * _SIZE

#: committed expected values.  CORBA still owes one copy: the octet
#: sequence is handed to user code as owning ``bytes`` (plus 98 bytes
#: of GIOP/request scalar headers across the three invocations).  MPI
#: still owes the copy into the receiver's posted buffer; the 1 MB send
#: is above the rendezvous threshold and rides by reference.
_EXPECTED_CORBA_COPIED = _SIZE + 98
_EXPECTED_MPI_COPIED = _SIZE


def _sharing_counters() -> dict[str, float]:
    idl = """
    module Bench {
        typedef sequence<octet> Blob;
        interface Sink { void push(in Blob data); };
    };
    """
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    recorder = rt.observe(TraceRecorder())
    p0 = rt.create_process("n0", "p0")
    p1 = rt.create_process("n1", "p1")
    s_orb = Orb(p1, OMNIORB4, compile_idl(idl))
    s_orb.start()
    c_orb = Orb(p0, OMNIORB4, compile_idl(idl))

    class Sink(s_orb.servant_base("Bench::Sink")):
        def push(self, data):
            pass

    url = s_orb.object_to_string(s_orb.poa.activate_object(Sink()))
    world = create_world(rt, "bench", [p0, p1])
    gate = 0.001

    def corba_main(proc):
        stub = c_orb.string_to_object(url)
        stub.push(b"")
        proc.sleep(gate - rt.kernel.now)
        stub.push(bytes(_SIZE))

    def mpi_main(proc, comm):
        comm.bind(proc)
        if comm.rank == 0:
            proc.sleep(gate - rt.kernel.now)
            comm.Send(np.zeros(_SIZE, dtype="u1"), dest=1)
        else:
            buf = np.empty(_SIZE, dtype="u1")
            comm.Recv(buf, source=0)

    p0.spawn(corba_main)
    spmd(world, mpi_main)
    rt.run()
    rt.shutdown()
    return recorder.counters


def test_sharing_workload_copy_budget():
    counters = _sharing_counters()
    assert counters["wire.copied_bytes.corba"] == _EXPECTED_CORBA_COPIED
    assert counters["wire.copied_bytes.mpi"] == _EXPECTED_MPI_COPIED
    # the bulk payloads crossed each wire by reference, once per layer
    assert counters["wire.referenced_bytes.corba"] == _SIZE
    assert counters["wire.referenced_bytes.mpi"] == _SIZE
    # and the budget is genuinely below the pre-zero-copy implementation
    assert counters["wire.copied_bytes.corba"] < _PRE_PR_CORBA_COPIED
    assert counters["wire.copied_bytes.mpi"] < _PRE_PR_MPI_COPIED


# ---------------------------------------------------------------------------
# 16 MiB GridCCM scatter: 2 clients block-redistribute to 2 server ranks
# ---------------------------------------------------------------------------

_N = 2
_INTS_PER_RANK = 2 * 1024 * 1024          # 8 MiB per rank, i4
_PAYLOAD = _N * _INTS_PER_RANK * 4        # 16 MiB total

#: pre-PR wire-path copies of the full payload on this scatter (floor,
#: headers excluded): the client gathered every piece with a
#: fancy-index copy, joined the CDR message contiguously for the wire,
#: and the server placed the decoded piece with an index-assignment
#: copy — three full traversals of the 16 MiB.
_PRE_PR_SCATTER_COPIED = 3 * _PAYLOAD

_SCATTER_IDL = """
module Bench {
    typedef sequence<long> IntVector;
    interface Sink { void absorb(in IntVector values); };
    component Endpoint { provides Sink input; };
    home EndpointHome manages Endpoint {};
};
"""

_SCATTER_XML = """
<parallelism component="Bench::Endpoint">
  <port name="input">
    <operation name="absorb">
      <argument name="values" distribution="block"/>
      <result policy="none"/>
    </operation>
  </port>
</parallelism>
"""


class _SinkImpl(ComponentImpl):
    def absorb(self, values):
        self.mpi.Barrier()


def _scatter_deltas() -> dict[str, float]:
    topo = Topology()
    build_cluster(topo, "h", 2 * _N, san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    recorder = rt.observe(TraceRecorder())
    server_procs = [rt.create_process(f"h{i}", f"s{i}")
                    for i in range(_N)]
    comp = ParallelComponent.create(rt, "bench", server_procs,
                                    _SCATTER_IDL, _SCATTER_XML, _SinkImpl,
                                    profile=OMNIORB4)
    url = comp.proxy_url("input")
    client_procs = [rt.create_process(f"h{_N + i}", f"c{i}")
                    for i in range(_N)]
    world = create_world(rt, "clients", client_procs)
    marks: dict[str, dict[str, float]] = {}

    def main(proc, comm):
        idl = compile_idl(_SCATTER_IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(_SCATTER_XML)).compile()
        orb = Orb(client_procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        pc.absorb(np.zeros(1, dtype="i4"))  # warm-up: connections + plans
        comm.barrier()
        if comm.rank == 0:
            marks["before"] = dict(recorder.counters)
        pc.absorb(np.zeros(_INTS_PER_RANK, dtype="i4"))
        comm.barrier()
        if comm.rank == 0:
            marks["after"] = dict(recorder.counters)

    spmd(world, main)
    rt.run()
    rt.shutdown()
    before, after = marks["before"], marks["after"]
    return {k: after.get(k, 0.0) - before.get(k, 0.0)
            for k in after if k.startswith("wire.")}


def test_gridccm_16mib_scatter_copy_budget():
    delta = _scatter_deltas()
    # the one copy left is the server-side placement into the
    # component's local array; gather and marshal ride by reference
    assert delta["wire.copied_bytes.gridccm"] == _PAYLOAD
    assert delta["wire.referenced_bytes.gridccm"] == _PAYLOAD
    # CDR sees the payload twice (marshal segments + unmarshal views),
    # copying only scalar request/reply headers
    assert delta["wire.referenced_bytes.corba"] == 2 * _PAYLOAD
    assert delta["wire.copied_bytes.corba"] == 216
    # acceptance: at most a third of the pre-PR copy traffic
    copied = (delta["wire.copied_bytes.gridccm"]
              + delta.get("wire.copied_bytes.mpi", 0.0))
    assert copied <= _PRE_PR_SCATTER_COPIED / 3


# ---------------------------------------------------------------------------
# hierarchical Bcast on a 2-site grid: leaders forward by reference
# ---------------------------------------------------------------------------

_BCAST_SIZE = 4 * 1024 * 1024


def _grid_bcast_counters() -> dict[str, float]:
    topo, site_hosts = build_grid(sites=2, hosts_per_site=2,
                                  san=MYRINET_2000)
    rt = PadicoRuntime(topo)
    recorder = rt.observe(TraceRecorder())
    procs = [rt.create_process(h, f"p-{h.name}")
             for hs in site_hosts.values() for h in hs]
    world = create_world(rt, "grid", procs, coll=CollTuning(aware=True))

    def main(proc, comm):
        buf = (np.ones(_BCAST_SIZE, dtype="u1") if comm.rank == 0
               else np.empty(_BCAST_SIZE, dtype="u1"))
        comm.Bcast(buf, root=0)
        assert buf[0] == 1 and buf[-1] == 1

    spmd(world, main)
    rt.run()
    rt.shutdown()
    return recorder.counters


def test_hierarchical_bcast_copy_budget():
    """The topology-aware Bcast must not re-stage at the site leaders:
    the root stages one rendezvous reference and every edge of the
    two-level tree (root->remote leader over the WAN, both intra-site
    hops) forwards that same reference.  The only copies are each
    receiver's placement into its posted buffer."""
    counters = _grid_bcast_counters()
    receivers = 3
    # staged exactly once, at the root — leaders never re-stage even
    # though the payload crosses three wires (WAN + both site SANs)
    assert counters["wire.referenced_bytes.mpi"] == _BCAST_SIZE
    assert counters["wire.copied_bytes.mpi"] == receivers * _BCAST_SIZE
