"""Shared observability-test workload: a GIOP ping-pong between two
PadicoTM processes over Myrinet (the Figure-7 shape), parameterised by
an optional pre-attached recorder."""

from __future__ import annotations

from repro.corba import OMNIORB4, Orb, compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module Obs { typedef sequence<octet> Blob;
             interface Echo { Blob bounce(in Blob data); }; };
"""


def pingpong(kernel, monitors=(), rounds=2, size=32 * 1024, setup=None):
    """Run the ping-pong on ``kernel``; returns the echoed lengths.

    ``setup(rt)``, when given, runs after the monitors attach — the
    hook tests use it to install observers that need the runtime
    itself (e.g. a Sanitizer).
    """
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo, kernel=kernel)
    for monitor in monitors:
        rt.observe(monitor)
    if setup is not None:
        setup(rt)
    server = rt.create_process("n0", "server")
    client = rt.create_process("n1", "client")
    s_orb = Orb(server, OMNIORB4, compile_idl(IDL))
    s_orb.start()
    c_orb = Orb(client, OMNIORB4, compile_idl(IDL))

    class Echo(s_orb.servant_base("Obs::Echo")):
        def bounce(self, data):
            return data

    url = s_orb.object_to_string(s_orb.poa.activate_object(Echo()))
    out: list[int] = []

    def main(proc):
        stub = c_orb.string_to_object(url)
        for _ in range(rounds):
            out.append(len(stub.bounce(bytes(size))))

    client.spawn(main)
    rt.run()
    return tuple(out)
