"""The observability contract: recording never changes what runs.

A run with a recorder attached must be bit-for-bit identical (result,
final virtual time, event count) to the same run without one, and both
must survive seeded schedule permutation — the same gate sim-san uses.
The recorder must also compose with the sanitizer: both attached at
once, deterministic hook order, neither perturbing the other.
"""

from repro.obs import TraceRecorder
from repro.sanitizer import Sanitizer
from repro.sanitizer.explore import assert_schedule_deterministic
from repro.sim import SimKernel
from tests.obs._workload import pingpong


def _run(monitors=(), setup=None):
    kernel = SimKernel()
    with kernel:
        result = pingpong(kernel, monitors=monitors, setup=setup)
    return result, kernel.now, kernel.events_processed


def test_recorder_does_not_perturb_the_schedule():
    plain = _run()
    rec = TraceRecorder()
    recorded = _run(monitors=[rec])
    # same echoes, same final virtual time, same event count
    assert recorded == plain
    assert rec.spans, "the recorder should still have observed the run"


def test_unobserved_run_is_schedule_deterministic():
    # the acceptance gate: no recorder attached, 5 seeded permutations,
    # every fingerprint identical to the canonical order
    report = assert_schedule_deterministic(lambda k: pingpong(k), seeds=5)
    assert report.deterministic


def test_observed_run_is_schedule_deterministic():
    report = assert_schedule_deterministic(
        lambda k: pingpong(k, monitors=[TraceRecorder()]), seeds=3)
    assert report.deterministic


def test_obs_composes_with_sanitizer():
    plain = _run()
    rec = TraceRecorder()
    installed = []
    recorded = _run(monitors=[rec],
                    setup=lambda rt: installed.append(Sanitizer(runtime=rt)))
    assert recorded == plain
    san = installed[0]
    assert san.races == []
    # both observers were live on the same runtime at once
    assert any(s.name == "corba.invoke" for s in rec.spans)
    assert san.monitor is not None


def test_sanitizer_uninstall_leaves_recorder_attached():
    kernel = SimKernel()
    rec = TraceRecorder()
    sans = []

    def setup(rt):
        sans.append(Sanitizer(runtime=rt))
        sans[0].uninstall()
        # the fan collapses back to the lone recorder, not to None
        assert rt.monitor is not None
        assert rt.kernel.tracer is rec

    with kernel:
        pingpong(kernel, monitors=[rec], setup=setup)
    assert any(s.name == "corba.invoke" for s in rec.spans)
