"""The runtime attach/detach protocol: observe, unobserve, trace()."""

import pytest

from repro.net import Topology, build_cluster
from repro.obs import TraceRecorder
from repro.padicotm import PadicoRuntime


@pytest.fixture()
def runtime():
    topo = Topology()
    build_cluster(topo, "n", 2)
    rt = PadicoRuntime(topo)
    yield rt
    rt.shutdown()


class _Probe:
    """Minimal monitor: records which hooks fired."""

    def __init__(self, label):
        self.label = label
        self.calls = []
        self.attached_to = None

    def on_attach(self, runtime):
        self.attached_to = runtime

    def on_detach(self, runtime):
        self.attached_to = None

    def on_span_start(self, name, cat="", **attrs):
        self.calls.append(("start", name))

    def on_span_end(self, name, **attrs):
        self.calls.append(("end", name))


def test_no_monitor_by_default(runtime):
    assert runtime.monitor is None
    assert runtime.network.monitor is None
    assert runtime.kernel.tracer is None


def test_observe_and_unobserve(runtime):
    probe = _Probe("a")
    runtime.observe(probe)
    assert runtime.monitor is not None
    assert runtime.network.monitor is runtime.monitor
    assert probe.attached_to is runtime
    runtime.monitor.on_span_start("x")
    runtime.monitor.on_span_end("x")
    assert probe.calls == [("start", "x"), ("end", "x")]

    runtime.unobserve(probe)
    assert runtime.monitor is None
    assert runtime.network.monitor is None
    assert probe.attached_to is None
    runtime.unobserve(probe)  # idempotent


def test_duplicate_observe_rejected(runtime):
    probe = _Probe("a")
    runtime.observe(probe)
    with pytest.raises(ValueError):
        runtime.observe(probe)


def test_fan_dispatches_to_all_monitors_in_order(runtime):
    first, second = _Probe("first"), _Probe("second")
    runtime.observe(first)
    runtime.observe(second)
    runtime.monitor.on_span_start("op")
    assert first.calls == [("start", "op")]
    assert second.calls == [("start", "op")]

    # a monitor lacking a hook is skipped, others still fire
    class Partial:
        pass

    runtime.observe(Partial())
    runtime.monitor.on_span_end("op")
    assert first.calls[-1] == ("end", "op")
    assert second.calls[-1] == ("end", "op")

    runtime.unobserve(first)
    runtime.monitor.on_span_start("op2")
    assert first.calls[-1] == ("end", "op")  # detached: no new calls
    assert second.calls[-1] == ("start", "op2")


def test_legacy_monitor_setter_is_deprecated(runtime):
    probe = _Probe("legacy")
    with pytest.warns(DeprecationWarning, match="observe"):
        runtime.monitor = probe
    # the delegation to observe() still works for stragglers
    assert probe.attached_to is runtime
    runtime.monitor.on_span_start("x")
    assert probe.calls == [("start", "x")]
    # assigning None clears everything (the pre-observe idiom)
    with pytest.warns(DeprecationWarning, match="observe"):
        runtime.monitor = None
    assert runtime.monitor is None
    assert probe.attached_to is None


def test_recorder_attach_installs_kernel_tracer(runtime):
    recorder = TraceRecorder()
    runtime.observe(recorder)
    assert runtime.kernel.tracer is recorder
    assert recorder.now == runtime.kernel.now
    runtime.unobserve(recorder)
    assert runtime.kernel.tracer is None


def test_trace_context_manager(runtime):
    with runtime.trace() as recorder:
        assert isinstance(recorder, TraceRecorder)
        assert runtime.monitor is not None
        assert runtime.kernel.tracer is recorder
    # detached on exit, recorder still usable
    assert runtime.monitor is None
    assert runtime.kernel.tracer is None
    assert recorder.spans == []
