"""BenchResult and the ``padico-bench/1`` document schema."""

import json

import pytest

from repro.obs import (BENCH_SCHEMA, BenchResult, BenchSchemaError,
                       bench_document, validate_bench_doc, write_bench_json)


def _curve():
    return BenchResult(name="corba.bandwidth", unit="MB/s",
                       points=((1024, 10), (4096, 40.5)),
                       meta={"orb": "omniORB4"})


def test_mapping_style_access():
    r = _curve()
    assert r[1024] == 10.0
    assert isinstance(r[1024], float)  # ints coerced on construction
    assert 4096 in r and 9999 not in r
    assert list(r) == [1024, 4096]
    assert len(r) == 2
    assert r.xs == (1024, 4096)
    assert r.values() == (10.0, 40.5)
    assert r.items() == ((1024, 10.0), (4096, 40.5))
    with pytest.raises(KeyError):
        r[123]


def test_json_round_trip_and_render():
    r = _curve()
    assert BenchResult.from_json(r.to_json()) == r
    assert r.render().startswith("corba.bandwidth [MB/s]:")
    # meta keys serialise sorted for byte-stable documents
    multi = BenchResult("x", "u", ((1, 1),), meta={"b": 2, "a": 1})
    assert list(multi.to_json()["meta"]) == ["a", "b"]


def test_document_write_and_validate(tmp_path):
    path = tmp_path / "BENCH_padico.json"
    write_bench_json(str(path), [_curve()], meta={"mode": "quick"})
    doc = json.loads(path.read_text())
    assert doc["schema"] == BENCH_SCHEMA
    assert doc["meta"] == {"mode": "quick"}
    assert validate_bench_doc(doc) == ["corba.bandwidth"]


def test_document_meta_defaults_empty():
    doc = bench_document([_curve()])
    assert doc["meta"] == {}
    assert validate_bench_doc(doc) == ["corba.bandwidth"]


def _valid_doc():
    return bench_document([_curve()], meta={"mode": "quick"})


@pytest.mark.parametrize("corrupt, fragment", [
    (lambda d: [], "must be an object"),
    (lambda d: {**d, "schema": "padico-bench/0"}, "schema must be"),
    (lambda d: {**d, "meta": None}, "meta must be an object"),
    (lambda d: {**d, "results": []}, "non-empty list"),
    (lambda d: {**d, "results": ["x"]}, "results[0] must be an object"),
    (lambda d: {**d, "results": [{**d["results"][0], "name": ""}]},
     "name must be a non-empty string"),
    (lambda d: {**d, "results": [{**d["results"][0], "unit": None}]},
     "unit must be a string"),
    (lambda d: {**d, "results": [{**d["results"][0], "points": []}]},
     "points must be a non-empty list"),
    (lambda d: {**d, "results": [{**d["results"][0], "points": [[1]]}]},
     "must be an [x, value] pair"),
    (lambda d: {**d, "results": [{**d["results"][0],
                                  "points": [[1, "fast"]]}]},
     "must be a number"),
    (lambda d: {**d, "results": [{**d["results"][0],
                                  "points": [[1, True]]}]},
     "must be a number"),  # bools are not measurements
])
def test_validate_rejects_malformed(corrupt, fragment):
    with pytest.raises(BenchSchemaError) as err:
        validate_bench_doc(corrupt(_valid_doc()))
    assert fragment in str(err.value)
