"""Span nesting across the full stack: one GIOP call over a VLink on
Madeleine must render as middleware -> abstraction -> arbitration ->
link-level spans, parented correctly in the recorder."""

from repro.obs import TraceRecorder
from repro.sim import SimKernel
from tests.obs._workload import pingpong


def _record():
    kernel = SimKernel()
    rec = TraceRecorder()
    with kernel:
        pingpong(kernel, monitors=[rec], rounds=1)
    return rec


def _ancestry(rec, span):
    names = []
    while span.parent is not None:
        span = rec.spans[span.parent]
        names.append(span.name)
    return names


def test_net_transfer_nests_under_the_full_send_path():
    rec = _record()
    transfers = [s for s in rec.spans if s.name == "net.transfer"]
    assert transfers, "the run must reach the link level"
    chains = [_ancestry(rec, s) for s in transfers]
    # request path: the link-level transfer sits inside the driver send,
    # inside the VLink send, inside the client's CORBA invocation
    assert any(c[:2] == ["arbitration.send", "vlink.send"]
               and "corba.invoke" in c for c in chains), chains
    # reply path: same stack, but rooted in the server-side dispatch
    assert any(c[:2] == ["arbitration.send", "vlink.send"]
               and "corba.dispatch" in c for c in chains), chains


def test_depth_matches_parent_chain():
    rec = _record()
    for span in rec.spans:
        assert span.depth == len(_ancestry(rec, span))
        if span.parent is not None:
            parent = rec.spans[span.parent]
            assert parent.start <= span.start
            assert span.end <= parent.end


def test_madeleine_driver_identified_on_the_wire_spans():
    rec = _record()
    wire = [s for s in rec.spans
            if s.name == "arbitration.send" and s.attrs.get("driver")]
    assert wire
    # the n0 <-> n1 SAN hop is the Madeleine fabric
    assert {s.attrs["driver"] for s in wire} == {"madeleine"}
