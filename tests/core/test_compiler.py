"""GridCCM compiler: parallelism XML + internal interface generation."""

import pytest

from repro.core import (
    GridCcmCompiler,
    ParallelismDescriptor,
    ParallelismError,
)
from repro.corba import compile_idl
from repro.corba.idl.types import ObjRefType, SequenceType, StringType

IDL = """
module App {
    typedef sequence<double> Vector;
    struct Meta { string name; };
    interface Compute {
        double norm2(in Vector values);
        void store(in Vector values, in string tag);
        Vector scale(in Vector values, in double factor);
        void notag(in Meta m);
        oneway void fire(in Vector values);
        void outparam(in Vector values, out long n);
    };
    component Solver {
        provides Compute input;
        uses Compute peer;
    };
    home SolverHome manages Solver {};
};
"""

XML = """
<parallelism component="App::Solver">
  <port name="input">
    <operation name="norm2">
      <argument name="values" distribution="block"/>
      <result policy="sum"/>
    </operation>
    <operation name="store">
      <argument name="values" distribution="cyclic"/>
      <result policy="none"/>
    </operation>
  </port>
</parallelism>
"""


def _compile(xml=XML):
    idl = compile_idl(IDL)
    desc = ParallelismDescriptor.parse(xml)
    return idl, GridCcmCompiler(idl, desc).compile()


def test_descriptor_parsing():
    desc = ParallelismDescriptor.parse(XML)
    assert desc.component == "App::Solver"
    assert desc.ports() == ["input"]
    spec = desc.spec_for("input", "norm2")
    assert spec.result_policy == "sum"
    assert spec.args[0].distribution == "block"
    assert desc.spec_for("input", "store").args[0].distribution == "cyclic"
    assert desc.spec_for("input", "nope") is None


@pytest.mark.parametrize("bad_xml,msg", [
    ("<nope/>", "expected <parallelism>"),
    ("<parallelism/>", "component name"),
    ('<parallelism component="C"/>', "no parallel operations"),
    ('<parallelism component="C"><port><operation name="x"/></port>'
     '</parallelism>', "needs a name"),
    ('<parallelism component="C"><port name="p">'
     '<operation name="x"><argument name="a" distribution="hexagonal"/>'
     '</operation></port></parallelism>', "unknown distribution"),
    ('<parallelism component="C"><port name="p">'
     '<operation name="x"><argument name="a" '
     'distribution="block-cyclic"/></operation></port></parallelism>',
     "blocksize"),
    ("garbage<", "malformed"),
])
def test_descriptor_validation(bad_xml, msg):
    with pytest.raises(ParallelismError) as ei:
        ParallelismDescriptor.parse(bad_xml)
    assert msg in str(ei.value)


def test_internal_interface_shape():
    idl, plan = _compile()
    internal = plan.internal_interfaces["input"]
    assert internal.scoped_name == "App::GridCCM_Compute"
    assert internal.scoped_name in idl.interfaces  # registered
    op = internal.operations["norm2"]
    names = [n for n, _d, _t in op.params]
    assert names == ["gridccm_request", "gridccm_src_rank",
                     "gridccm_src_parts", "gridccm_expected",
                     "values_total", "values_chunk"]
    # the chunk keeps the user's sequence type
    chunk_t = dict((n, t) for n, _d, t in op.params)["values_chunk"]
    assert isinstance(chunk_t, SequenceType)
    # plain args pass through untouched
    store = internal.operations["store"]
    store_names = [n for n, _d, _t in store.params]
    assert store_names[-1] == "tag"
    assert isinstance(dict((n, t) for n, _d, t in store.params)["tag"],
                      StringType)


def test_proxy_interface_extends_original():
    idl, plan = _compile()
    proxy = plan.proxy_interfaces["input"]
    assert proxy.bases == ["App::Compute"]
    assert "norm2" in proxy.operations      # inherited: sequential clients
    assert "gridccm_size" in proxy.operations
    node_op = proxy.operations["gridccm_node"]
    assert node_op.return_type == ObjRefType("App::GridCCM_Compute")


def test_emit_internal_idl_text():
    _idl, plan = _compile()
    text = plan.emit_internal_idl()
    assert "interface GridCCM_Compute" in text
    assert "gridccm_request" in text
    assert "sequence<double> values_chunk" in text
    assert "interface GridCCMProxy_Compute : App::Compute" in text


def test_original_interface_untouched():
    """Paper constraint: 'the IDL is not modified'."""
    idl, plan = _compile()
    original = idl.interface("App::Compute")
    op = original.operations["norm2"]
    assert [n for n, _d, _t in op.params] == ["values"]


@pytest.mark.parametrize("xml,msg", [
    # unknown port
    ('<parallelism component="App::Solver"><port name="ghost">'
     '<operation name="norm2"><argument name="values"/></operation>'
     '</port></parallelism>', "no provides port"),
    # uses port is not a provides port
    ('<parallelism component="App::Solver"><port name="peer">'
     '<operation name="norm2"><argument name="values"/></operation>'
     '</port></parallelism>', "no provides port"),
    # unknown operation
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="ghost"><argument name="values"/></operation>'
     '</port></parallelism>', "no operation"),
    # unknown argument
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="norm2"><argument name="ghost"/></operation>'
     '</port></parallelism>', "no parameter"),
    # non-sequence argument
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="notag"><argument name="m"/></operation>'
     '</port></parallelism>', "only sequences"),
    # oneway op
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="fire"><argument name="values"/></operation>'
     '</port></parallelism>', "oneway"),
    # out param
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="outparam"><argument name="values"/></operation>'
     '</port></parallelism>', "out/inout"),
    # sum on void
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="store"><argument name="values"/>'
     '<result policy="sum"/></operation></port></parallelism>',
     "'sum' on a void"),
    # concat on scalar
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="norm2"><argument name="values"/>'
     '<result policy="concat"/></operation></port></parallelism>',
     "'concat' needs a sequence"),
    # no distributed argument at all
    ('<parallelism component="App::Solver"><port name="input">'
     '<operation name="norm2"/></port></parallelism>',
     "at least one distributed"),
])
def test_compiler_rejects_invalid_specs(xml, msg):
    idl = compile_idl(IDL)
    desc = ParallelismDescriptor.parse(xml)
    with pytest.raises(ParallelismError) as ei:
        GridCcmCompiler(idl, desc).compile()
    assert msg in str(ei.value)


def test_unknown_component_rejected():
    idl = compile_idl(IDL)
    desc = ParallelismDescriptor.parse(
        XML.replace("App::Solver", "App::Ghost"))
    from repro.corba.idl import IdlError
    with pytest.raises(IdlError):
        GridCcmCompiler(idl, desc).compile()
