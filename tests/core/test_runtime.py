"""GridCCM runtime integration: parallel components end-to-end."""

import numpy as np
import pytest

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.corba import MICO, OMNIORB4, Orb, compile_idl
from repro.mpi import create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module App {
    typedef sequence<double> Vector;
    interface Compute {
        double norm2(in Vector values);
        void store(in Vector values);
        Vector scale(in Vector values, in double factor);
        string info();
    };
    component Solver {
        provides Compute input;
    };
    home SolverHome manages Solver {};
};
"""

PAR_XML = """
<parallelism component="App::Solver">
  <port name="input">
    <operation name="norm2">
      <argument name="values" distribution="block"/>
      <result policy="sum"/>
    </operation>
    <operation name="store">
      <argument name="values" distribution="block"/>
      <result policy="none"/>
    </operation>
    <operation name="scale">
      <argument name="values" distribution="block"/>
      <result policy="concat"/>
    </operation>
  </port>
</parallelism>
"""


class SolverImpl(ComponentImpl):
    def __init__(self):
        self.stored = None
        self.calls = 0

    def norm2(self, values):
        self.calls += 1
        self.mpi.Barrier()  # the paper's Figure-8 workload
        return float(np.sum(values * values))

    def store(self, values):
        self.calls += 1
        self.stored = np.array(values)
        self.mpi.Barrier()

    def scale(self, values, factor):
        self.calls += 1
        return values * factor

    def info(self):
        return f"rank {self.grid_rank}/{self.grid_size}"


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 8)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def _deploy(rt, n_servers, hosts_offset=0, profile=OMNIORB4,
            par_xml=PAR_XML, impl=SolverImpl):
    servers = [rt.create_process(f"a{hosts_offset + i}", f"srv{i}")
               for i in range(n_servers)]
    return ParallelComponent.create(rt, "solver", servers, IDL, par_xml,
                                    impl, profile=profile)


def _parallel_clients(rt, n_clients, hosts_offset):
    procs = [rt.create_process(f"a{hosts_offset + i}", f"cli{i}")
             for i in range(n_clients)]
    return procs, create_world(rt, "cw", procs)


def _client_plan():
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(
        idl, ParallelismDescriptor.parse(PAR_XML)).compile()
    return idl, plan


@pytest.mark.parametrize("n_clients,n_servers", [
    (1, 1), (1, 4), (2, 2), (2, 4), (4, 2), (3, 4),
])
def test_parallel_invocation_matrix(rt, n_clients, n_servers):
    """N client ranks invoke an M-node component; data and reductions
    must be exact for every N→M combination."""
    comp = _deploy(rt, n_servers)
    url = comp.proxy_url("input")
    procs, world = _parallel_clients(rt, n_clients, n_servers)
    total = 120
    full = np.arange(total, dtype="f8")
    results = []

    def body(proc, comm):
        idl, plan = _client_plan()
        orb = Orb(procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        from repro.core.distribution import BlockDistribution
        dist = BlockDistribution(comm.size, total)
        local = full[dist.start(comm.rank):dist.end(comm.rank)]
        s = pc.norm2(local)
        pc.store(local)
        scaled = pc.scale(local, 3.0)
        results.append((comm.rank, s, scaled))

    spmd(world, body)
    rt.run()
    expected = float(np.sum(full ** 2))
    assert len(results) == n_clients
    for _rank, s, scaled in results:
        assert s == pytest.approx(expected)
        assert np.allclose(scaled, full * 3.0)
    # the component's nodes hold the full array, block-distributed
    stored = np.concatenate([e.stored for e in comp.executors()])
    assert np.array_equal(stored, full)
    # each op ran exactly three times on every node
    assert all(e.calls == 3 for e in comp.executors())


def test_sequential_client_through_proxy(rt):
    """Interoperability claim: a standard sequential client sees a
    normal CORBA interface; the proxy scatters and gathers."""
    comp = _deploy(rt, 4)
    url = comp.proxy_url("input")
    cli = rt.create_process("a4", "seqcli")
    idl, _plan = _client_plan()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}

    def body(proc):
        stub = orb.string_to_object(url)  # typed proxy stub
        full = np.arange(40, dtype="f8")
        out["norm"] = stub.norm2(full)
        out["scaled"] = stub.scale(full, 2.0)
        out["info"] = stub.info()

    cli.spawn(body)
    rt.run()
    assert out["norm"] == pytest.approx(np.sum(np.arange(40.0) ** 2))
    assert np.allclose(out["scaled"], np.arange(40.0) * 2.0)
    assert out["info"] == "rank 0/4"  # passthrough hits node 0
    # yet the data was truly distributed: every node computed
    assert all(e.calls >= 1 for e in comp.executors())


def test_parallel_aware_client_via_attach_sequential(rt):
    """ParallelClient with comm=None behaves like the proxy path but
    talks to the nodes directly."""
    comp = _deploy(rt, 3)
    url = comp.proxy_url("input")
    cli = rt.create_process("a4", "cli")
    idl, plan = _client_plan()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}

    def body(proc):
        pc = ParallelClient.attach(orb, plan, "input", url)
        assert pc.n_nodes == 3
        full = np.arange(30, dtype="f8")
        out["norm"] = pc.norm2(full)
        out["info"] = pc.info()

    cli.spawn(body)
    rt.run()
    assert out["norm"] == pytest.approx(np.sum(np.arange(30.0) ** 2))
    assert out["info"] == "rank 0/3"


def test_short_array_kicks_idle_nodes(rt):
    """total < m: some nodes receive no data but the SPMD op (with its
    barrier) must still run everywhere."""
    comp = _deploy(rt, 4)
    url = comp.proxy_url("input")
    cli = rt.create_process("a4", "cli")
    idl, plan = _client_plan()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}

    def body(proc):
        pc = ParallelClient.attach(orb, plan, "input", url)
        out["norm"] = pc.norm2(np.array([3.0, 4.0]))

    cli.spawn(body)
    rt.run()
    assert out["norm"] == pytest.approx(25.0)
    assert all(e.calls == 1 for e in comp.executors())
    sizes = [len(e.stored) if e.stored is not None else 0
             for e in comp.executors()]
    del sizes  # store() not called here; the barrier covered by calls


def test_cyclic_distribution_target(rt):
    """The component may declare a cyclic distribution; the layer must
    deal block→cyclic chunks correctly."""
    xml = PAR_XML.replace('name="values" distribution="block"',
                          'name="values" distribution="cyclic"', 1)
    comp = _deploy(rt, 2, par_xml=xml)
    url = comp.proxy_url("input")
    cli = rt.create_process("a4", "cli")
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(idl, ParallelismDescriptor.parse(xml)).compile()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}

    def body(proc):
        pc = ParallelClient.attach(orb, plan, "input", url)
        out["norm"] = pc.norm2(np.arange(6, dtype="f8"))

    cli.spawn(body)
    rt.run()
    assert out["norm"] == pytest.approx(float(np.sum(np.arange(6.0) ** 2)))


def test_wrong_chunk_size_rejected(rt):
    from repro.core.runtime import GridCcmError

    comp = _deploy(rt, 2)
    url = comp.proxy_url("input")
    procs, world = _parallel_clients(rt, 2, 2)
    failures = []

    def body(proc, comm):
        idl, plan = _client_plan()
        orb = Orb(procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        # rank 0 passes too many elements for the canonical block split
        local = np.zeros(7 if comm.rank == 0 else 3)
        try:
            pc.norm2(local)
        except GridCcmError:
            failures.append(comm.rank)

    spmd(world, body)
    rt.run()
    assert failures == [0, 1]


def test_server_exception_propagates_to_all_clients(rt):
    class FailingSolver(SolverImpl):
        def norm2(self, values):
            raise RuntimeError("solver blew up")

    comp = _deploy(rt, 2, impl=FailingSolver)
    url = comp.proxy_url("input")
    procs, world = _parallel_clients(rt, 2, 2)
    caught = []

    def body(proc, comm):
        idl, plan = _client_plan()
        orb = Orb(procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        from repro.corba import SystemException
        try:
            pc.norm2(np.zeros(10))
        except SystemException as e:
            caught.append((comm.rank, "blew up" in e.detail))

    spmd(world, body)
    rt.run()
    assert sorted(caught) == [(0, True), (1, True)]


def test_gridccm_aggregate_bandwidth_scales(rt):
    """Figure-8 shape: n→n aggregate bandwidth grows ~linearly when each
    pair has its own host (one process per machine here)."""
    measured = {}
    for n, offset in ((1, 0), (2, 2)):
        topo = Topology()
        build_cluster(topo, "h", 2 * n)
        local_rt = PadicoRuntime(topo)
        servers = [local_rt.create_process(f"h{i}", f"s{i}")
                   for i in range(n)]
        comp = ParallelComponent.create(local_rt, "solver", servers, IDL,
                                        PAR_XML, SolverImpl, profile=MICO)
        url = comp.proxy_url("input")
        procs = [local_rt.create_process(f"h{n + i}", f"c{i}")
                 for i in range(n)]
        world = create_world(local_rt, "cw", procs)
        size = 1_000_000  # doubles per rank
        t = {}

        def body(proc, comm, n=n, url=url, procs=procs, t=t):
            idl, plan = _client_plan()
            orb = Orb(procs[comm.rank], MICO, idl)
            pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
            local = np.zeros(size)
            pc.store(local[:n])  # warm up connections
            comm.barrier()
            t0 = comm.Wtime()
            pc.store(local)
            comm.barrier()
            if comm.rank == 0:
                t["elapsed"] = comm.Wtime() - t0

        spmd(world, body)
        local_rt.run()
        measured[n] = n * size * 8 / t["elapsed"]
        local_rt.shutdown()
    # per-pair bandwidth in the 43 MB/s régime, aggregate ~doubles
    assert measured[1] / 1e6 == pytest.approx(43, rel=0.10)
    assert measured[2] > measured[1] * 1.7
