"""Property-based end-to-end GridCCM: random group sizes, lengths and
target distributions must always deliver exact data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
)
from repro.core.distribution import BlockDistribution, make_distribution
from repro.corba import OMNIORB4, Orb, compile_idl
from repro.mpi import create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module P {
    typedef sequence<double> Vector;
    interface Sum {
        double total(in Vector values);
    };
    component Acc { provides Sum input; };
    home AccHome manages Acc {};
};
"""

XML_TEMPLATE = """
<parallelism component="P::Acc">
  <port name="input">
    <operation name="total">
      <argument name="values" distribution="{dist}"{bs}/>
      <result policy="sum"/>
    </operation>
  </port>
</parallelism>
"""


class AccImpl(ComponentImpl):
    def total(self, values):
        self.mpi.Barrier()
        return float(np.sum(values))


def _xml(dist: str, block_size: int | None) -> str:
    bs = f' blocksize="{block_size}"' if block_size else ""
    return XML_TEMPLATE.format(dist=dist, bs=bs)


@settings(max_examples=12, deadline=None)
@given(
    n_clients=st.integers(1, 3),
    n_servers=st.integers(1, 4),
    total=st.integers(0, 200),
    dist=st.sampled_from(["block", "cyclic", "block-cyclic"]),
    block_size=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
def test_gridccm_sum_exact_for_any_shape(n_clients, n_servers, total,
                                         dist, block_size, seed):
    xml = _xml(dist, block_size if dist == "block-cyclic" else None)
    topo = Topology()
    build_cluster(topo, "h", n_clients + n_servers)
    rt = PadicoRuntime(topo)
    servers = [rt.create_process(f"h{i}", f"s{i}") for i in range(n_servers)]
    comp = ParallelComponent.create(rt, "acc", servers, IDL, xml, AccImpl,
                                    profile=OMNIORB4)
    url = comp.proxy_url("input")
    clients = [rt.create_process(f"h{n_servers + i}", f"c{i}")
               for i in range(n_clients)]
    world = create_world(rt, "cw", clients)

    rng = np.random.default_rng(seed)
    full = rng.normal(size=total)
    results = []

    def body(proc, comm):
        idl = compile_idl(IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(xml)).compile()
        orb = Orb(clients[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "input", url, comm=comm)
        d = BlockDistribution(comm.size, total)
        local = full[d.start(comm.rank):d.end(comm.rank)]
        results.append(pc.total(local))

    spmd(world, body)
    rt.run()
    rt.shutdown()
    expected = float(np.sum(full))
    assert len(results) == n_clients
    for r in results:
        assert r == pytest.approx(expected, abs=1e-9)
