"""2D distributed arguments: sequence<sequence<T>> distributed by rows.

Paper §4.2.2: "This scheme can easily be extended to multidimensional
arrays: a 2D array can be mapped to a sequence of sequences and so on."
"""

import numpy as np
import pytest

from repro.ccm import ComponentImpl
from repro.core import (
    GridCcmCompiler,
    ParallelClient,
    ParallelComponent,
    ParallelismDescriptor,
    ParallelismError,
)
from repro.corba import OMNIORB4, Orb, compile_idl
from repro.core.distribution import BlockDistribution
from repro.mpi import SUM, create_world, spmd
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module M2 {
    typedef sequence<double> Row;
    typedef sequence<Row> Matrix;
    interface Algebra {
        double frobenius2(in Matrix m);
        Matrix transpose_rows(in Matrix m, in double scale);
    };
    component Mat {
        provides Algebra ops;
    };
    home MatHome manages Mat {};
};
"""

XML = """
<parallelism component="M2::Mat">
  <port name="ops">
    <operation name="frobenius2">
      <argument name="m" distribution="block"/>
      <result policy="sum"/>
    </operation>
    <operation name="transpose_rows">
      <argument name="m" distribution="block"/>
      <result policy="concat"/>
    </operation>
  </port>
</parallelism>
"""


class MatImpl(ComponentImpl):
    def __init__(self):
        self.seen_shapes = []

    def frobenius2(self, m):
        self.seen_shapes.append(np.asarray(m).shape)
        self.mpi.Barrier()
        return float(np.sum(np.asarray(m) ** 2))

    def transpose_rows(self, m, scale):
        # per-row reversal scaled — rows stay rows, content verifiable
        return np.asarray(m)[:, ::-1] * scale


@pytest.fixture()
def rt():
    topo = Topology()
    build_cluster(topo, "a", 8)
    runtime = PadicoRuntime(topo)
    yield runtime
    runtime.shutdown()


def _deploy(rt, n_servers):
    servers = [rt.create_process(f"a{i}", f"srv{i}")
               for i in range(n_servers)]
    return ParallelComponent.create(rt, "mat", servers, IDL, XML, MatImpl,
                                    profile=OMNIORB4)


def test_compiler_accepts_nested_sequences():
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()
    info = plan.ops[("ops", "frobenius2")]
    assert 0 in info.dist_positions


def test_compiler_rejects_triple_nesting():
    idl3 = IDL.replace("typedef sequence<Row> Matrix;",
                       "typedef sequence<Row> M2d;\n"
                       "    typedef sequence<M2d> Matrix;")
    idl = compile_idl(idl3)
    with pytest.raises(ParallelismError):
        GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()


@pytest.mark.parametrize("n_clients,n_servers", [(1, 2), (2, 4), (4, 2)])
def test_2d_frobenius_and_transform(rt, n_clients, n_servers):
    comp = _deploy(rt, n_servers)
    url = comp.proxy_url("ops")
    rows, cols = 24, 7
    full = np.arange(rows * cols, dtype="f8").reshape(rows, cols)
    procs = [rt.create_process(f"a{n_servers + i}", f"cli{i}")
             for i in range(n_clients)]
    world = create_world(rt, "cw", procs)
    results = []

    def body(proc, comm):
        idl = compile_idl(IDL)
        plan = GridCcmCompiler(
            idl, ParallelismDescriptor.parse(XML)).compile()
        orb = Orb(procs[comm.rank], OMNIORB4, idl)
        pc = ParallelClient.attach(orb, plan, "ops", url, comm=comm)
        dist = BlockDistribution(comm.size, rows)
        local = full[dist.start(comm.rank):dist.end(comm.rank)]
        f2 = pc.frobenius2(local)
        flipped = pc.transpose_rows(local, 2.0)
        results.append((comm.rank, f2, np.asarray(flipped)))

    spmd(world, body)
    rt.run()
    expected_f2 = float(np.sum(full ** 2))
    for _rank, f2, flipped in results:
        assert f2 == pytest.approx(expected_f2)
        assert flipped.shape == (rows, cols)
        assert np.array_equal(flipped, full[:, ::-1] * 2.0)
    # the rows really were block-distributed over the server nodes
    shapes = [e.seen_shapes[0] for e in comp.executors()]
    assert sum(s[0] for s in shapes) == rows
    assert all(s[1] == cols for s in shapes)


def test_2d_sequential_client_via_proxy(rt):
    comp = _deploy(rt, 3)
    url = comp.proxy_url("ops")
    cli = rt.create_process("a4", "seq")
    idl = compile_idl(IDL)
    GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}
    full = np.ones((10, 4))

    def main(proc):
        stub = orb.string_to_object(url)
        out["f2"] = stub.frobenius2(full)

    cli.spawn(main)
    rt.run()
    assert out["f2"] == pytest.approx(40.0)


def test_wrong_dimensionality_rejected(rt):
    from repro.core.runtime import GridCcmError

    comp = _deploy(rt, 2)
    url = comp.proxy_url("ops")
    cli = rt.create_process("a4", "cli")
    idl = compile_idl(IDL)
    plan = GridCcmCompiler(idl, ParallelismDescriptor.parse(XML)).compile()
    orb = Orb(cli, OMNIORB4, idl)
    out = {}

    def main(proc):
        pc = ParallelClient.attach(orb, plan, "ops", url)
        try:
            pc.frobenius2(np.ones(10))  # 1D where 2D expected
        except GridCcmError as e:
            out["err"] = "2-dimensional" in str(e)

    cli.spawn(main)
    rt.run()
    assert out["err"]
