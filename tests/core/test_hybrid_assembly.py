"""Hybrid assembly deployment: sequential + parallel instances in one
descriptor, wired together by the deployer."""

import numpy as np
import pytest

from repro.ccm import (
    AssemblyDescriptor,
    ComponentImpl,
    ComponentServer,
    Container,
    DescriptorError,
    ImplementationRepository,
    SoftwarePackage,
)
from repro.ccm.deployment import DeploymentEngine
from repro.ccm.idl import COMPONENTS_IDL
from repro.core import HybridDeployer
from repro.corba import NamingContext, NamingService, OMNIORB4, Orb, compile_idl
from repro.net import Topology, build_cluster
from repro.padicotm import PadicoRuntime

IDL = """
module H {
    typedef sequence<double> Vector;
    interface Compute {
        double norm2(in Vector values);
    };
    component Solver {
        provides Compute input;
        attribute double gain;
    };
    home SolverHome manages Solver {};
    component Driver {
        uses Compute backend;
    };
    home DriverHome manages Driver {};
};
"""

SOLVER_PKG = SoftwarePackage.parse("""
<softpkg name="solver" version="1.0">
  <implementation id="DCE:h-solver">
    <component>H::Solver</component>
    <parallelism component="H::Solver">
      <port name="input">
        <operation name="norm2">
          <argument name="values" distribution="block"/>
          <result policy="sum"/>
        </operation>
      </port>
    </parallelism>
  </implementation>
</softpkg>""")

DRIVER_PKG = SoftwarePackage.parse("""
<softpkg name="driver" version="1.0">
  <implementation id="DCE:h-driver"><component>H::Driver</component>
  </implementation>
</softpkg>""")

ASSEMBLY = AssemblyDescriptor.parse("""
<componentassembly id="hybrid">
  <componentfiles>
    <componentfile id="s" softpkg="solver"/>
    <componentfile id="d" softpkg="driver"/>
  </componentfiles>
  <instance id="solver0" componentfile="s" nodes="3"/>
  <instance id="driver0" componentfile="d" destination="seq-node"/>
  <connection>
    <uses instance="driver0" port="backend"/>
    <provides instance="solver0" port="input"/>
  </connection>
  <property instance="solver0" name="gain" type="double" value="2.0"/>
</componentassembly>""")


class SolverImpl(ComponentImpl):
    gain = 1.0

    def __init__(self):
        self.activated = False

    def ccm_activate(self):
        self.activated = True

    def norm2(self, values):
        self.mpi.Barrier()
        return float(values @ values) * self.gain


class DriverImpl(ComponentImpl):
    def run(self, data):
        return self.context.get_connection("backend").norm2(data)


@pytest.fixture()
def stage():
    ImplementationRepository.clear()
    ImplementationRepository.register("DCE:h-solver", "H::Solver",
                                      SolverImpl)
    ImplementationRepository.register("DCE:h-driver", "H::Driver",
                                      DriverImpl)
    topo = Topology()
    build_cluster(topo, "a", 6)
    rt = PadicoRuntime(topo)

    # component-server node for the sequential side
    seq_container = Container(rt.create_process("a0", "seq-node"),
                              compile_idl(IDL))
    naming = NamingService(seq_container.orb)
    server = ComponentServer(seq_container,
                             NamingContext(seq_container.orb, naming.url))
    # bare PadicoTM processes for the parallel nodes
    for i in range(3):
        rt.create_process(f"a{1 + i}", f"par{i}")

    deployer_proc = rt.create_process("a4", "deployer")
    d_orb = Orb(deployer_proc, OMNIORB4, compile_idl(IDL))
    d_orb.idl.merge(compile_idl(COMPONENTS_IDL))
    engine = DeploymentEngine(d_orb, NamingContext(d_orb, naming.url),
                              {"solver": SOLVER_PKG, "driver": DRIVER_PKG})
    deployer = HybridDeployer(rt, engine, IDL)
    yield rt, seq_container, server, deployer_proc, deployer
    ImplementationRepository.clear()
    rt.shutdown()


def test_descriptor_carries_nodes_and_parallelism():
    assert ASSEMBLY.instance("solver0").nodes == 3
    assert ASSEMBLY.instance("driver0").nodes == 1
    impl = SOLVER_PKG.implementations[0]
    assert impl.parallelism is not None
    assert 'component="H::Solver"' in impl.parallelism


def test_nodes_attribute_validation():
    with pytest.raises(DescriptorError):
        AssemblyDescriptor.parse("""
        <componentassembly id="x">
          <componentfiles><componentfile id="c" softpkg="p"/></componentfiles>
          <instance id="i" componentfile="c" nodes="0"/>
        </componentassembly>""")


def test_hybrid_deploy_and_invoke(stage):
    rt, seq_container, server, deployer_proc, deployer = stage
    out = {}
    data = np.arange(60, dtype="f8")

    def main(proc):
        reg = server.container.process.spawn(lambda p: server.register(),
                                             name="reg")
        proc.join(reg)
        app = deployer.deploy(ASSEMBLY, placement={
            "solver0": ["par0", "par1", "par2"]})
        out["parallel_size"] = app.parallel_component("solver0").size
        solver = app.parallel_component("solver0")
        out["activated"] = [e.activated for e in solver.executors()]
        out["gain"] = [e.gain for e in solver.executors()]
        driver_inst = next(iter(seq_container._instances.values()))
        runner = seq_container.process.spawn(
            lambda p: driver_inst.executor.run(data), name="runner")
        out["norm"] = proc.join(runner)
        app.teardown()
        out["empty"] = not seq_container._instances

    deployer_proc.spawn(main)
    rt.run()
    assert out["parallel_size"] == 3
    assert out["activated"] == [True, True, True]
    assert out["gain"] == [2.0, 2.0, 2.0]
    assert out["norm"] == pytest.approx(2.0 * float(data @ data))
    assert out["empty"]


def test_hybrid_requires_placement_list(stage):
    rt, seq_container, server, deployer_proc, deployer = stage
    out = {}

    def main(proc):
        reg = server.container.process.spawn(lambda p: server.register(),
                                             name="reg")
        proc.join(reg)
        with pytest.raises(DescriptorError):
            deployer.deploy(ASSEMBLY, placement={"solver0": "par0"})
        with pytest.raises(DescriptorError):
            deployer.deploy(ASSEMBLY, placement={"solver0": ["par0"]})
        out["ok"] = True

    deployer_proc.spawn(main)
    rt.run()
    assert out["ok"]


def test_hybrid_rejects_parallel_without_parallelism(stage):
    rt, seq_container, server, deployer_proc, deployer = stage
    asm = AssemblyDescriptor.parse("""
    <componentassembly id="x">
      <componentfiles><componentfile id="d" softpkg="driver"/></componentfiles>
      <instance id="d0" componentfile="d" nodes="2"/>
    </componentassembly>""")
    out = {}

    def main(proc):
        with pytest.raises(DescriptorError) as ei:
            deployer.deploy(asm, placement={"d0": ["par0", "par1"]})
        out["msg"] = str(ei.value)

    deployer_proc.spawn(main)
    rt.run()
    assert "no" in out["msg"] and "parallelism" in out["msg"]
