"""Redistribution schedules: correctness for arbitrary distribution pairs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    BlockDistribution,
    CyclicDistribution,
    DistributionError,
    make_distribution,
)
from repro.core.redistribution import (
    CLIENT_SIDE,
    IN_TRANSIT,
    SERVER_SIDE,
    choose_redistribution_site,
    redistribute_schedule,
)

_dist_spec = st.one_of(
    st.tuples(st.just("block"), st.integers(1, 6)),
    st.tuples(st.just("cyclic"), st.integers(1, 6)),
    st.tuples(st.just("block-cyclic"), st.integers(1, 6),
              st.integers(1, 7)),
)


def _make(spec, length):
    kind, parts = spec[:2]
    bs = spec[2] if len(spec) > 2 else None
    return make_distribution(kind, parts, length, bs)


@settings(max_examples=200, deadline=None)
@given(_dist_spec, _dist_spec, st.integers(0, 150))
def test_redistribution_moves_every_element_once(src_spec, dst_spec, length):
    """Applying the schedule to distributed data reproduces the exact
    target layout of the global array — the core GridCCM invariant."""
    src = _make(src_spec, length)
    dst = _make(dst_spec, length)
    plan = redistribute_schedule(src, dst)

    global_data = np.arange(length, dtype="f8") * 1.5 + 3.0
    locals_in = [global_data[src.global_indices(p)]
                 for p in range(src.parts)]
    locals_out = plan.apply(locals_in)
    for p in range(dst.parts):
        assert np.array_equal(locals_out[p],
                              global_data[dst.global_indices(p)])

    # total transferred volume equals the global length
    assert sum(t.size for t in plan.transfers) == length
    # no empty transfers
    assert all(t.size > 0 for t in plan.transfers)


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 8), st.integers(1, 8), st.integers(0, 200))
def test_block_block_transfer_count(n, m, length):
    """Block→block produces at most N+M-1 contiguous transfers."""
    plan = redistribute_schedule(BlockDistribution(n, length),
                                 BlockDistribution(m, length))
    assert len(plan.transfers) <= n + m - 1
    for t in plan.transfers:
        # contiguous pieces on both sides
        assert np.array_equal(np.diff(t.src_local),
                              np.ones(t.size - 1)) or t.size <= 1
        assert np.array_equal(np.diff(t.dst_local),
                              np.ones(t.size - 1)) or t.size <= 1


def test_identity_redistribution_is_node_to_node():
    """Same block layout on both sides: rank i talks only to rank i —
    the Figure-8 n→n experiment's communication pattern."""
    plan = redistribute_schedule(BlockDistribution(4, 100),
                                 BlockDistribution(4, 100))
    assert len(plan.transfers) == 4
    for t in plan.transfers:
        assert t.src == t.dst


def test_scatter_gather_patterns():
    scatter = redistribute_schedule(BlockDistribution(1, 12),
                                    BlockDistribution(3, 12))
    assert [(t.src, t.dst, t.size) for t in scatter.transfers] == \
        [(0, 0, 4), (0, 1, 4), (0, 2, 4)]
    gather = redistribute_schedule(BlockDistribution(3, 12),
                                   BlockDistribution(1, 12))
    assert [(t.src, t.dst, t.size) for t in gather.transfers] == \
        [(0, 0, 4), (1, 0, 4), (2, 0, 4)]


def test_block_to_cyclic():
    plan = redistribute_schedule(BlockDistribution(2, 6),
                                 CyclicDistribution(2, 6))
    data = np.array([10.0, 11, 12, 13, 14, 15])
    out = plan.apply([data[:3], data[3:]])
    assert np.array_equal(out[0], [10, 12, 14])
    assert np.array_equal(out[1], [11, 13, 15])


def test_length_mismatch_rejected():
    with pytest.raises(DistributionError):
        redistribute_schedule(BlockDistribution(2, 10),
                              BlockDistribution(2, 11))


def test_incoming_outgoing_views():
    plan = redistribute_schedule(BlockDistribution(2, 10),
                                 BlockDistribution(5, 10))
    assert {t.dst for t in plan.outgoing(0)} == {0, 1, 2}
    assert all(t.src == 1 for t in plan.incoming(4))


def test_apply_validates_input_count():
    plan = redistribute_schedule(BlockDistribution(2, 4),
                                 BlockDistribution(2, 4))
    with pytest.raises(DistributionError):
        plan.apply([np.zeros(4)])


# ---------------------------------------------------------------------------
# §4.2.2 placement policy
# ---------------------------------------------------------------------------

def test_site_choice_prefers_faster_network_when_memory_allows():
    assert choose_redistribution_site(
        1e6, 1e9, 1e9, client_net_bandwidth=240e6,
        server_net_bandwidth=11e6) == CLIENT_SIDE
    assert choose_redistribution_site(
        1e6, 1e9, 1e9, client_net_bandwidth=11e6,
        server_net_bandwidth=240e6) == SERVER_SIDE


def test_site_choice_respects_memory_feasibility():
    assert choose_redistribution_site(
        1e9, 2e9, 1e6, 11e6, 240e6) == CLIENT_SIDE  # server lacks memory
    assert choose_redistribution_site(
        1e9, 1e6, 2e9, 240e6, 11e6) == SERVER_SIDE  # client lacks memory
    assert choose_redistribution_site(
        1e9, 1e6, 1e6, 240e6, 240e6) == IN_TRANSIT  # neither fits
