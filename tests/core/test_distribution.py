"""Property-based and directed tests for 1D distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import (
    BlockCyclicDistribution,
    BlockDistribution,
    CyclicDistribution,
    DistributionError,
    make_distribution,
)

DISTS = st.one_of(
    st.tuples(st.just("block"), st.integers(1, 8), st.integers(0, 200)),
    st.tuples(st.just("cyclic"), st.integers(1, 8), st.integers(0, 200)),
    st.tuples(st.just("block-cyclic"), st.integers(1, 8),
              st.integers(0, 200), st.integers(1, 9)),
)


def _make(spec):
    kind, parts, length = spec[:3]
    bs = spec[3] if len(spec) > 3 else None
    return make_distribution(kind, parts, length, bs)


@settings(max_examples=200, deadline=None)
@given(DISTS)
def test_partition_property(spec):
    """Every global index is owned by exactly one part, and the owner
    agrees with global_indices / local_of_global round-trips."""
    dist = _make(spec)
    seen = np.full(dist.length, -1, dtype=np.int64)
    total = 0
    for part in range(dist.parts):
        gidx = dist.global_indices(part)
        assert dist.local_size(part) == len(gidx)
        total += len(gidx)
        assert np.all(np.diff(gidx) > 0)  # sorted, unique
        if len(gidx):
            assert np.all(dist.owner(gidx) == part)
            local = dist.local_of_global(part, gidx)
            assert np.array_equal(np.sort(local),
                                  np.arange(len(gidx)))
        seen[gidx] = part
    assert total == dist.length
    assert np.all(seen >= 0)


def test_block_sizes_balanced():
    d = BlockDistribution(3, 10)
    assert [d.local_size(p) for p in range(3)] == [4, 3, 3]
    assert d.start(0) == 0 and d.end(0) == 4
    assert d.start(2) == 7 and d.end(2) == 10


def test_block_owner_scalar_and_array():
    d = BlockDistribution(2, 10)
    assert d.owner(0) == 0
    assert d.owner(5) == 1
    assert np.array_equal(d.owner(np.array([0, 4, 5, 9])), [0, 0, 1, 1])


def test_cyclic_round_robin():
    d = CyclicDistribution(3, 7)
    assert np.array_equal(d.global_indices(0), [0, 3, 6])
    assert np.array_equal(d.global_indices(2), [2, 5])
    assert d.owner(4) == 1
    assert d.local_size(0) == 3
    assert d.local_size(1) == 2


def test_block_cyclic():
    d = BlockCyclicDistribution(2, 10, block_size=2)
    # blocks: [0,1]->0 [2,3]->1 [4,5]->0 [6,7]->1 [8,9]->0
    assert np.array_equal(d.global_indices(0), [0, 1, 4, 5, 8, 9])
    assert d.owner(3) == 1
    assert np.array_equal(
        d.local_of_global(0, np.array([0, 1, 4, 5, 8, 9])),
        [0, 1, 2, 3, 4, 5])


def test_validation():
    with pytest.raises(DistributionError):
        BlockDistribution(0, 10)
    with pytest.raises(DistributionError):
        BlockDistribution(2, -1)
    with pytest.raises(DistributionError):
        BlockCyclicDistribution(2, 10, 0)
    with pytest.raises(DistributionError):
        BlockDistribution(2, 10).owner(10)
    with pytest.raises(DistributionError):
        BlockDistribution(2, 10).global_indices(2)
    with pytest.raises(DistributionError):
        make_distribution("block-cyclic", 2, 10)
    with pytest.raises(DistributionError):
        make_distribution("weird", 2, 10)


def test_equality():
    assert BlockDistribution(2, 10) == BlockDistribution(2, 10)
    assert BlockDistribution(2, 10) != BlockDistribution(3, 10)
    assert BlockDistribution(2, 10) != CyclicDistribution(2, 10)
