"""The argsort-based ``_generic`` must equal the old masking pass.

The old implementation rescanned all ``n`` source indices once per
distinct destination owner (``owners == dst`` per destination); the new
one does a single stable argsort and cuts the runs.  The reference
implementation below is the pre-optimisation code, kept verbatim so the
equivalence is pinned against the real thing, not a paraphrase.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distribution import Distribution, make_distribution
from repro.core.redistribution import Transfer, _as_slice, _generic


def _generic_reference(source: Distribution,
                       target: Distribution) -> list[Transfer]:
    """The old per-destination masking implementation (pre-argsort)."""
    transfers: list[Transfer] = []
    for src in range(source.parts):
        gidx = source.global_indices(src)
        if len(gidx) == 0:
            continue
        owners = target.owner(gidx)
        src_local = source.local_of_global(src, gidx)
        for dst in np.unique(owners):
            mask = owners == dst
            g_sub = gidx[mask]
            transfers.append(Transfer(
                src, int(dst),
                src_local[mask],
                target.local_of_global(int(dst), g_sub)))
    return transfers


_dist_spec = st.one_of(
    st.tuples(st.just("block"), st.integers(1, 6)),
    st.tuples(st.just("cyclic"), st.integers(1, 6)),
    st.tuples(st.just("block-cyclic"), st.integers(1, 6),
              st.integers(1, 7)),
)


def _make(spec, length):
    kind, parts = spec[:2]
    bs = spec[2] if len(spec) > 2 else None
    return make_distribution(kind, parts, length, bs)


@settings(max_examples=300, deadline=None)
@given(_dist_spec, _dist_spec, st.integers(0, 200))
def test_generic_equals_reference(src_spec, dst_spec, length):
    """Same transfers, same order, same index arrays — exactly."""
    source = _make(src_spec, length)
    target = _make(dst_spec, length)
    new = _generic(source, target)
    old = _generic_reference(source, target)
    assert len(new) == len(old)
    for t_new, t_old in zip(new, old):
        assert t_new.src == t_old.src
        assert t_new.dst == t_old.dst
        assert np.array_equal(t_new.src_local, t_old.src_local)
        assert np.array_equal(t_new.dst_local, t_old.dst_local)


# ---------------------------------------------------------------------------
# slice detection on Transfer (the wire path's view-vs-copy switch)
# ---------------------------------------------------------------------------

def test_as_slice_unit_stride():
    assert _as_slice(np.arange(3, 9)) == slice(3, 9)
    assert _as_slice(np.array([5])) == slice(5, 6)
    assert _as_slice(np.array([2, 3])) == slice(2, 4)
    assert _as_slice(np.array([], dtype=np.int64)) == slice(0, 0)


def test_as_slice_rejects_non_contiguous():
    assert _as_slice(np.array([0, 2, 4])) is None        # stride 2
    assert _as_slice(np.array([5, 4, 3])) is None        # descending
    assert _as_slice(np.array([0, 2, 2])) is None        # same span, dupes
    assert _as_slice(np.array([1, 3, 2, 4])) is None     # permuted


def test_as_slice_accepts_python_lists():
    assert _as_slice([4, 5, 6]) == slice(4, 7)
    assert _as_slice([4, 6, 5]) is None


def test_transfer_slices_cached():
    t = Transfer(0, 1, np.arange(10), np.array([0, 2, 4, 6, 8, 1, 3, 5,
                                                7, 9]))
    assert t.src_slice == slice(0, 10)
    assert t.dst_slice is None
    # cached_property: same object on re-access
    assert t.src_slice is t.src_slice


def test_block_block_transfers_are_sliceable():
    source = make_distribution("block", 3, 100, None)
    target = make_distribution("block", 4, 100, None)
    from repro.core.redistribution import redistribute_schedule
    plan = redistribute_schedule(source, target)
    assert plan.transfers
    for t in plan.transfers:
        assert t.src_slice is not None
        assert t.dst_slice is not None


def test_cyclic_transfers_are_not_sliceable():
    source = make_distribution("cyclic", 2, 40, None)
    target = make_distribution("block", 2, 40, None)
    from repro.core.redistribution import redistribute_schedule
    plan = redistribute_schedule(source, target)
    # cyclic part 0 owns every even global index: its local indices are
    # contiguous but the block-side placement is strided
    assert any(t.dst_slice is None for t in plan.transfers)
