# Developer gates.  `make check` is what CI runs: the static lint, the
# tier-1 test suite, and the seeded schedule-exploration smoke.
# Everything goes through PYTHONPATH=src so no install step is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: check lint test schedule-smoke sarif

check: lint test schedule-smoke

lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis.cli src examples

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

schedule-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.sanitizer --seeds 5

# SARIF findings for CI/PR annotation (exit status intentionally ignored:
# the gating run is `lint`, this one only produces the report artifact)
sarif:
	-PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis.cli \
		--format sarif src examples > repro-lint.sarif
