# Developer gates.  `make check` is what CI runs: the static lint, the
# tier-1 test suite, the seeded schedule-exploration smoke, and the
# bench smoke (one quick sweep, schema-checked BENCH_padico.json).
# Everything goes through PYTHONPATH=src so no install step is needed.

PYTHON ?= python
PYTHONPATH := src

.PHONY: check lint lint-full lint-mutants test copy-budget \
	schedule-smoke bench-smoke bench-wallclock bench-topology \
	bench-collectives sarif

check: lint lint-mutants test copy-budget schedule-smoke bench-smoke \
	bench-wallclock bench-topology bench-collectives

# Incremental: per-file results and call-graph summaries are cached by
# content hash in .repro-lint-cache.json; the interprocedural phase
# always re-runs, so a callee change re-derives its cached callers.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis.cli --changed \
		--stats src examples

# Full run, no cache — what CI gates on (cold containers have no cache
# to trust anyway).  --stats prints per-checker wall time and per-rule
# finding counts into the CI log.
lint-full:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis.cli --stats \
		src examples

# Seeded-mutant gate: every buf-*/ker-block-deep/obs-guard corpus
# defect must be caught, every good-corpus pattern must stay clean
lint-mutants:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis.mutants

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Deterministic copy-budget gate: replays the §4.4 CORBA+MPI workload
# and a 16 MiB GridCCM scatter and pins the wire.copied_bytes.* totals
# to committed expected values (runs inside `test` too; the named
# target keeps the gate visible and re-runnable on its own)
copy-budget:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q \
		tests/obs/test_copy_budget.py

schedule-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.sanitizer --seeds 5

# Writes to a scratch path so it never clobbers the committed full
# sweep (BENCH_padico.json, regenerated with `python -m benchmarks.run`)
bench-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m benchmarks.run --quick \
		--out BENCH_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.trace bench \
		BENCH_smoke.json

# Wall-clock smoke: quick sizes, schema validity, plus the switch
# backend gate at a conservative 3x (shared CI runners are noisy; the
# committed full document carries the real 10x margin).  The committed
# full document is BENCH_wallclock.json, regenerated with
# `python -m benchmarks.run --wallclock --gate-backend-speedup 10`.
bench-wallclock:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m benchmarks.run --wallclock \
		--quick --gate-backend-speedup 3 \
		--out BENCH_wallclock_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.trace bench \
		BENCH_wallclock_smoke.json

# Grid-scale smoke: the 100-host slice of the topology-scaling series
# (the full 10k-host sweep lives in the committed BENCH_wallclock.json,
# regenerated with `python -m benchmarks.run --wallclock`).  The run
# itself asserts the sharded and flat solvers produce byte-identical
# flow logs, so this is an exactness gate as much as a perf smoke.
bench-topology:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m benchmarks.run \
		--topology-scaling --quick --out BENCH_topology_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.trace bench \
		BENCH_topology_smoke.json

# Hierarchical-collectives smoke: the 2-site slice of the
# wallclock.collectives series (full 2/4/8-site sweep lives in the
# committed BENCH_wallclock.json).  The run asserts the topology-aware
# replay is bit-identical to the flat oracle and the gate pins the
# MPICH-G2 invariant: aware bcast crosses the WAN exactly sites - 1
# times per call.
bench-collectives:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m benchmarks.run \
		--collectives --quick --gate-wan-crossings \
		--out BENCH_collectives_smoke.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.tools.trace bench \
		BENCH_collectives_smoke.json

# SARIF findings for CI/PR annotation (exit status intentionally ignored:
# the gating run is `lint`, this one only produces the report artifact)
sarif:
	-PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis.cli \
		--format sarif src examples > repro-lint.sarif
