"""Padico reproduction: GridCCM + PadicoTM on a simulated grid.

Reproduces Denis, Pérez, Priol, Ribes, *Padico: A Component-Based
Software Infrastructure for Grid Computing* (IPDPS 2003) as a complete
Python library:

- :mod:`repro.core` — **GridCCM**, parallel CORBA components (the
  paper's contribution);
- :mod:`repro.padicotm` — **PadicoTM**, the three-layer communication
  runtime (arbitration / abstraction / personalities);
- :mod:`repro.corba`, :mod:`repro.mpi`, :mod:`repro.ccm`,
  :mod:`repro.soap` — the middleware substrates, built from scratch;
- :mod:`repro.deploy` — grid deployment services (discovery, planning,
  per-link security);
- :mod:`repro.net`, :mod:`repro.sim` — the deterministic simulated
  grid standing in for the paper's Myrinet/Ethernet testbed.

See README.md for a tour, DESIGN.md for architecture and calibration,
EXPERIMENTS.md for the paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = [
    "sim",
    "net",
    "padicotm",
    "corba",
    "mpi",
    "ccm",
    "core",
    "soap",
    "deploy",
]
