"""Instrumentation-guard checker (rule ``obs-guard``).

PR 3's zero-perturbation property — an uninstrumented run executes
byte-for-byte the same code — rests on one idiom: every monitor/tracer
hook call is dominated by a ``monitor is not None`` guard (the
attach/detach protocol hands out ``None`` when nothing is attached).
The dynamic tests only *sample* that property; this rule proves it for
every call site:

``obs-guard``
    A hook call (``mon.on_span_start(...)``, ``self.tracer.on_switch``,
    ...) on a monitor-typed expression that is not dominated by a
    non-None guard for that same expression — or an *unguarded*
    monitor expression passed to a helper whose summary says it
    dereferences that parameter unguarded (the interprocedural form).

Monitor-typed expressions are recognised syntactically: attribute
chains ending in ``monitor``/``_monitor``/``tracer``/``_tracer``,
locals assigned from such a chain (or from calling one, e.g.
``mon = self._monitor()``), and parameters with those conventional
names.  Accepted dominators, matched by expression identity:

* ``if E is not None: ...`` / ``if E: ...`` (including ``and`` chains
  and ``elif`` arms asserting E);
* an early out — ``if E is None: return/raise/continue/break`` — which
  guards the remainder of the enclosing block;
* ``assert E is not None``;
* the expression forms ``E is not None and E.on_x()`` and
  ``E.on_x() if E is not None else ...``.

A helper that takes the monitor as a *parameter* and dereferences it
unguarded is not flagged locally — its contract is "caller guards" —
but every call site that passes an unguarded monitor into it is, with
the helper's name in the message.  Guarded helpers absorb the
obligation, so ``Circuit._check_open``-style wrappers stay silent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import dataflow
from repro.analysis.base import (
    ModuleContext,
    ProjectChecker,
    register_project_checker,
)
from repro.analysis.callgraph import (
    MODULE_BODY,
    CallGraph,
    slice_for,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

_MONITOR_ATTRS = {"monitor", "_monitor", "tracer", "_tracer"}
_MONITOR_PARAMS = {"monitor", "mon", "tracer", "_monitor", "_tracer"}


def _attr_key(node: ast.expr) -> str | None:
    """Dotted text of a Name/Attribute chain (``self.kernel.tracer``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _FnScanner:
    """Guard-tracking linear scan of one function body."""

    def __init__(self, owner: "_ObsIrBuilder", qual: str,
                 params: list[str]):
        self.owner = owner
        self.qual = qual
        self.params = {name: i for i, name in enumerate(params)
                       if name in _MONITOR_PARAMS}
        #: locals known to hold a monitor (assigned from a monitor attr)
        self.mvars: set[str] = set()
        self.derefs: list[dict] = []
        self.passes: list[dict] = []

    # -- monitor-typed expressions --------------------------------------
    def _monitor_key(self, node: ast.expr) -> str | None:
        """Guardable identity of a monitor-typed expression, or None."""
        if isinstance(node, ast.Name):
            if node.id in self.mvars or node.id in self.params:
                return node.id
            return None
        key = _attr_key(node)
        if key is not None and key.rsplit(".", 1)[-1] in _MONITOR_ATTRS:
            return key
        return None

    def _is_monitor_source(self, node: ast.expr) -> bool:
        """Does this expression produce a monitor?  (attr chain or a
        call of one, e.g. ``self._monitor()``)"""
        if self._monitor_key(node) is not None:
            return True
        if isinstance(node, ast.Call) and not node.args:
            func_key = _attr_key(node.func)
            return (func_key is not None and
                    func_key.rsplit(".", 1)[-1] in _MONITOR_ATTRS)
        return False

    # -- guard extraction ------------------------------------------------
    def _asserted_keys(self, test: ast.expr) -> set[str]:
        """Expression keys a true ``test`` proves non-None."""
        keys: set[str] = set()
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            for value in test.values:
                keys |= self._asserted_keys(value)
            return keys
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and \
                isinstance(test.ops[0], ast.IsNot) and \
                isinstance(test.comparators[0], ast.Constant) and \
                test.comparators[0].value is None:
            key = self._monitor_key(test.left)
            if key is not None:
                keys.add(key)
            return keys
        key = self._monitor_key(test)
        if key is not None:
            keys.add(key)
        return keys

    def _refuted_keys(self, test: ast.expr) -> set[str]:
        """Keys a *false* test proves non-None (``E is None`` guards)."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1 and \
                isinstance(test.ops[0], ast.Is) and \
                isinstance(test.comparators[0], ast.Constant) and \
                test.comparators[0].value is None:
            key = self._monitor_key(test.left)
            if key is not None:
                return {key}
        return set()

    @staticmethod
    def _terminates(body: list[ast.stmt]) -> bool:
        return bool(body) and isinstance(
            body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))

    # -- walk ------------------------------------------------------------
    def scan(self, body: list[ast.stmt]) -> None:
        self._block(body, set())

    def _block(self, body: list[ast.stmt], guarded: set[str]) -> None:
        guarded = set(guarded)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested definitions get their own scanner
            if isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, guarded)
                self._block(stmt.body,
                            guarded | self._asserted_keys(stmt.test))
                refuted = self._refuted_keys(stmt.test)
                self._block(stmt.orelse, guarded | refuted)
                if refuted and self._terminates(stmt.body):
                    guarded |= refuted  # early out dominates the rest
                continue
            if isinstance(stmt, ast.Assert):
                self._scan_expr(stmt.test, guarded)
                guarded |= self._asserted_keys(stmt.test)
                continue
            if isinstance(stmt, ast.While):
                self._scan_expr(stmt.test, guarded)
                self._block(stmt.body,
                            guarded | self._asserted_keys(stmt.test))
                self._block(stmt.orelse, guarded)
                continue
            # other compound statements: header first, then blocks with
            # the same dominating guards (try/with/for do not invalidate)
            for expr in self._header_exprs(stmt):
                self._scan_expr(expr, guarded)
            for block in self._nested_blocks(stmt):
                self._block(block, guarded)
            self._track_assign(stmt, guarded)

    @staticmethod
    def _nested_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list) and nested and \
                    isinstance(nested[0], ast.stmt):
                blocks.append(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    @staticmethod
    def _header_exprs(stmt: ast.stmt):
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                yield child

    def _track_assign(self, stmt: ast.stmt, guarded: set[str]) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        guarded.discard(target.id)
        if self._is_monitor_source(stmt.value):
            self.mvars.add(target.id)
        else:
            self.mvars.discard(target.id)
            self.params.pop(target.id, None)

    # -- expressions -----------------------------------------------------
    def _scan_expr(self, node: ast.expr, guarded: set[str]) -> None:
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            acc = set(guarded)
            for value in node.values:
                self._scan_expr(value, acc)
                acc |= self._asserted_keys(value)
            return
        if isinstance(node, ast.IfExp):
            self._scan_expr(node.test, guarded)
            self._scan_expr(node.body,
                            guarded | self._asserted_keys(node.test))
            self._scan_expr(node.orelse,
                            guarded | self._refuted_keys(node.test))
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Call):
            self._scan_call(node, guarded)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guarded)

    def _scan_call(self, call: ast.Call, guarded: set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Attribute) and \
                func.attr.startswith("on_"):
            receiver = func.value
            key = self._monitor_key(receiver)
            if key is not None:
                self.derefs.append({
                    "param": self.params.get(key),
                    "guarded": key in guarded,
                    "line": call.lineno,
                    "text": self.owner.ctx.line_text(call.lineno),
                    "method": func.attr, "recv": key})
            elif self._is_monitor_source(receiver):
                # self._monitor().on_x(): a fresh fetch can never be
                # guarded by identity — always a finding
                self.derefs.append({
                    "param": None, "guarded": False,
                    "line": call.lineno,
                    "text": self.owner.ctx.line_text(call.lineno),
                    "method": func.attr,
                    "recv": ast.unparse(receiver)})
            return
        if isinstance(func, ast.Name) and func.id in ("getattr",
                                                      "hasattr"):
            return  # the getattr(mon, "on_x", None) hook idiom is safe
        attr_form = isinstance(func, ast.Attribute)
        for pos, arg in enumerate(call.args):
            key = self._monitor_key(arg)
            if key is None and not self._is_monitor_source(arg):
                continue
            self.passes.append({
                "line": call.lineno, "col": call.col_offset,
                "argpos": pos,
                "form": "attr" if attr_form else "name",
                "param": self.params.get(key) if key else None,
                "guarded": key in guarded if key else False,
                "recv": key or ast.unparse(arg),
                "text": self.owner.ctx.line_text(call.lineno)})


class _ObsIrBuilder:
    """Per-function monitor facts for one module."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        slice_ = slice_for(ctx)
        self.module = slice_.module
        self.facts: dict[str, dict] = {}
        self._fn_stack: list[str] = []
        self._cls_stack: list[str] = []

    def run(self, tree: ast.Module) -> dict[str, dict]:
        self._scan_defs(tree.body, toplevel=True)
        return self.facts

    def _qual_here(self, name: str) -> str:
        if self._fn_stack:
            return f"{self._fn_stack[-1]}.{name}"
        if self._cls_stack:
            return f"{self._cls_stack[-1]}.{name}"
        return f"{self.module}.{name}"

    def _scan_defs(self, body: list[ast.stmt], toplevel=False) -> None:
        if toplevel:
            scanner = _FnScanner(self, f"{self.module}.{MODULE_BODY}",
                                 [])
            scanner.scan(body)
            self._store(scanner)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = self._qual_here(stmt.name)
                params = [a.arg for a in (stmt.args.posonlyargs
                                          + stmt.args.args)]
                scanner = _FnScanner(self, qual, params)
                scanner.scan(stmt.body)
                self._store(scanner)
                self._fn_stack.append(qual)
                self._scan_defs(stmt.body)
                self._fn_stack.pop()
            elif isinstance(stmt, ast.ClassDef):
                self._cls_stack.append(self._qual_here(stmt.name))
                self._scan_defs(stmt.body)
                self._cls_stack.pop()
            else:
                for block in _FnScanner._nested_blocks(stmt):
                    self._scan_defs(block)

    def _store(self, scanner: _FnScanner) -> None:
        if scanner.derefs or scanner.passes:
            self.facts[scanner.qual] = {
                "path": self.ctx.path,
                "derefs": scanner.derefs,
                "passes": scanner.passes}


@register_project_checker
class ObsGuardChecker(ProjectChecker):
    """Every instrumentation call dominated by a non-None guard."""

    name = "obs-guard"
    rules = {
        "obs-guard":
            "monitor/tracer hook call not dominated by a "
            "'monitor is not None' guard (zero-perturbation property)",
    }

    def file_facts(self, ctx: ModuleContext,
                   config: AnalysisConfig) -> dict:
        return _ObsIrBuilder(ctx).run(ctx.tree)

    def project_check(self, facts: dict[str, dict], graph: CallGraph,
                      config: AnalysisConfig) -> Iterator[Finding]:
        fn_facts: dict[str, dict] = {}
        for blob in facts.values():
            fn_facts.update(blob)

        def initial(node: str) -> frozenset:
            blob = fn_facts.get(node)
            if blob is None:
                return frozenset()
            return frozenset(d["param"] for d in blob["derefs"]
                             if d["param"] is not None
                             and not d["guarded"])

        def transfer(node: str, summaries: dict) -> frozenset:
            blob = fn_facts.get(node)
            out = set(initial(node))
            if blob is None:
                return frozenset(out)
            for p in blob["passes"]:
                if p["param"] is None or p["guarded"]:
                    continue
                callee = graph.callee_at(blob["path"], p["line"],
                                         p["col"])
                if callee is None:
                    continue
                if self._callee_pos(graph, callee, p) in \
                        summaries.get(callee, frozenset()):
                    out.add(p["param"])
            return frozenset(out)

        nodes = list(dict.fromkeys(list(fn_facts) +
                                   list(graph.nodes())))
        summaries = dataflow.solve(nodes, graph.adjacency(),
                                   initial, transfer)

        for qual in sorted(fn_facts):
            blob = fn_facts[qual]
            for d in blob["derefs"]:
                if d["param"] is not None or d["guarded"]:
                    continue
                yield Finding(
                    "obs-guard",
                    f"{d['recv']}.{d['method']}() is not dominated by "
                    f"a '{d['recv']} is not None' guard; an unattached "
                    f"run would crash here and a guard is what keeps "
                    f"instrumentation zero-perturbation",
                    blob["path"], d["line"], source_line=d["text"])
            for p in blob["passes"]:
                if p["param"] is not None or p["guarded"]:
                    continue
                callee = graph.callee_at(blob["path"], p["line"],
                                         p["col"])
                if callee is None:
                    continue
                if self._callee_pos(graph, callee, p) in \
                        summaries.get(callee, frozenset()):
                    yield Finding(
                        "obs-guard",
                        f"unguarded monitor expression {p['recv']!r} "
                        f"is passed to {callee}(), which dereferences "
                        f"that parameter without its own None guard; "
                        f"guard the call site or the helper",
                        blob["path"], p["line"], p["col"],
                        source_line=p["text"])

    @staticmethod
    def _callee_pos(graph: CallGraph, callee: str, p: dict) -> int:
        info = graph.functions.get(callee)
        offset = 1 if (info is not None and info.cls is not None
                       and (p["form"] == "attr"
                            or info.name == "__init__")) else 0
        return p["argpos"] + offset
