"""``repro-lint`` — the command-line front end.

Examples::

    repro-lint src examples              # gate: exit 1 on any finding
    repro-lint --changed src examples    # incremental: reuse cached
                                         # results for unchanged files
    repro-lint --list-rules              # what can fire and why
    repro-lint --update-baseline src     # accept current findings
    repro-lint --format json src | jq .  # machine-readable output
    repro-lint --format sarif src        # SARIF 2.1.0 for CI annotation

Exit codes: 0 clean (after baseline), 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.base import all_checkers, all_project_checkers
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    format_baseline,
    load_baseline,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME, AnalysisCache
from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import find_project_root, run_analysis
from repro.analysis.stats import RunStats


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Determinism, kernel-safety, layering and IDL "
                    "static analysis for the simulated grid stack.")
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to analyse "
                             "(default: src examples)")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: "
                             f"<project-root>/{DEFAULT_BASELINE_NAME})")
    parser.add_argument("--no-baseline", action="store_true",
                        help="report baselined findings too")
    parser.add_argument("--changed", action="store_true",
                        help="incremental mode: reuse per-file results "
                             "and call-graph summaries cached by "
                             f"content hash in {DEFAULT_CACHE_NAME} "
                             "(the interprocedural phase always "
                             "re-runs over all summaries)")
    parser.add_argument("--cache", type=Path, default=None,
                        help="cache file used by --changed (default: "
                             f"<project-root>/{DEFAULT_CACHE_NAME})")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default=None,
                        help="output format (default: text)")
    parser.add_argument("--json", action="store_true",
                        help="alias for --format json")
    parser.add_argument("--stats", action="store_true",
                        help="print per-checker wall time, per-rule "
                             "finding counts and the --changed cache "
                             "hit ratio to stderr")
    parser.add_argument("--list-rules", action="store_true",
                        help="list every rule id and exit")
    parser.add_argument("--list-exceptions", action="store_true",
                        help="list registered layering escape hatches "
                             "and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        for cls in (*all_checkers(), *all_project_checkers()):
            print(f"[{cls.name}]")
            for rule, desc in cls.rules.items():
                print(f"  {rule:24} {desc}")
        return 0
    if args.list_exceptions:
        for (path, module), why in sorted(
                DEFAULT_CONFIG.layer_exceptions.items()):
            print(f"{path} -> {module}\n    {why}")
        return 0

    raw_paths = args.paths or ["src", "examples"]
    roots = [Path(p) for p in raw_paths]
    missing = [str(p) for p in roots if not p.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2

    project_root = find_project_root(roots[0])
    cache = None
    if args.changed:
        cache_path = args.cache or project_root / DEFAULT_CACHE_NAME
        cache = AnalysisCache.load(cache_path)
        cache.path = cache_path
    stats = RunStats() if args.stats else None
    findings = run_analysis(roots, DEFAULT_CONFIG, project_root,
                            cache=cache, stats=stats)
    if stats is not None:
        print(stats.render(), file=sys.stderr)
    if cache is not None:
        cache.save()
        total = len(cache.hits) + len(cache.misses)
        print(f"repro-lint: --changed reused {len(cache.hits)}/{total} "
              f"cached file(s)", file=sys.stderr)

    baseline_path = args.baseline or project_root / DEFAULT_BASELINE_NAME
    if args.update_baseline:
        baseline_path.write_text(format_baseline(findings))
        print(f"repro-lint: wrote {len(findings)} finding(s) to "
              f"{baseline_path}")
        return 0

    stale: set[str] = set()
    if not args.no_baseline:
        findings, stale = apply_baseline(findings,
                                         load_baseline(baseline_path))

    fmt = args.format or ("json" if args.json else "text")
    if fmt == "json":
        print(json.dumps([{
            "rule": f.rule, "message": f.message, "path": f.path,
            "line": f.line, "col": f.col, "severity": str(f.severity),
            "fingerprint": f.fingerprint,
        } for f in findings], indent=2))
    elif fmt == "sarif":
        from repro.analysis.sarif import to_sarif
        print(json.dumps(to_sarif(findings), indent=2))
    else:
        for f in findings:
            print(f.render())
        if stale:
            print(f"repro-lint: note: {len(stale)} stale baseline "
                  f"{'entry no longer matches' if len(stale) == 1 else 'entries no longer match'} "
                  f"any finding; regenerate with "
                  f"--update-baseline", file=sys.stderr)
        if findings:
            print(f"repro-lint: {len(findings)} finding(s)",
                  file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
