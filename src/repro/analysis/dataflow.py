"""Interprocedural dataflow: SCC condensation + summary fixpoint.

The framework is deliberately small: a *client* owns a per-function
summary (any JSON-ish value) and a monotone ``transfer`` function that
recomputes one function's summary from its local facts plus the current
summaries of its callees.  :func:`solve` runs the classic worklist:

* Tarjan's algorithm (iterative — analysis runs over arbitrarily deep
  project code) condenses the call graph into strongly connected
  components, emitted callees-first, so each acyclic region is solved
  in one pass.
* Within an SCC (recursion, mutual recursion) members are iterated to
  a fixpoint.  Termination is the client's contract: summaries must
  only grow under repeated transfer (all three shipped clients use
  monotone set/dict unions over finite fact domains).  A generous
  iteration cap turns a buggy non-monotone client into a loud error
  rather than a hang.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

#: safety net for non-monotone clients; real SCCs converge in 2-3 rounds
MAX_SCC_ROUNDS = 64


class FixpointError(RuntimeError):
    """An SCC failed to converge — the client's transfer is unsound."""


def strongly_connected(nodes: Iterable[str],
                       adjacency: dict[str, list[str]]
                       ) -> list[list[str]]:
    """SCCs of the directed graph, callees-first (reverse topological
    order of the condensation), each component sorted for determinism.

    Iterative Tarjan: the explicit stack mirrors the recursive
    formulation's (node, edge cursor) frames.
    """
    order = list(dict.fromkeys(nodes))
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in order:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, cursor = work[-1]
            if cursor == 0:
                index[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = adjacency.get(node, ())
            advanced = False
            while cursor < len(succs):
                succ = succs[cursor]
                cursor += 1
                if succ not in index:
                    work[-1] = (node, cursor)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if advanced:
                continue
            work.pop()
            if low[node] == index[node]:
                scc: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(sorted(scc))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def solve(nodes: Iterable[str],
          adjacency: dict[str, list[str]],
          initial: Callable[[str], Any],
          transfer: Callable[[str, dict[str, Any]], Any],
          equal: Callable[[Any, Any], bool] = lambda a, b: a == b,
          ) -> dict[str, Any]:
    """Fixpoint of ``transfer`` over the call graph.

    ``initial(node)`` seeds each function with its local facts;
    ``transfer(node, summaries)`` recomputes one summary reading only
    ``summaries`` (callee entries are final for already-solved SCCs and
    the previous round's value inside the current SCC).
    """
    summaries: dict[str, Any] = {}
    for node in dict.fromkeys(nodes):
        summaries[node] = initial(node)
    for scc in strongly_connected(summaries, adjacency):
        trivial = len(scc) == 1 and scc[0] not in adjacency.get(
            scc[0], ())
        if trivial:
            summaries[scc[0]] = transfer(scc[0], summaries)
            continue
        for _round in range(MAX_SCC_ROUNDS):
            changed = False
            for node in scc:
                updated = transfer(node, summaries)
                if not equal(updated, summaries[node]):
                    summaries[node] = updated
                    changed = True
            if not changed:
                break
        else:
            raise FixpointError(
                f"dataflow SCC {scc!r} did not converge in "
                f"{MAX_SCC_ROUNDS} rounds; the client transfer is not "
                f"monotone")
    return summaries


def reach_chain(chain: tuple[str, ...], limit: int = 5) -> str:
    """Human-readable ``a -> b -> c`` call chain, elided when long."""
    shown = [q.rsplit(".", 1)[-1] + "()" for q in chain[:limit]]
    if len(chain) > limit:
        shown.append("...")
    return " -> ".join(shown)
