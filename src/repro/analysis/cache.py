"""Content-addressed per-file result cache for ``repro-lint --changed``.

Reuses the baseline's content-addressing idea at file granularity: each
entry is keyed by the SHA-1 of the file's bytes and stores everything
the engine otherwise derives from the AST — per-file findings, inline
suppressions, the call-graph slice, and every project checker's fact
blob.  An unchanged file is therefore never re-read beyond hashing, yet
the *interprocedural* phase still runs over all summaries every time,
so a change in one file correctly re-derives findings in its unchanged
callers (summary invalidation is structural, not cached).

The cache signature folds in the registered rule set: adding, removing
or renaming rules invalidates every entry, so stale fact formats from
an older checker generation can never leak into a run.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.callgraph import FileSlice
from repro.analysis.findings import Finding, Severity
from repro.analysis.suppress import Suppressions

DEFAULT_CACHE_NAME = ".repro-lint-cache.json"
_SCHEMA = "repro-lint-cache/1"


def file_sha(path: Path) -> str:
    return hashlib.sha1(path.read_bytes()).hexdigest()


def _signature() -> str:
    from repro.analysis.base import all_rules
    blob = _SCHEMA + "|" + ",".join(sorted(all_rules()))
    return hashlib.sha1(blob.encode()).hexdigest()[:12]


def _finding_to_json(f: Finding) -> dict:
    return {"rule": f.rule, "message": f.message, "path": f.path,
            "line": f.line, "col": f.col, "severity": int(f.severity),
            "source_line": f.source_line}


def _finding_from_json(blob: dict) -> Finding:
    return Finding(blob["rule"], blob["message"], blob["path"],
                   blob["line"], blob["col"],
                   Severity(blob["severity"]), blob["source_line"])


class AnalysisCache:
    """Load/store per-file analysis units keyed by content hash."""

    def __init__(self, path: Path | None = None) -> None:
        self.path = path
        self.entries: dict[str, dict] = {}
        #: paths served from cache during the last run (for reporting)
        self.hits: list[str] = []
        self.misses: list[str] = []

    # -- persistence -----------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "AnalysisCache":
        cache = cls(path)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            return cache
        if doc.get("signature") != _signature():
            return cache  # rule set changed: start fresh
        entries = doc.get("entries")
        if isinstance(entries, dict):
            cache.entries = entries
        return cache

    def save(self) -> None:
        if self.path is None:
            return
        live = {p: e for p, e in sorted(self.entries.items())
                if (self.path.parent / p).exists()}
        self.path.write_text(json.dumps(
            {"signature": _signature(), "entries": live},
            separators=(",", ":")) + "\n")

    # -- per-file units --------------------------------------------------
    def lookup(self, relpath: str, sha: str) -> dict | None:
        """Deserialized unit for an unchanged file, else None."""
        entry = self.entries.get(relpath)
        if entry is None or entry.get("sha") != sha:
            self.misses.append(relpath)
            return None
        self.hits.append(relpath)
        return {
            "findings": [_finding_from_json(b) for b in entry["findings"]],
            "suppressions": Suppressions.from_json(entry["suppressions"]),
            "slice": (FileSlice.from_json(entry["slice"])
                      if entry.get("slice") is not None else None),
            "facts": dict(entry.get("facts", {})),
        }

    def store(self, relpath: str, sha: str, findings: list[Finding],
              suppressions: Suppressions, slice_, facts: dict) -> None:
        self.entries[relpath] = {
            "sha": sha,
            "findings": [_finding_to_json(f) for f in findings],
            "suppressions": suppressions.to_json(),
            "slice": slice_.to_json() if slice_ is not None else None,
            "facts": facts,
        }
