"""Determinism checkers (rule family ``det-*``).

The simulation kernel guarantees bit-exact reproducibility only if no
code injects real-world entropy or unordered iteration into the event
stream.  Four rules:

``det-wallclock``
    Reading the host clock (``time.time``, ``datetime.now``, ...).
    Simulated code must use the kernel's virtual clock.
``det-random``
    Module-level :mod:`random` functions — hidden global state that any
    import-order change reseeds.  Use a seeded ``random.Random``.
``det-entropy``
    OS entropy: ``os.urandom``, ``uuid.uuid1/uuid4``, :mod:`secrets`,
    ``random.SystemRandom``.
``det-set-order``
    Iterating a set (or materialising one into a sequence) where Python
    hash randomisation makes the order vary across runs.  Wrap the set
    in ``sorted(...)`` or keep an insertion-ordered ``dict`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

#: dotted call targets that read the host clock
_WALLCLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: module-level random functions (shared hidden state)
_GLOBAL_RANDOM = {
    "random." + fn for fn in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "paretovariate",
        "vonmisesvariate", "weibullvariate", "triangular", "getrandbits",
        "randbytes", "seed", "setstate", "getstate",
    )
}

#: OS-entropy sources that can never be reproduced
_ENTROPY = {
    "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
    "random.SystemRandom",
}
_ENTROPY_MODULES = {"secrets"}

#: consumers that materialise an iteration order (beyond plain ``for``)
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}


def _is_set_display(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("set", "frozenset"):
        return True
    return False


class _Scope:
    """Names currently bound to unordered (set-typed) values."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.unordered: dict[str, bool] = {}

    def mark(self, name: str, unordered: bool) -> None:
        self.unordered[name] = unordered

    def is_unordered(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.unordered:
                return scope.unordered[name]
            scope = scope.parent
        return False


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.imap = ctx.import_map
        self.findings: list[Finding] = []
        self.scope = _Scope()

    # -- scope management ---------------------------------------------------
    def _in_new_scope(self, node: ast.AST) -> None:
        outer, self.scope = self.scope, _Scope(self.scope)
        self.generic_visit(node)
        self.scope = outer

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._in_new_scope(node)

    # -- tracking set-typed names ------------------------------------------
    def _expr_unordered(self, node: ast.expr) -> bool:
        if _is_set_display(node):
            return True
        if isinstance(node, ast.Name):
            return self.scope.is_unordered(node.id)
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            # set algebra: unordered if either operand is
            return (self._expr_unordered(node.left)
                    or self._expr_unordered(node.right))
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in ("union", "intersection", "difference",
                                  "symmetric_difference", "copy"):
                return self._expr_unordered(node.func.value)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        unordered = self._expr_unordered(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scope.mark(target.id, unordered)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self.scope.mark(node.target.id, self._expr_unordered(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # ``s |= other`` keeps set-ness; anything else leaves it unchanged
        self.generic_visit(node)

    # -- rule det-set-order -------------------------------------------------
    def _flag_if_unordered(self, node: ast.expr, what: str) -> None:
        if self._expr_unordered(node):
            self.findings.append(self.ctx.finding(
                "det-set-order",
                f"{what} iterates a set in hash order, which varies "
                f"between runs; wrap it in sorted(...) or use an "
                f"insertion-ordered dict", node))

    def visit_For(self, node: ast.For) -> None:
        self._flag_if_unordered(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._flag_if_unordered(gen.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    # a set comprehension *produces* a set; consuming its generator in
    # arbitrary order is fine because the result is unordered anyway
    visit_SetComp = _visit_comprehension

    # -- call-based rules ---------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        qual = self.imap.qualify(node.func)
        if qual is not None:
            self._check_qualified(qual, node)
        if isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_SENSITIVE_CALLS \
                and len(node.args) == 1:
            self._flag_if_unordered(node.args[0],
                                    f"{node.func.id}(...)")
        if isinstance(node.func, ast.Attribute) and node.func.attr == "join" \
                and len(node.args) == 1:
            self._flag_if_unordered(node.args[0], "str.join(...)")
        self.generic_visit(node)

    def _check_qualified(self, qual: str, node: ast.Call) -> None:
        if qual in _WALLCLOCK:
            self.findings.append(self.ctx.finding(
                "det-wallclock",
                f"{qual}() reads the host clock; simulated code must use "
                f"the kernel's virtual clock (SimKernel.now)", node))
        elif qual in _GLOBAL_RANDOM:
            self.findings.append(self.ctx.finding(
                "det-random",
                f"{qual}() uses the process-global RNG; use a "
                f"random.Random(seed) instance owned by the simulation",
                node))
        elif qual in _ENTROPY:
            self.findings.append(self.ctx.finding(
                "det-entropy",
                f"{qual}() draws OS entropy and can never replay "
                f"identically; derive ids/seeds from simulation state",
                node))

    # every use of the secrets module is entropy, so the import itself
    # is the finding (wallclock/random rules fire at call sites instead)
    def _flag_entropy_module(self, name: str, node: ast.AST) -> None:
        if name.split(".")[0] in _ENTROPY_MODULES:
            self.findings.append(self.ctx.finding(
                "det-entropy",
                f"the {name.split('.')[0]} module draws OS entropy and "
                f"can never replay identically", node))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._flag_entropy_module(alias.name, node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._flag_entropy_module(node.module or "", node)
        self.generic_visit(node)


@register_checker
class DeterminismChecker(Checker):
    name = "determinism"
    rules = {
        "det-wallclock": "host clock read (time.time, datetime.now, ...)",
        "det-random": "process-global random module use",
        "det-entropy": "OS entropy (os.urandom, uuid4, secrets)",
        "det-set-order": "iteration order of a set leaks into results",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        visitor = _DeterminismVisitor(ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
