"""Checker plugin model for ``repro-lint``.

A checker is a class with a ``rules`` table and a ``check(ctx, config)``
method yielding :class:`~repro.analysis.findings.Finding` objects for
one file.  Registration is decorator-based so new families plug in
without touching the engine::

    @register_checker
    class MyChecker(Checker):
        name = "my-family"
        rules = {"my-rule": "what it catches"}

        def check(self, ctx, config):
            ...
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.imports import ImportMap
from repro.analysis.suppress import Suppressions


@dataclass
class ModuleContext:
    """Everything a checker may want to know about one source file."""

    path: str                       # project-relative, forward slashes
    source: str
    tree: ast.AST | None            # None for non-Python files (.idl)
    module: str | None = None       # dotted name for files under src/
    is_package: bool = False        # True for __init__.py
    suppressions: Suppressions = field(default_factory=Suppressions)
    _import_map: ImportMap | None = None
    _lines: list[str] | None = None

    @property
    def import_map(self) -> ImportMap:
        if self._import_map is None:
            assert self.tree is not None
            self._import_map = ImportMap.build(
                self.tree, self.module, self.is_package)
        return self._import_map

    def line_text(self, line: int) -> str:
        if self._lines is None:
            self._lines = self.source.splitlines()
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1]
        return ""

    def finding(self, rule: str, message: str, node: ast.AST | None = None,
                line: int = 0, col: int = 0,
                severity: Severity = Severity.ERROR) -> Finding:
        if node is not None:
            line = getattr(node, "lineno", line)
            col = getattr(node, "col_offset", col)
        return Finding(rule, message, self.path, line, col, severity,
                       self.line_text(line))


class Checker:
    """Base class: one family of rules over one file at a time."""

    #: short family name, e.g. "determinism"
    name: str = "base"
    #: rule id -> one-line description (drives ``repro-lint --list-rules``)
    rules: dict[str, str] = {}
    #: set to True for checkers that also understand non-Python sources
    handles_idl: bool = False

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        raise NotImplementedError

    def applicable(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None


class ProjectChecker:
    """A whole-program checker driven by the interprocedural engine.

    Runs in two phases so the ``--changed`` cache can skip unchanged
    files entirely:

    * :meth:`file_facts` reduces one parsed module to a JSON-serializable
      fact blob (local findings material, dataflow IR, seed facts).  It
      is the only phase with AST access, and its result is cached by
      file content hash alongside the call-graph slice.
    * :meth:`project_check` sees every file's facts plus the assembled
      :class:`~repro.analysis.callgraph.CallGraph` and yields findings —
      typically by running a summary fixpoint via
      :mod:`repro.analysis.dataflow` and interpreting each function's
      facts under the solved summaries.

    Engine-side suppression / allowlist / disabled-rule filtering
    applies to project findings exactly as to per-file ones.
    """

    name: str = "project-base"
    rules: dict[str, str] = {}

    def file_facts(self, ctx: ModuleContext,
                   config: AnalysisConfig) -> object:
        raise NotImplementedError

    def project_check(self, facts: dict[str, object], graph,
                      config: AnalysisConfig) -> Iterator[Finding]:
        """``facts`` maps file path -> the blob from :meth:`file_facts`;
        ``graph`` is the :class:`CallGraph` over every analysed file."""
        raise NotImplementedError


_REGISTRY: list[type[Checker]] = []
_PROJECT_REGISTRY: list[type[ProjectChecker]] = []


def register_checker(cls: type[Checker]) -> type[Checker]:
    _REGISTRY.append(cls)
    return cls


def register_project_checker(
        cls: type[ProjectChecker]) -> type[ProjectChecker]:
    _PROJECT_REGISTRY.append(cls)
    return cls


def _load_builtin_families() -> None:
    # import for side effect: built-in families self-register
    from repro.analysis import (  # noqa: F401
        blocking,
        bufsan,
        determinism,
        idllint,
        layering,
        obsguard,
        perf,
        simrace,
        typestate,
    )


def all_checkers() -> list[type[Checker]]:
    """Registered per-file checker classes, in registration order."""
    _load_builtin_families()
    return list(_REGISTRY)


def all_project_checkers() -> list[type[ProjectChecker]]:
    """Registered whole-program checker classes."""
    _load_builtin_families()
    return list(_PROJECT_REGISTRY)


def all_rules() -> dict[str, str]:
    out: dict[str, str] = {}
    for cls in all_checkers():
        out.update(cls.rules)
    for cls in all_project_checkers():
        out.update(cls.rules)
    return out
