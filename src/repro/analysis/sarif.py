"""SARIF 2.1.0 serialisation for ``repro-lint`` findings.

SARIF (Static Analysis Results Interchange Format) is the format CI
platforms ingest to annotate pull requests with findings.  One run, one
tool, one result per finding; the content-addressed fingerprint rides
along in ``partialFingerprints`` so downstream dedup survives line
drift for the same reason the baseline does.
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}


def _rule_descriptors(findings: list[Finding]) -> list[dict]:
    from repro.analysis.base import all_rules

    descriptions = all_rules()
    seen = sorted({f.rule for f in findings})
    return [{
        "id": rule,
        "shortDescription": {
            "text": descriptions.get(rule, rule),
        },
    } for rule in seen]


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    region: dict = {}
    if finding.line:
        region["startLine"] = finding.line
        # SARIF columns are 1-based; AST col_offset is 0-based
        region["startColumn"] = finding.col + 1
    if finding.source_line:
        region["snippet"] = {"text": finding.source_line}
    location = {
        "physicalLocation": {
            "artifactLocation": {
                "uri": finding.path,
                "uriBaseId": "SRCROOT",
            },
        },
    }
    if region:
        location["physicalLocation"]["region"] = region
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _LEVELS[finding.severity],
        "message": {"text": finding.message},
        "locations": [location],
        "partialFingerprints": {
            "reproLintFingerprint/v1": finding.fingerprint,
        },
    }


def to_sarif(findings: list[Finding]) -> dict:
    """The findings of one analysis run as a SARIF 2.1.0 log object."""
    rules = _rule_descriptors(findings)
    rule_index = {r["id"]: i for i, r in enumerate(rules)}
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "file:docs/ANALYSIS.md",
                    "rules": rules,
                },
            },
            "results": [_result(f, rule_index) for f in findings],
        }],
    }
