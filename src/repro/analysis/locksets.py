"""Event IR + lockset interpretation for the ``sim-race`` analysis.

This module is the machinery under :mod:`repro.analysis.simrace`: the
*fact side* reduces one parsed module to a JSON-serializable event IR
(shared-attribute reads/writes, primitive operations, call sites,
spawn/schedule registrations), and the *project side* interprets every
function's events under the solved callee summaries to produce, per
function:

* a transitive **may-yield** summary (does calling this function ever
  reach a kernel switch point?), seeded from the shared primitive
  registry in :mod:`repro.sim.primitives`;
* its **accesses**: shared ``self``-attribute (and declared-global)
  reads/writes with the set of locks held at each site, propagated
  through the call graph with caller-held locks added;
* its **atomicity windows**: read → may-yield → write sequences on one
  key with the common lockset of the two sites and the yield chain;
* its **channel operations**: release/acquire-style primitive calls
  (the static mirror of the sanitizer's ``hb_release``/``hb_acquire``
  edges), used to attenuate pairs that are ordered by a hand-off.

Receiver typing is deliberately syntactic and constructor-based
(``self._lock = SimLock(kernel)`` types ``C._lock``), with a
distinctive-name fallback (``.wait()``, ``.acquire()``, ...) for
receivers the analysis cannot type — a corpus program that defines its
own primitive-shaped class is still seen.  A missed type means missed
edges, never invented ones.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.sim.primitives import (
    PRIMITIVES,
    YIELD_METHOD_FALLBACK,
    yield_seed_quals,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.base import ModuleContext
    from repro.analysis.callgraph import CallGraph

#: method calls on a self-attribute that mutate the underlying container
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "remove", "clear", "add", "discard", "update", "setdefault",
    "sort", "reverse", "push",
})

#: tracer/monitor hook names — methods with these names are entry
#: points driven by the kernel (they run inside arbitrary contexts)
HOOK_NAMES = frozenset({
    "on_schedule", "on_fire", "on_switch", "on_exit", "on_join",
    "on_block", "on_wake", "hb_release", "hb_acquire", "on_access",
    "on_span_start", "on_span_end",
})

#: keep summaries bounded on pathological fan-in
_MAX_ACCESSES = 400
_MAX_WINDOWS = 80
_CHAIN_CAP = 6

SEED_QUALS = yield_seed_quals()


def _attr_chain(node: ast.expr) -> list[str] | None:
    """``self.a.b`` -> ["self", "a", "b"]; None when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


# ----------------------------------------------------------------------
# fact side: module AST -> per-function event IR
# ----------------------------------------------------------------------
class FactBuilder:
    """Extract the sim-race fact blob for one module."""

    def __init__(self, ctx: "ModuleContext", module: str):
        self.ctx = ctx
        self.module = module
        self.imap = ctx.import_map
        self.functions: dict[str, dict] = {}
        self.typed: dict[str, str] = {}
        self.entries: list[dict] = []
        self._scopes: list[dict[str, str]] = [{}]
        self._cls_stack: list[str] = []
        self._fn_stack: list[str] = []

    def run(self) -> dict:
        assert self.ctx.tree is not None
        self._preregister(self.ctx.tree.body)
        self._walk_defs(self.ctx.tree.body)
        return {"functions": self.functions, "typed": self.typed,
                "entries": self.entries}

    # -- scope bookkeeping (mirrors callgraph._SliceVisitor) -----------
    def _qual_here(self, name: str) -> str:
        if self._cls_stack and not self._fn_stack:
            return f"{self._cls_stack[-1]}.{name}"
        if self._fn_stack:
            return f"{self._fn_stack[-1]}.{name}"
        return f"{self.module}.{name}"

    def _preregister(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._scopes[-1][stmt.name] = self._qual_here(stmt.name)

    def _walk_defs(self, body: list[ast.stmt]) -> None:
        """Collect function facts; non-def statements at class/module
        level carry no simprocess context and are skipped."""
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                qual = self._qual_here(stmt.name)
                self._cls_stack.append(qual)
                self._scopes.append({})
                self._preregister(stmt.body)
                self._walk_defs(stmt.body)
                self._scopes.pop()
                self._cls_stack.pop()
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._visit_function(stmt)

    def _visit_function(self, node) -> None:
        qual = self._qual_here(node.name)
        in_class = bool(self._cls_stack) and not self._fn_stack
        cls = self._cls_stack[-1] if in_class else self._enclosing_cls()
        self._fn_stack.append(qual)
        self._scopes.append({})
        self._preregister(node.body)
        scanner = _FunctionScanner(self, qual, cls, node)
        events = scanner.scan()
        self.functions[qual] = {
            "path": self.ctx.path, "line": node.lineno,
            "name": node.name, "cls": cls, "events": events,
        }
        self._walk_defs(node.body)  # nested defs become their own facts
        self._scopes.pop()
        self._fn_stack.pop()

    def _enclosing_cls(self) -> str | None:
        """Closures inside a method still see the method's ``self``."""
        if not self._fn_stack:
            return None
        for fn_qual in reversed(self._fn_stack):
            info = self.functions.get(fn_qual)
            if info is not None and info["cls"] is not None:
                return info["cls"]
        # the directly enclosing class, when the stack has no facts yet
        return self._cls_stack[-1] if self._cls_stack else None

    def _lookup_local(self, name: str) -> str | None:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        return None

    def _constructor_leaf(self, call: ast.Call) -> str | None:
        """Primitive class name when ``call`` constructs one."""
        qual = self.imap.qualify(call.func)
        if qual is None and isinstance(call.func, ast.Name):
            qual = call.func.id
        if qual is None:
            return None
        leaf = qual.rsplit(".", 1)[-1]
        return leaf if leaf in PRIMITIVES else None


class _FunctionScanner:
    """Emit the event list for one function body (nested defs excluded)."""

    def __init__(self, builder: FactBuilder, qual: str,
                 cls: str | None, node) -> None:
        self.b = builder
        self.qual = qual
        self.cls = cls
        self.node = node
        self.is_init = node.name == "__init__"
        self._globals: set[str] = set()
        #: local var -> shared key it aliases / is typed as
        self._local_keys: dict[str, str] = {}
        #: local var -> project class qual it was constructed from
        self._local_cls: dict[str, str] = {}
        #: locally-constructed vars that may leave this function
        self._escaped: set[str] = set()
        self._loop_depth = 0

    # -- pass 1: local typing ------------------------------------------
    def _shallow_walk(self, node):
        """Walk without descending into nested function/class defs."""
        stack = list(ast.iter_child_nodes(node))
        while stack:
            child = stack.pop()
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef, ast.Lambda)):
                continue
            yield child
            stack.extend(ast.iter_child_nodes(child))

    def _pretype(self) -> None:
        for stmt in self._shallow_walk(self.node):
            if isinstance(stmt, ast.Global):
                self._globals.update(stmt.names)
            if not (isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1):
                continue
            target, value = stmt.targets[0], stmt.value
            key = self._key_of(target)
            if isinstance(value, ast.Call):
                leaf = self.b._constructor_leaf(value)
                if leaf is None and isinstance(value.func, ast.Attribute) \
                        and value.func.attr == "spawn":
                    leaf = "SimProcess"  # kernel.spawn() returns one
                if leaf is not None and key is not None:
                    self.b.typed[key] = leaf
                elif leaf is not None and isinstance(target, ast.Name):
                    local = f"{self.qual}:{target.id}"
                    self._local_keys[target.id] = local
                    self.b.typed[local] = leaf
                elif leaf is None and isinstance(target, ast.Name):
                    cls = self._class_of_call(value)
                    if cls is not None:
                        self._local_cls[target.id] = cls
            elif isinstance(target, ast.Name):
                alias = self._key_of(value)
                if alias is not None:
                    self._local_keys[target.id] = alias
        self._scan_escapes()

    def _scan_escapes(self) -> None:
        """A locally-constructed object escapes when it is returned,
        stored through an attribute/subscript, or passed as a call
        argument — from then on another context may alias it.  Pure
        receiver positions (``out.method()``, ``out.attr``) do not
        escape."""
        def names_in(node: ast.expr) -> None:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name):
                    self._escaped.add(sub.id)

        for node in self._shallow_walk(self.node):
            if isinstance(node, ast.Return) and node.value is not None:
                names_in(node.value)
            elif isinstance(node, ast.Assign):
                if any(not isinstance(t, ast.Name) for t in node.targets):
                    names_in(node.value)
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    names_in(arg)
                for kw in node.keywords:
                    names_in(kw.value)

    def _class_of_call(self, call: ast.Call) -> str | None:
        """Project class qual when ``call`` looks like a constructor
        (``c = Counter(...)``) — used to pin spawn targets like
        ``kernel.spawn(c.bump)`` to a specific class."""
        func = call.func
        if isinstance(func, ast.Name):
            local = self.b._lookup_local(func.id)
            if local is not None:
                return local
        qual = self.b.imap.qualify(func)
        if qual is not None and qual.rsplit(".", 1)[-1][:1].isupper():
            return qual
        return None

    def _key_of(self, node: ast.expr) -> str | None:
        """Shared-state key for an expression: a ``self`` attribute
        chain (``C.attr.sub``), a declared global, or a typed local."""
        chain = _attr_chain(node) if isinstance(node, ast.Attribute) \
            else None
        if chain is not None and chain[0] == "self" and self.cls \
                and len(chain) > 1:
            return f"{self.cls}.{'.'.join(chain[1:4])}"
        if isinstance(node, ast.Name):
            if node.id in self._globals:
                return f"{self.b.module}.{node.id}"
            return self._local_keys.get(node.id)
        return None

    # -- pass 2: events ------------------------------------------------
    def scan(self) -> list:
        self._pretype()
        return self._block(self.node.body)

    def _block(self, stmts: list[ast.stmt]) -> list:
        events: list = []
        for stmt in stmts:
            self._statement(stmt, events)
        return events

    def _statement(self, stmt: ast.stmt, out: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate facts
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, out)
            for target in stmt.targets:
                self._target(target, out)
        elif isinstance(stmt, ast.AugAssign):
            self._expr(stmt.value, out)
            key = self._read_key_of_target(stmt.target)
            if key is not None:
                self._emit_read(key, stmt, out)
            self._target(stmt.target, out)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._expr(stmt.value, out)
                self._target(stmt.target, out)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._target(target, out)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, out)
            out.append(["branch", [self._block(stmt.body),
                                   self._block(stmt.orelse)]])
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.While):
                self._expr(stmt.test, out)
            else:
                self._expr(stmt.iter, out)
                self._target(stmt.target, out)
            self._loop_depth += 1
            out.extend(self._block(stmt.body))
            self._loop_depth -= 1
            out.extend(self._block(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            out.extend(self._block(stmt.body))
            arms = [self._block(h.body) for h in stmt.handlers]
            arms.append([])  # the no-exception path
            out.append(["branch", arms])
            out.extend(self._block(stmt.orelse))
            out.extend(self._block(stmt.finalbody))
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr(item.context_expr, out)
                if item.optional_vars is not None:
                    self._target(item.optional_vars, out)
            out.extend(self._block(stmt.body))
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, out)
        elif isinstance(stmt, (ast.Expr, ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, out)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, out)

    # -- write targets -------------------------------------------------
    def _read_key_of_target(self, target: ast.expr) -> str | None:
        key = self._key_of(target)
        if key is not None and not isinstance(target, ast.Name):
            return key
        if isinstance(target, ast.Name) and target.id in self._globals:
            return key
        return None

    def _target(self, target: ast.expr, out: list) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._target(elt, out)
            return
        if isinstance(target, ast.Starred):
            self._target(target.value, out)
            return
        if isinstance(target, ast.Subscript):
            key = self._key_of(target.value)
            if key is not None:
                self._emit_write(key, target, out)
            else:
                self._expr(target.value, out)
            self._expr(target.slice, out)
            return
        key = self._key_of(target)
        if isinstance(target, ast.Name):
            if target.id in self._globals:
                self._emit_write(key, target, out)
            return
        if key is not None:
            self._emit_write(key, target, out)

    # -- expressions ---------------------------------------------------
    def _emit_read(self, key: str, node, out: list) -> None:
        out.append(["read", key, node.lineno,
                    self.b.ctx.line_text(node.lineno), self.is_init])

    def _emit_write(self, key: str, node, out: list,
                    mut: bool = False) -> None:
        out.append(["write", key, node.lineno,
                    self.b.ctx.line_text(node.lineno), self.is_init,
                    mut])

    def _expr(self, node: ast.expr, out: list) -> None:
        if isinstance(node, ast.Call):
            self._call(node, out)
            return
        if isinstance(node, ast.Attribute):
            key = self._key_of(node)
            if key is not None:
                self._emit_read(key, node, out)
            else:
                self._expr(node.value, out)
            return
        if isinstance(node, ast.Subscript):
            key = self._key_of(node.value)
            if key is not None:
                self._emit_read(key, node, out)
            else:
                self._expr(node.value, out)
            self._expr(node.slice, out)
            return
        if isinstance(node, ast.Name):
            if node.id in self._globals:
                self._emit_read(f"{self.b.module}.{node.id}", node, out)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body: no events at this site
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, out)

    def _call(self, node: ast.Call, out: list) -> None:
        func = node.func
        prov = None
        if isinstance(func, ast.Attribute):
            recv_key = self._key_of(func.value)
            method = func.attr
            self._record_entry(method, node)
            if isinstance(func.value, ast.Name) \
                    and func.value.id in self._local_cls \
                    and func.value.id not in self._escaped:
                prov = self._local_cls[func.value.id]
            if recv_key is not None:
                if method in _MUTATORS:
                    self._emit_write(recv_key, node, out, mut=True)
                else:
                    self._emit_read(recv_key, node, out)
                out.append(["op", recv_key, method, node.lineno,
                            node.col_offset])
            else:
                self._expr(func.value, out)
                out.append(["op", None, method, node.lineno,
                            node.col_offset])
        out.append(["call", node.lineno, node.col_offset, prov])
        for arg in node.args:
            if not isinstance(arg, ast.Starred):
                self._expr(arg, out)
            else:
                self._expr(arg.value, out)
        for kw in node.keywords:
            self._expr(kw.value, out)

    def _record_entry(self, method: str, node: ast.Call) -> None:
        if method == "spawn":
            kind, pos = "process", 0
        elif method in ("schedule", "_schedule"):
            kind, pos = "callback", 1
        else:
            return
        if len(node.args) <= pos:
            return
        spec = self._entry_spec(node.args[pos])
        if spec is None:
            return
        self.b.entries.append({
            "fn": spec, "kind": kind, "path": self.b.ctx.path,
            "line": node.lineno, "multi": self._loop_depth > 0,
        })

    def _entry_spec(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            local = self.b._lookup_local(target.id)
            if local is not None:
                return f"q:{local}"
            qual = self.b.imap.qualify(target)
            return f"q:{qual}" if qual is not None else None
        if isinstance(target, ast.Attribute):
            chain = _attr_chain(target)
            if chain and chain[0] == "self" and self.cls \
                    and len(chain) == 2:
                return f"a:{self.cls}:{chain[1]}"
            if chain and len(chain) == 2 \
                    and chain[0] in self._local_cls:
                return f"a:{self._local_cls[chain[0]]}:{chain[1]}"
            qual = self.b.imap.qualify(target)
            if qual is not None:
                return f"q:{qual}"
            return f"m:{target.attr}"
        return None


def build_file_facts(ctx: "ModuleContext", module: str) -> dict:
    """The sim-race fact blob for one parsed module."""
    return FactBuilder(ctx, module).run()


# ----------------------------------------------------------------------
# project side: summary interpretation
# ----------------------------------------------------------------------
def empty_summary() -> dict:
    return {"yield": None, "accesses": [], "windows": [],
            "rel": [], "acq": [], "spans": []}


def seed_summary(qual: str) -> dict:
    summary = empty_summary()
    if qual in SEED_QUALS:
        leaf = ".".join(qual.rsplit(".", 2)[-2:])
        summary["yield"] = {"name": leaf, "site": "", "chain": [leaf]}
    return summary


def _typed_lookup(typed: dict[str, str], key: str) -> str | None:
    """Type of ``key`` or of a prefix of it (``C.box.x`` is typed when
    ``C.box`` is)."""
    probe = key
    while True:
        hit = typed.get(probe)
        if hit is not None:
            return hit
        if "." not in probe:
            return None
        probe = probe.rsplit(".", 1)[0]


class _Interp:
    """Interpret one function's events under the callee summaries."""

    def __init__(self, qual: str, fact: dict, typed: dict,
                 summaries: dict, graph: "CallGraph") -> None:
        self.qual = qual
        self.fact = fact
        self.typed = typed
        self.summaries = summaries
        self.graph = graph
        self.held: set[str] = set()
        #: key -> [path, line, locks(set), yseen, chain]
        self.last_read: dict[str, list] = {}
        self.yielded: dict | None = None
        #: (key, kind, path, line) -> [locks(set), setup, mut, text]
        self.accesses: dict[tuple, list] = {}
        self.windows: list[list] = []
        self.rel: set[str] = set()
        self.acq: set[str] = set()
        #: straight-line straddle tracking: key -> [kind, yseen];
        #: ``spans`` collects keys whose consecutive accesses (one a
        #: write) straddle a yield on the unconditional path
        self._last_acc: dict[str, list] = {}
        self.spans: set[str] = set()
        self._depth = 0

    # -- event dispatch ------------------------------------------------
    def run(self) -> dict:
        self._events(self.fact["events"])
        accesses = sorted(
            [key, kind, path, line, sorted(locks), setup, mut, text]
            for (key, kind, path, line), (locks, setup, mut, text)
            in self.accesses.items())[:_MAX_ACCESSES]
        windows = sorted(self.windows)[:_MAX_WINDOWS]
        return {"yield": self.yielded, "accesses": accesses,
                "windows": windows, "rel": sorted(self.rel),
                "acq": sorted(self.acq), "spans": sorted(self.spans)}

    def _events(self, events: list) -> None:
        for ev in events:
            kind = ev[0]
            if kind == "read":
                self._read(ev[1], self.fact["path"], ev[2], ev[3], ev[4],
                           self.held)
            elif kind == "write":
                self._write(ev[1], self.fact["path"], ev[2], ev[3],
                            ev[4], self.held,
                            mut=bool(ev[5]) if len(ev) > 5 else False)
            elif kind == "op":
                self._op(ev[1], ev[2])
            elif kind == "call":
                self._call(ev[1], ev[2], ev[3] if len(ev) > 3 else None)
            elif kind == "branch":
                self._branch(ev[1])

    # -- reads/writes/windows ------------------------------------------
    def _tracked(self, key: str) -> bool:
        return _typed_lookup(self.typed, key) is None

    def _span_step(self, key: str, kind: str) -> None:
        if self._depth > 0:
            return
        prior = self._last_acc.get(key)
        if prior is not None and prior[1] \
                and (prior[0] == "w" or kind == "w"):
            self.spans.add(key)
        self._last_acc[key] = [kind, False]

    def _read(self, key: str, path: str, line: int, text: str,
              setup: bool, locks: set, span: bool = True) -> None:
        if not self._tracked(key):
            return
        self._note_access(key, "r", path, line, locks, setup, False,
                          text)
        if span:
            self._span_step(key, "r")
        self.last_read[key] = [path, line, set(locks), False, None]

    def _write(self, key: str, path: str, line: int, text: str,
               setup: bool, locks: set, mut: bool = False,
               complete: bool = True, span: bool = True) -> None:
        if not self._tracked(key):
            return
        self._note_access(key, "w", path, line, locks, setup, mut, text)
        if not setup and span:
            self._span_step(key, "w")
        lr = self.last_read.pop(key, None)
        if complete and lr is not None and lr[3] and not setup:
            common = sorted(lr[2] & locks)
            self.windows.append([
                key, lr[0], lr[1], path, line, text, common,
                list(lr[4] or ())[:_CHAIN_CAP], self.qual])

    def _note_access(self, key: str, kind: str, path: str, line: int,
                     locks: set, setup: bool, mut: bool,
                     text: str) -> None:
        slot = self.accesses.get((key, kind, path, line))
        if slot is None:
            self.accesses[(key, kind, path, line)] = [
                set(locks), setup, mut, text]
        else:
            slot[0] |= locks

    def _mark_yield(self, name: str, chain: list) -> None:
        if self.yielded is None:
            self.yielded = {"name": name, "site": "",
                            "chain": list(chain)[:_CHAIN_CAP]}
        for entry in self.last_read.values():
            if not entry[3]:
                entry[3] = True
                entry[4] = list(chain)[:_CHAIN_CAP]
        for acc in self._last_acc.values():
            acc[1] = True

    # -- primitive operations ------------------------------------------
    def _op(self, recv_key: str | None, method: str) -> None:
        prim = None if recv_key is None \
            else _typed_lookup(self.typed, recv_key)
        info = PRIMITIVES.get(prim) if prim is not None else None
        if info is not None:
            assert recv_key is not None
            if method in info["yields"]:
                self._mark_yield(f"{prim}.{method}",
                                 [f"{prim}.{method}"])
            if method in info["releases"]:
                self.rel.add(recv_key)
            if method in info["acquires"]:
                self.acq.add(recv_key)
            if info["lock"]:
                if method == "acquire":
                    self.held.add(recv_key)
                elif method == "release":
                    self.held.discard(recv_key)
            return
        # untyped receiver: distinctive-name fallback
        if method in YIELD_METHOD_FALLBACK:
            self._mark_yield(f".{method}()", [f".{method}()"])
        if recv_key is not None:
            # acquire/release are distinctive enough to trust as lock
            # discipline even untyped — over-estimating held locks only
            # suppresses findings (FP-averse)
            if method == "acquire":
                self.held.add(recv_key)
                self.acq.add(recv_key)
            elif method == "release":
                self.held.discard(recv_key)
                self.rel.add(recv_key)

    # -- calls: summaries flow in --------------------------------------
    def _call(self, line: int, col: int, local_cls: str | None) -> None:
        callee = self.graph.callee_at(self.fact["path"], line, col)
        if callee is None:
            return
        if callee in SEED_QUALS:
            leaf = ".".join(callee.rsplit(".", 2)[-2:])
            self._mark_yield(leaf, [leaf])
            return
        csum = self.summaries.get(callee)
        if csum is None:
            return

        def local(key: str) -> bool:
            # accesses on an object the caller constructed locally (and
            # that never escapes) cannot be shared with another context
            return local_cls is not None \
                and (key == local_cls or key.startswith(local_cls + "."))

        # The internal order of the callee's reads, yield and writes is
        # unknown at this boundary (its *internal* windows were already
        # computed precisely and propagate below), so a callee write
        # may only complete a window whose read was marked *before*
        # this call — never by the same call's own yield.  Two further
        # sanity conditions: a callee that *re-reads* the key before
        # writing acts on its own fresh view, not on the caller's stale
        # one (memo caches, ``+=`` counters, index maintenance), and a
        # container-method write (``.append``/``.pop``) consumes no
        # previously-read value.  Neither completes a stale window.
        # Propagated accesses also never form yield *spans* here
        # (``span=False``): a callee re-establishes its own view of the
        # key on every call, so two sequential calls around a yield are
        # not the caller holding state across it — the callee's own
        # internal straddles arrive via ``csum["spans"]`` below, and
        # helper-mediated read -> yield -> write sequences are exactly
        # what the window analysis above reports.
        reads = [a for a in csum["accesses"] if a[1] == "r"]
        writes = [a for a in csum["accesses"] if a[1] == "w"]
        fresh = {a[0] for a in reads}
        for key, _k, apath, aline, locks, setup, mut, text in writes:
            if local(key):
                continue
            self._write(key, apath, aline, text, setup,
                        self.held | set(locks), mut=mut,
                        complete=not mut and key not in fresh,
                        span=False)
        if csum["yield"] is not None:
            chain = [callee] + list(csum["yield"]["chain"])
            self._mark_yield(csum["yield"]["name"], chain)
        for key, _k, apath, aline, locks, setup, mut, text in reads:
            if local(key):
                continue
            self._read(key, apath, aline, text, setup,
                       self.held | set(locks), span=False)
        for win in csum["windows"]:
            if local(win[0]):
                continue
            grown = list(win)
            grown[6] = sorted(set(win[6]) | self.held)
            self.windows.append(grown)
        for key in csum["spans"]:
            if not local(key):
                self.spans.add(key)
        self.rel.update(csum["rel"])
        self.acq.update(csum["acq"])

    # -- branches ------------------------------------------------------
    def _branch(self, arms: list) -> None:
        held0 = set(self.held)
        lr0 = {k: [v[0], v[1], set(v[2]), v[3], v[4]]
               for k, v in self.last_read.items()}
        finals_held: list[set] = []
        finals_lr: list[dict] = []
        self._depth += 1
        for arm in arms:
            self.held = set(held0)
            self.last_read = {k: [v[0], v[1], set(v[2]), v[3], v[4]]
                              for k, v in lr0.items()}
            self._events(arm)
            finals_held.append(self.held)
            finals_lr.append(self.last_read)
        self._depth -= 1
        self.held = set().union(*finals_held) if finals_held else held0
        # keep only window candidates every arm left untouched
        merged: dict[str, list] = {}
        for key, entry in lr0.items():
            probe = [entry[0], entry[1], sorted(entry[2]), entry[3]]
            same = all(
                key in flr and [flr[key][0], flr[key][1],
                                sorted(flr[key][2]), flr[key][3]] == probe
                for flr in finals_lr)
            if same:
                merged[key] = entry
        self.last_read = merged


def solve_summaries(fns: dict[str, dict], typed: dict[str, str],
                    graph: "CallGraph") -> dict[str, dict]:
    """Fixpoint of the lockset/yield interpretation over the graph."""
    from repro.analysis import dataflow

    def initial(node: str) -> dict:
        return seed_summary(node)

    def transfer(node: str, summaries: dict) -> dict:
        fact = fns.get(node)
        if fact is None:
            return seed_summary(node)
        return _Interp(node, fact, typed, summaries, graph).run()

    return dataflow.solve(graph.nodes(), graph.adjacency(),
                          initial, transfer)
