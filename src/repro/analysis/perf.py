"""Hot-path performance checkers (rule family ``perf-*``).

Everything under ``src/repro`` runs inside the simulation's event loop,
so an accidentally quadratic idiom is not a style nit — it multiplies
into every kernel event.  Three rules catch the accumulation patterns
that have actually bitten this codebase:

``perf-list-pop0``
    ``some_list.pop(0)`` shifts every remaining element (O(n) per pop,
    O(n²) to drain).  Use :class:`collections.deque` and ``popleft()``.
``perf-bytes-concat``
    ``buf += chunk`` on a ``bytes`` value inside a loop reallocates and
    copies the whole buffer every iteration.  Accumulate into a
    ``bytearray`` or join a list of chunks once.
``perf-getvalue-loop``
    ``stream.getvalue()`` inside a loop: the join/copy of the whole
    stream runs once per iteration while the stream rarely changes.
    Hoist the call out of the loop (or cache the joined bytes, as
    :class:`repro.corba.cdr.CdrOutputStream` now does).

Like every family, findings are suppressible with
``# repro-lint: disable=perf-...`` where the pattern is deliberate
(e.g. a bounded two-element list).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding


def _is_pop0(node: ast.Call) -> bool:
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
            and not isinstance(node.args[0].value, bool))


class _Scope:
    """Names currently bound to immutable ``bytes`` values."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.is_bytes: dict[str, bool] = {}

    def mark(self, name: str, is_bytes: bool) -> None:
        self.is_bytes[name] = is_bytes

    def lookup(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.is_bytes:
                return scope.is_bytes[name]
            scope = scope.parent
        return False


class _PerfVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.scope = _Scope()
        self._loop_depth = 0

    # -- scope management ---------------------------------------------------
    def _in_new_scope(self, node: ast.AST) -> None:
        # a function defined inside a loop runs elsewhere: its body gets
        # a fresh loop depth as well as a fresh name scope
        outer_scope, self.scope = self.scope, _Scope(self.scope)
        outer_depth, self._loop_depth = self._loop_depth, 0
        self.generic_visit(node)
        self.scope = outer_scope
        self._loop_depth = outer_depth

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._in_new_scope(node)

    # -- tracking bytes-typed names ----------------------------------------
    def _expr_bytes(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, bytes)
        if isinstance(node, ast.Name):
            return self.scope.lookup(node.id)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "bytes"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return (self._expr_bytes(node.left)
                    or self._expr_bytes(node.right))
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        is_bytes = self._expr_bytes(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scope.mark(target.id, is_bytes)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self.scope.mark(node.target.id, self._expr_bytes(node.value))
        self.generic_visit(node)

    # -- loops --------------------------------------------------------------
    def _in_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._in_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._in_loop(node)

    # -- rules --------------------------------------------------------------
    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Add) \
                and isinstance(node.target, ast.Name) \
                and self._loop_depth > 0 \
                and (self.scope.lookup(node.target.id)
                     or self._expr_bytes(node.value)):
            self.findings.append(self.ctx.finding(
                "perf-bytes-concat",
                f"{node.target.id} += ... concatenates immutable bytes "
                f"inside a loop, copying the whole buffer every "
                f"iteration (O(n²)); accumulate into a bytearray or "
                f"join a list of chunks once", node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_pop0(node):
            self.findings.append(self.ctx.finding(
                "perf-list-pop0",
                "pop(0) shifts every remaining element (O(n) per call); "
                "use collections.deque and popleft()", node))
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "getvalue" \
                and not node.args and not node.keywords \
                and self._loop_depth > 0:
            self.findings.append(self.ctx.finding(
                "perf-getvalue-loop",
                "getvalue() inside a loop joins/copies the whole stream "
                "every iteration; hoist it out of the loop or cache the "
                "result", node))
        self.generic_visit(node)


@register_checker
class PerfChecker(Checker):
    name = "performance"
    rules = {
        "perf-list-pop0": "list.pop(0): O(n) head removal",
        "perf-bytes-concat": "bytes += accumulation inside a loop",
        "perf-getvalue-loop": "stream.getvalue() re-joined inside a loop",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        visitor = _PerfVisitor(ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
