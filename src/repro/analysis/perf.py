"""Hot-path performance checkers (rule family ``perf-*``).

Everything under ``src/repro`` runs inside the simulation's event loop,
so an accidentally quadratic idiom is not a style nit — it multiplies
into every kernel event.  These rules catch the accumulation patterns
that have actually bitten this codebase:

``perf-list-pop0``
    ``some_list.pop(0)`` shifts every remaining element (O(n) per pop,
    O(n²) to drain).  Use :class:`collections.deque` and ``popleft()``.
``perf-bytes-concat``
    ``buf += chunk`` on a ``bytes`` value inside a loop reallocates and
    copies the whole buffer every iteration.  Accumulate into a
    ``bytearray`` or join a list of chunks once.
``perf-getvalue-loop``
    ``stream.getvalue()`` inside a loop: the join/copy of the whole
    stream runs once per iteration while the stream rarely changes.
    Hoist the call out of the loop (or cache the joined bytes, as
    :class:`repro.corba.cdr.CdrOutputStream` now does).
``perf-tobytes-hot``
    materialising copies on the wire path.  Inside the hot wire
    directories (``corba/``, ``padicotm/``, ``mpi/``, ``core/``) the
    zero-copy contract is that bulk payloads travel as
    :class:`~repro.corba.cdr.WireBuffer` segments / ndarray views and
    are joined at most once, at a deliberate materialisation point in
    ``cdr.py``.  The rule flags ``x.tobytes()``, ``bytes(mv)`` where
    ``mv`` is bound to a ``memoryview``, and ``getvalue()`` inside a
    loop — each silently degrades a referenced payload back into a
    copied one without showing up in ``wire.copied_bytes`` review.
    Outside the hot directories the rule stays silent (generic code may
    legitimately materialise).
``perf-route-in-loop``
    ``<obj>.route(src, dst, ...)`` inside a loop where the receiver and
    every argument are provably loop-invariant: the same path is
    re-resolved each iteration.  The fabric route cache makes repeats
    cheap, but hot loops should not pay even the cache hit (plus the
    per-call key tuple) — hoist the lookup (or the returned route) out
    of the loop.  Any argument that mentions a name rebound inside the
    loop, or an expression the checker cannot prove invariant (calls,
    comprehensions), keeps the rule silent.
``perf-pickle-in-loop``
    ``pickle.dumps(x)`` inside a loop where every argument is provably
    loop-invariant: the same object is re-serialised each iteration,
    and on the simulated wire path each call also re-charges
    ``PICKLE_BYTE_COST`` to the virtual clock (the bug the MPI
    collectives' send loops used to have).  Serialise once before the
    loop and reuse the bytes.  The same invariance analysis as
    ``perf-route-in-loop`` applies: any argument mentioning a name
    rebound in the loop keeps the rule silent.

Like every family, findings are suppressible with
``# repro-lint: disable=perf-...`` where the pattern is deliberate
(e.g. a bounded two-element list).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding


def _is_pop0(node: ast.Call) -> bool:
    return (isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and len(node.args) == 1
            and not node.keywords
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == 0
            and not isinstance(node.args[0].value, bool))


def _rebound_names(loop: ast.AST) -> set[str]:
    """Names rebound anywhere inside ``loop`` (targets, stores, dels,
    nested defs) — i.e. names that may change between iterations."""
    names: set[str] = set()
    for sub in ast.walk(loop):
        if isinstance(sub, ast.Name) \
                and isinstance(sub.ctx, (ast.Store, ast.Del)):
            names.add(sub.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            names.add(sub.name)
        elif isinstance(sub, ast.Import):
            names.update(a.asname or a.name.split(".")[0]
                         for a in sub.names)
        elif isinstance(sub, ast.ImportFrom):
            names.update(a.asname or a.name for a in sub.names)
    return names


#: directories (project-relative prefixes) under the zero-copy wire
#: contract; ``perf-tobytes-hot`` only fires here
HOT_WIRE_DIRS = (
    "src/repro/corba/",
    "src/repro/padicotm/",
    "src/repro/mpi/",
    "src/repro/core/",
)


class _Scope:
    """Names currently bound to immutable ``bytes`` / ``memoryview``."""

    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.is_bytes: dict[str, bool] = {}
        self.is_mview: dict[str, bool] = {}

    def mark(self, name: str, is_bytes: bool) -> None:
        self.is_bytes[name] = is_bytes

    def mark_mview(self, name: str, is_mview: bool) -> None:
        self.is_mview[name] = is_mview

    def lookup(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.is_bytes:
                return scope.is_bytes[name]
            scope = scope.parent
        return False

    def lookup_mview(self, name: str) -> bool:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.is_mview:
                return scope.is_mview[name]
            scope = scope.parent
        return False


class _PerfVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.scope = _Scope()
        self._loop_depth = 0
        #: per enclosing loop, the names rebound inside it (loop targets
        #: and any store in the body) — the variant set for invariance
        self._loop_volatile: list[set[str]] = []
        self._hot = ctx.path.startswith(HOT_WIRE_DIRS)

    # -- scope management ---------------------------------------------------
    def _in_new_scope(self, node: ast.AST) -> None:
        # a function defined inside a loop runs elsewhere: its body gets
        # a fresh loop depth as well as a fresh name scope
        outer_scope, self.scope = self.scope, _Scope(self.scope)
        outer_depth, self._loop_depth = self._loop_depth, 0
        outer_volatile, self._loop_volatile = self._loop_volatile, []
        self.generic_visit(node)
        self.scope = outer_scope
        self._loop_depth = outer_depth
        self._loop_volatile = outer_volatile

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._in_new_scope(node)

    # -- tracking bytes-typed names ----------------------------------------
    def _expr_bytes(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, bytes)
        if isinstance(node, ast.Name):
            return self.scope.lookup(node.id)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "bytes"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            return (self._expr_bytes(node.left)
                    or self._expr_bytes(node.right))
        return False

    def _expr_mview(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return self.scope.lookup_mview(node.id)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id == "memoryview"
        if isinstance(node, ast.Subscript):
            # slicing a memoryview yields a memoryview
            return (isinstance(node.slice, ast.Slice)
                    and self._expr_mview(node.value))
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        is_bytes = self._expr_bytes(node.value)
        is_mview = self._expr_mview(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self.scope.mark(target.id, is_bytes)
                self.scope.mark_mview(target.id, is_mview)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None and isinstance(node.target, ast.Name):
            self.scope.mark(node.target.id, self._expr_bytes(node.value))
            self.scope.mark_mview(node.target.id,
                                  self._expr_mview(node.value))
        self.generic_visit(node)

    # -- loops --------------------------------------------------------------
    def _in_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self._loop_volatile.append(_rebound_names(node))
        self.generic_visit(node)
        self._loop_volatile.pop()
        self._loop_depth -= 1

    def visit_For(self, node: ast.For) -> None:
        self._in_loop(node)

    def visit_While(self, node: ast.While) -> None:
        self._in_loop(node)

    # -- loop-invariance ----------------------------------------------------
    def _loop_invariant(self, node: ast.expr) -> bool:
        """Provably the same value on every iteration of the enclosing
        loops.  Conservative: anything not recognised is variant."""
        if isinstance(node, ast.Constant):
            return True
        if isinstance(node, ast.Name):
            return not any(node.id in vol for vol in self._loop_volatile)
        if isinstance(node, ast.Attribute):
            return self._loop_invariant(node.value)
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(self._loop_invariant(e) for e in node.elts)
        if isinstance(node, ast.BinOp):
            return (self._loop_invariant(node.left)
                    and self._loop_invariant(node.right))
        if isinstance(node, ast.JoinedStr):
            return all(self._loop_invariant(v.value) if
                       isinstance(v, ast.FormattedValue) else True
                       for v in node.values)
        if isinstance(node, ast.Subscript):
            return (self._loop_invariant(node.value)
                    and not isinstance(node.slice, ast.Slice)
                    and self._loop_invariant(node.slice))
        return False

    # -- rules --------------------------------------------------------------
    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.op, ast.Add) \
                and isinstance(node.target, ast.Name) \
                and self._loop_depth > 0 \
                and (self.scope.lookup(node.target.id)
                     or self._expr_bytes(node.value)):
            self.findings.append(self.ctx.finding(
                "perf-bytes-concat",
                f"{node.target.id} += ... concatenates immutable bytes "
                f"inside a loop, copying the whole buffer every "
                f"iteration (O(n²)); accumulate into a bytearray or "
                f"join a list of chunks once", node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_pop0(node):
            self.findings.append(self.ctx.finding(
                "perf-list-pop0",
                "pop(0) shifts every remaining element (O(n) per call); "
                "use collections.deque and popleft()", node))
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "getvalue" \
                and not node.args and not node.keywords \
                and self._loop_depth > 0:
            # in the hot wire directories this is a zero-copy contract
            # violation, not merely a repeated-join inefficiency
            if self._hot:
                self.findings.append(self.ctx.finding(
                    "perf-tobytes-hot",
                    "getvalue() inside a loop on the wire path joins the "
                    "whole stream per iteration; forward the WireBuffer "
                    "by reference instead", node))
            self.findings.append(self.ctx.finding(
                "perf-getvalue-loop",
                "getvalue() inside a loop joins/copies the whole stream "
                "every iteration; hoist it out of the loop or cache the "
                "result", node))
        elif self._hot and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "tobytes" \
                and not node.args and not node.keywords:
            self.findings.append(self.ctx.finding(
                "perf-tobytes-hot",
                "tobytes() materialises a copy of the payload on the "
                "wire path; pass the ndarray/memoryview through "
                "write_bulk/WireBuffer by reference (and count any "
                "deliberate copy in wire.copied_bytes)", node))
        elif self._hot and isinstance(node.func, ast.Name) \
                and node.func.id == "bytes" \
                and len(node.args) == 1 and not node.keywords \
                and self._expr_mview(node.args[0]):
            self.findings.append(self.ctx.finding(
                "perf-tobytes-hot",
                "bytes(memoryview) materialises a copy of the payload "
                "on the wire path; keep the view and forward it by "
                "reference", node))
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "route" \
                and self._loop_depth > 0 \
                and len(node.args) >= 2 \
                and not any(isinstance(a, ast.Starred) for a in node.args) \
                and self._loop_invariant(node.func.value) \
                and all(self._loop_invariant(a) for a in node.args) \
                and all(self._loop_invariant(kw.value)
                        for kw in node.keywords if kw.arg is not None) \
                and not any(kw.arg is None for kw in node.keywords):
            self.findings.append(self.ctx.finding(
                "perf-route-in-loop",
                "route() re-resolves the same loop-invariant endpoints "
                "every iteration; hoist the lookup (or the returned "
                "route) out of the loop", node))
        elif isinstance(node.func, ast.Attribute) \
                and node.func.attr == "dumps" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "pickle" \
                and self._loop_depth > 0 \
                and node.args \
                and not any(isinstance(a, ast.Starred) for a in node.args) \
                and all(self._loop_invariant(a) for a in node.args) \
                and all(self._loop_invariant(kw.value)
                        for kw in node.keywords if kw.arg is not None) \
                and not any(kw.arg is None for kw in node.keywords):
            self.findings.append(self.ctx.finding(
                "perf-pickle-in-loop",
                "pickle.dumps() re-serialises the same loop-invariant "
                "object every iteration (re-charging the serialisation "
                "cost each time); serialise once before the loop and "
                "reuse the bytes", node))
        self.generic_visit(node)


@register_checker
class PerfChecker(Checker):
    name = "performance"
    rules = {
        "perf-list-pop0": "list.pop(0): O(n) head removal",
        "perf-bytes-concat": "bytes += accumulation inside a loop",
        "perf-getvalue-loop": "stream.getvalue() re-joined inside a loop",
        "perf-tobytes-hot":
            "payload copy (tobytes/bytes(memoryview)/getvalue-in-loop) "
            "inside the zero-copy wire directories",
        "perf-route-in-loop":
            "route() with loop-invariant receiver and endpoints inside "
            "a loop",
        "perf-pickle-in-loop":
            "pickle.dumps() of a loop-invariant object inside a loop",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        visitor = _PerfVisitor(ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
