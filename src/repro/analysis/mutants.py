"""Seeded-mutant harness for the interprocedural rule families.

Golden corpora live under ``tests/analysis/corpus/<family>/{bad,good}``.
Every ``bad`` file carries one ``# expect: <rule>`` trailing comment per
seeded defect; the harness demands a finding with exactly that rule on
exactly that line (catch rate must be 100%).  Every ``good`` file
encodes a pattern the family must *not* flag (false-positive rate must
be 0%) — these are the regression guards for the deliberately
FP-averse choices (blocking round-trips, branch-local state,
caller-guards contracts, sanitized suppressions).

Each corpus directory is analysed as its own mini-project through the
full engine (per-file pass + call graph + project checkers), so the
interprocedural paths — pub/mut-param summaries, transitive blocking
chains, unguarded-param contracts — are exercised exactly as in a real
run.  Findings are scoped to the family's rule prefixes so unrelated
per-file rules (a corpus file is not simulated kernel code) cannot
skew the score.

Run as a gate::

    python -m repro.analysis.mutants            # exit 1 on any miss/FP
    make lint-mutants
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from repro.analysis.config import DEFAULT_CONFIG
from repro.analysis.engine import run_analysis

#: family directory -> rule-id prefixes it is scored on
FAMILIES = {
    "bufsan": ("buf-",),
    "blockdeep": ("ker-block-deep",),
    "obsguard": ("obs-guard",),
    "perf": ("perf-",),
    "simrace": ("race-",),
    "typestate2": ("tys-",),
}

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Za-z0-9_-]+)")


def expected_findings(path: Path) -> list[tuple[int, str]]:
    """``(line, rule)`` for every ``# expect:`` annotation in a file."""
    out = []
    for lineno, text in enumerate(path.read_text().splitlines(), start=1):
        for match in _EXPECT_RE.finditer(text):
            out.append((lineno, match.group(1)))
    return out


def _family_findings(corpus_dir: Path, prefixes: tuple[str, ...]):
    findings = run_analysis([corpus_dir], DEFAULT_CONFIG,
                            project_root=corpus_dir)
    return [f for f in findings
            if any(f.rule.startswith(p) for p in prefixes)]


def run_family(family: str, corpus_root: Path,
               out=sys.stdout) -> list[str]:
    """Score one family; returns a list of failure descriptions."""
    prefixes = FAMILIES[family]
    failures: list[str] = []
    expected_total = 0
    caught_total = 0

    bad_dir = corpus_root / family / "bad"
    bad_found = _family_findings(bad_dir, prefixes)
    by_site = {(f.path, f.line, f.rule) for f in bad_found}
    annotated = 0
    for path in sorted(bad_dir.glob("*.py")):
        expects = expected_findings(path)
        annotated += bool(expects)
        rel = path.name
        for line, rule in expects:
            expected_total += 1
            if (rel, line, rule) in by_site:
                caught_total += 1
            else:
                failures.append(
                    f"{family}: MISSED {rule} at bad/{rel}:{line}")
    if annotated == 0:
        failures.append(f"{family}: bad corpus has no # expect: "
                        f"annotations — nothing to score")

    good_dir = corpus_root / family / "good"
    good_found = _family_findings(good_dir, prefixes)
    for f in good_found:
        failures.append(f"{family}: FALSE POSITIVE {f.rule} at "
                        f"good/{f.path}:{f.line} — {f.message}")

    print(f"{family:10} bad: {caught_total}/{expected_total} seeded "
          f"defects caught, good: {len(good_found)} false positive(s)",
          file=out)
    return failures


def default_corpus_root() -> Path:
    """``tests/analysis/corpus`` relative to the project root."""
    from repro.analysis.engine import find_project_root
    return find_project_root(Path.cwd()) / "tests" / "analysis" / "corpus"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    corpus_root = Path(argv[0]) if argv else default_corpus_root()
    if not corpus_root.is_dir():
        print(f"mutants: no corpus at {corpus_root}", file=sys.stderr)
        return 2
    failures: list[str] = []
    for family in FAMILIES:
        failures.extend(run_family(family, corpus_root))
    for failure in failures:
        print(failure, file=sys.stderr)
    if not failures:
        print("mutants: all seeded defects caught, no false positives")
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
