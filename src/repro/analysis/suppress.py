"""Per-line and per-file suppression comments.

Two forms, mirroring classic linters::

    x = time.time()        # repro-lint: disable=det-wallclock
    # repro-lint: disable-file=ker-thread

``disable=`` silences the named rules (comma-separated) on the line the
comment sits on.  ``disable-file=`` silences them for the whole file and
may appear on any line (conventionally near the top, with a
justification).  ``disable=all`` / ``disable-file=all`` silence every
rule.  Suppressions are extracted with :mod:`tokenize` so that ``#``
characters inside string literals are never misread as comments.
"""

from __future__ import annotations

import io
import re
import tokenize

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\-\s]+)")


class Suppressions:
    """Suppressed rules per line (and file-wide) for one source file."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        sup = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                m = _PRAGMA.search(tok.string)
                if not m:
                    continue
                rules = {r.strip() for r in m.group(2).split(",") if r.strip()}
                if m.group(1) == "disable-file":
                    sup.file_wide |= rules
                else:
                    sup.by_line.setdefault(tok.start[0], set()).update(rules)
        except (tokenize.TokenError, SyntaxError, IndentationError):
            pass  # unparsable file: no suppressions; checkers report instead
        return sup

    def is_suppressed(self, rule: str, line: int) -> bool:
        for active in (self.file_wide, self.by_line.get(line, ())):
            if rule in active or "all" in active:
                return True
        return False
