"""Per-line and per-file suppression comments.

Two forms, mirroring classic linters::

    x = time.time()        # repro-lint: disable=det-wallclock
    # repro-lint: disable-file=ker-thread

``disable=`` silences the named rules (comma-separated) on the line the
comment sits on.  ``disable-file=`` silences them for the whole file and
may appear on any line (conventionally near the top, with a
justification).  ``disable=all`` / ``disable-file=all`` silence every
rule.  Suppressions are extracted with :mod:`tokenize` so that ``#``
characters inside string literals are never misread as comments.

A ``disable=`` comment attached to a *multi-line statement* covers the
whole logical line: checkers report findings at the line of the AST
node that fired, which for a continuation argument is not the physical
line carrying the comment.  The scanner therefore tracks tokenize's
logical lines and extends any pragma found inside one to the statement's
full physical extent.  A pragma on a comment-only line still covers just
that line (it does not leak onto the following statement).
"""

from __future__ import annotations

import io
import re
import tokenize

_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\-\s]+)")


class Suppressions:
    """Suppressed rules per line (and file-wide) for one source file."""

    def __init__(self) -> None:
        self.by_line: dict[int, set[str]] = {}
        self.file_wide: set[str] = set()

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        sup = cls()
        # pragmas collected while inside one logical line, as
        # (physical line of the comment, rules); flushed on NEWLINE
        pending: list[tuple[int, set[str]]] = []
        stmt_start: int | None = None  # first code token of the stmt
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type == tokenize.COMMENT:
                    m = _PRAGMA.search(tok.string)
                    if not m:
                        continue
                    rules = {r.strip() for r in m.group(2).split(",")
                             if r.strip()}
                    if m.group(1) == "disable-file":
                        sup.file_wide |= rules
                    else:
                        pending.append((tok.start[0], rules))
                elif tok.type == tokenize.NEWLINE:
                    # end of a logical line: pragmas inside the statement
                    # cover its whole physical span
                    for line, rules in pending:
                        if stmt_start is not None and line >= stmt_start:
                            for covered in range(stmt_start,
                                                 tok.end[0] + 1):
                                sup.by_line.setdefault(
                                    covered, set()).update(rules)
                        else:
                            sup.by_line.setdefault(
                                line, set()).update(rules)
                    pending.clear()
                    stmt_start = None
                elif tok.type == tokenize.NL:
                    # blank/comment-only physical line: a pragma here
                    # outside any statement covers only its own line
                    if stmt_start is None:
                        for line, rules in pending:
                            sup.by_line.setdefault(
                                line, set()).update(rules)
                        pending.clear()
                elif tok.type not in (tokenize.INDENT, tokenize.DEDENT,
                                      tokenize.ENCODING,
                                      tokenize.ENDMARKER):
                    if stmt_start is None:
                        stmt_start = tok.start[0]
        except (tokenize.TokenError, SyntaxError, IndentationError):
            pass  # unparsable file: no suppressions; checkers report instead
        for line, rules in pending:  # EOF without trailing NEWLINE
            sup.by_line.setdefault(line, set()).update(rules)
        return sup

    def is_suppressed(self, rule: str, line: int) -> bool:
        for active in (self.file_wide, self.by_line.get(line, ())):
            if rule in active or "all" in active:
                return True
        return False

    # -- cache serialization ---------------------------------------------
    def to_json(self) -> dict:
        return {"file": sorted(self.file_wide),
                "lines": {str(k): sorted(v)
                          for k, v in sorted(self.by_line.items())}}

    @classmethod
    def from_json(cls, blob: dict) -> "Suppressions":
        sup = cls()
        sup.file_wide = set(blob.get("file", ()))
        sup.by_line = {int(k): set(v)
                       for k, v in blob.get("lines", {}).items()}
        return sup
