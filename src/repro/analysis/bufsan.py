"""Zero-copy buffer sanitation (rule family ``buf-*``).

PR 5's wire path threads :class:`WireBuffer` segments — ``memoryview``s
that still alias the caller's arrays — from CDR through GIOP/ESIOP,
transports, MPI staging and GridCCM piece gathers.  The contract those
layers rely on is *publish-then-freeze*: once a buffer has been handed
somewhere by reference, the owner must not mutate it until the matching
delivery completes.  A violation corrupts in-flight messages in a way
no dynamic gate can reliably sample, because the scribble races the
simulated delivery.  Hence:

``buf-mutate-after-publish``
    A buffer is mutated (``+=``, slice-assign, ``extend``/``clear``/
    ``fill``/..., ``pack_into``) after flowing by reference into a
    publish API (``write_bulk``, ``WireBuffer(...)``, MPI ``Send`` /
    ``Isend`` staging, ``_append_segment``) in the same function.
``buf-escape-mutation``
    The interprocedural form: the mutation happens inside a callee the
    published buffer is passed to (directly or through aliases), found
    via per-function mutate/publish summaries over the call graph.

Both findings report the publish site and the mutation site.  Analysis
facts are a small serializable IR (publish / mutate / alias / call
events, nested blocks mirroring the statement structure), so the
``--changed`` cache can skip re-parsing unchanged files.  Like the
``tys-*`` family, conditional blocks are interpreted with a
non-propagating copy of the publish state — a publish inside an ``if``
never poisons the fall-through path — while *summaries* use
may-semantics, preferring missed reports over false positives locally
but still catching conditional hazards across calls.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import dataflow
from repro.analysis.base import (
    ModuleContext,
    ProjectChecker,
    register_project_checker,
)
from repro.analysis.callgraph import (
    MODULE_BODY,
    CallGraph,
    slice_for,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

#: callables whose first data argument escapes by reference (the seeds;
#: wrappers around them are derived from summaries, not listed here).
#: Blocking round-trips (``Comm.Send``, ``orb.invoke``) are *not*
#: publishes for the caller's straight-line code: they return only once
#: the matching delivery completed, so the buffer is reusable — exactly
#: the WireBuffer validity discipline.  The hazard is the window a
#: reference outlives the publishing call.
_PUBLISH_APIS = {
    "write_bulk",        # CdrOutputStream: zero-copy bulk append
    "_append_segment",   # CdrOutputStream: raw gather-list append
    "WireBuffer",        # direct segment-list construction
    "Isend",             # MPI nonblocking: referenced until wait()
}

#: receiver methods that complete outstanding deliveries — every
#: published buffer becomes reusable again (MPI wait discipline)
_DELIVERY_COMPLETIONS = {"wait", "Wait", "waitall", "Waitall"}

#: method calls that mutate their receiver in place
_MUTATING_METHODS = {
    "append", "extend", "insert", "clear", "pop", "remove", "reverse",
    "sort", "frombytes", "fill", "put", "resize", "byteswap",
    "partition", "itemset",
}

#: free/function calls that mutate one of their arguments (by position)
_MUTATING_ARG_CALLS = {"pack_into": 1, "copyto": 0, "readinto": 0}

#: view-forming wrappers: publishing/aliasing the result aliases the arg
_VIEW_WRAPPERS = {"memoryview", "ascontiguousarray", "asarray",
                  "frombuffer"}


def _expr_key(node: ast.expr) -> str | None:
    """Stable key for a Name or dotted attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _unwrap_view(node: ast.expr) -> ast.expr:
    """Peel view-forming wrappers: ``memoryview(x).cast('B')`` -> x,
    ``x[a:b]`` -> x (numpy slices are views of the same memory)."""
    while True:
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None)
            if name == "cast" and isinstance(func, ast.Attribute):
                node = func.value
                continue
            if name in _VIEW_WRAPPERS and node.args:
                node = node.args[0]
                continue
            return node
        if isinstance(node, ast.Subscript):
            node = node.value
            continue
        return node


def _calls_in(stmt: ast.stmt):
    """Call nodes in the statement's own expressions (compound-statement
    headers included, nested blocks and lambdas excluded)."""
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if node is not stmt and isinstance(node, (ast.stmt, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class _IrBuilder:
    """Reduce one module to per-function event IR."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.imap = ctx.import_map
        slice_ = slice_for(ctx)
        self.module = slice_.module
        self.functions: dict[str, dict] = {}
        self._fn_stack: list[str] = []
        self._cls_stack: list[str] = []

    def run(self, tree: ast.Module) -> dict[str, dict]:
        body = self._build_block(tree.body)
        self.functions[f"{self.module}.{MODULE_BODY}"] = {
            "path": self.ctx.path, "params": [], "body": body}
        return self.functions

    # -- structure -------------------------------------------------------
    def _qual_here(self, name: str) -> str:
        if self._fn_stack:
            return f"{self._fn_stack[-1]}.{name}"
        if self._cls_stack:
            return f"{self._cls_stack[-1]}.{name}"
        return f"{self.module}.{name}"

    def _build_block(self, body: list[ast.stmt]) -> list:
        steps: list = []
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._build_function(stmt)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._cls_stack.append(self._qual_here(stmt.name))
                self._build_block(stmt.body)
                self._cls_stack.pop()
                continue
            steps.extend(self._statement_events(stmt))
            nested = self._nested_blocks(stmt)
            if nested:
                steps.append(["blocks",
                              [self._build_block(b) for b in nested]])
        return steps

    def _build_function(self, fn) -> None:
        qual = self._qual_here(fn.name)
        self._fn_stack.append(qual)
        body = self._build_block(fn.body)
        self._fn_stack.pop()
        params = [a.arg for a in (fn.args.posonlyargs + fn.args.args)]
        self.functions[qual] = {"path": self.ctx.path,
                                "params": params, "body": body}

    @staticmethod
    def _nested_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list) and nested and \
                    isinstance(nested[0], ast.stmt):
                blocks.append(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    # -- events ----------------------------------------------------------
    def _statement_events(self, stmt: ast.stmt) -> list:
        events: list = []
        for call in _calls_in(stmt):
            events.extend(self._call_events(call))
        events.extend(self._binding_events(stmt))
        return events

    def _call_events(self, call: ast.Call) -> list:
        events: list = []
        func = call.func
        attr_form = isinstance(func, ast.Attribute)
        name = func.attr if attr_form else (
            func.id if isinstance(func, ast.Name) else None)
        qual = self.imap.qualify(func)
        if qual is not None:
            name = qual.rsplit(".", 1)[-1]
        line = call.lineno
        text = self.ctx.line_text(line)

        if name in _PUBLISH_APIS:
            for target in self._published_args(call):
                events.append(["pub", target, line, text, f"{name}()"])
        if name in _MUTATING_ARG_CALLS:
            pos = _MUTATING_ARG_CALLS[name]
            if pos < len(call.args):
                key = _expr_key(_unwrap_view(call.args[pos]))
                if key is not None:
                    events.append(["mut", key, line, text,
                                   f"{name}()"])
        if attr_form and name in _DELIVERY_COMPLETIONS:
            events.append(["clear"])
            return events
        if attr_form and name in _MUTATING_METHODS:
            key = _expr_key(func.value)
            if key is not None:
                events.append(["mut", key, line, text, f".{name}()"])
                return events  # a list method call is not a helper call

        # generic call: argument vars recorded for summary-based effects
        argmap: dict[str, str] = {}
        for pos, arg in enumerate(call.args):
            key = _expr_key(_unwrap_view(arg))
            if key is not None:
                argmap[str(pos)] = key
        if argmap:
            events.append(["call", line, call.col_offset, argmap, text,
                           "attr" if attr_form else "name"])
        return events

    def _published_args(self, call: ast.Call) -> list[str]:
        """Keys escaping by reference through a publish-API call."""
        out: list[str] = []
        for arg in call.args[:1] if call.args else []:
            if isinstance(arg, (ast.List, ast.Tuple)):
                for elt in arg.elts:
                    key = _expr_key(_unwrap_view(elt))
                    if key is not None:
                        out.append(key)
            else:
                key = _expr_key(_unwrap_view(arg))
                if key is not None:
                    out.append(key)
        return out

    def _binding_events(self, stmt: ast.stmt) -> list:
        events: list = []
        if isinstance(stmt, ast.AugAssign):
            key = _expr_key(stmt.target) or _expr_key(
                stmt.target.value
                if isinstance(stmt.target, ast.Subscript) else stmt.target)
            if key is not None:
                op = type(stmt.op).__name__
                events.append(["mut", key, stmt.lineno,
                               self.ctx.line_text(stmt.lineno),
                               f"augmented assignment ({op})"])
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            for target in targets:
                if isinstance(target, ast.Subscript):
                    key = _expr_key(target.value)
                    if key is not None:
                        events.append(
                            ["mut", key, stmt.lineno,
                             self.ctx.line_text(stmt.lineno),
                             "slice assignment"])
                elif isinstance(target, ast.Name) and value is not None:
                    src = _expr_key(_unwrap_view(value))
                    if src is not None and src != target.id:
                        events.append(["alias", target.id, src])
                    else:
                        events.append(["kill", target.id])
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript):
                    key = _expr_key(target.value)
                    if key is not None:
                        events.append(
                            ["mut", key, stmt.lineno,
                             self.ctx.line_text(stmt.lineno),
                             "del item"])
                elif isinstance(target, ast.Name):
                    events.append(["kill", target.id])
        elif isinstance(stmt, ast.For):
            if isinstance(stmt.target, ast.Name):
                events.append(["kill", stmt.target.id])
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if isinstance(item.optional_vars, ast.Name):
                    events.append(["kill", item.optional_vars.id])
        return events


class _Interp:
    """Interpret one function's IR under the current summaries."""

    def __init__(self, qual: str, ir: dict, graph: CallGraph,
                 summaries: dict[str, dict],
                 report: list[Finding] | None):
        self.qual = qual
        self.ir = ir
        self.graph = graph
        self.summaries = summaries
        self.report = report
        self.params = {name: i for i, name in enumerate(ir["params"])}
        self.pub_params: set[int] = set()
        self.mut_params: set[int] = set()

    def run(self) -> tuple[set[int], set[int]]:
        self._walk(self.ir["body"], {}, {})
        return self.pub_params, self.mut_params

    # alias resolution: key -> root key
    @staticmethod
    def _find(alias: dict[str, str], key: str) -> str:
        seen = set()
        while key in alias and key not in seen:
            seen.add(key)
            key = alias[key]
        return key

    def _mark_param(self, root: str, kind: str) -> None:
        pos = self.params.get(root)
        if pos is None and "." in root:  # self.attr roots never params
            return
        if pos is not None:
            (self.pub_params if kind == "pub"
             else self.mut_params).add(pos)

    def _walk(self, steps: list, state: dict, alias: dict) -> None:
        for step in steps:
            kind = step[0]
            if kind == "pub":
                _, var, line, text, via = step
                root = self._find(alias, var)
                state[root] = (line, text, via)
                self._mark_param(root, "pub")
            elif kind == "mut":
                _, var, line, text, how = step
                root = self._find(alias, var)
                self._mark_param(root, "mut")
                pub = state.get(root)
                if pub is not None and self.report is not None:
                    self.report.append(Finding(
                        "buf-mutate-after-publish",
                        f"{var!r} is mutated ({how}) after being "
                        f"published by reference via {pub[2]} at line "
                        f"{pub[0]}; a zero-copy payload must stay "
                        f"frozen until the matching delivery completes",
                        self.ir["path"], line, source_line=text))
            elif kind == "alias":
                _, dst, src = step
                alias.pop(dst, None)
                state.pop(dst, None)
                alias[dst] = self._find(alias, src)
            elif kind == "kill":
                _, var = step
                alias.pop(var, None)
                state.pop(var, None)
            elif kind == "clear":
                state.clear()  # wait(): outstanding deliveries done
            elif kind == "call":
                self._apply_call(step, state, alias)
            elif kind == "blocks":
                for block in step[1]:
                    self._walk(block, dict(state), dict(alias))

    def _apply_call(self, step: list, state: dict, alias: dict) -> None:
        _, line, col, argmap, text, form = step
        callee = self.graph.callee_at(self.ir["path"], line, col)
        if callee is None:
            return
        summary = self.summaries.get(callee)
        if summary is None:
            return
        info = self.graph.functions.get(callee)
        offset = 1 if (info is not None and info.cls is not None
                       and (form == "attr" or info.name == "__init__")) \
            else 0
        for pos_str, var in argmap.items():
            pos = int(pos_str) + offset
            root = self._find(alias, var)
            if pos in summary["mut"]:
                self._mark_param(root, "mut")
                pub = state.get(root)
                if pub is not None and self.report is not None:
                    self.report.append(Finding(
                        "buf-escape-mutation",
                        f"{var!r} was published by reference via "
                        f"{pub[2]} at line {pub[0]} and is then passed "
                        f"to {callee}(), which mutates that argument; "
                        f"the callee scribbles on an in-flight "
                        f"zero-copy payload",
                        self.ir["path"], line, col,
                        source_line=text))
            if pos in summary["pub"]:
                state[root] = (line, text, f"{callee}()")
                self._mark_param(root, "pub")


@register_project_checker
class BufferSanChecker(ProjectChecker):
    """Buffer-escape / mutation-after-publish for zero-copy payloads."""

    name = "buffer-san"
    rules = {
        "buf-mutate-after-publish":
            "buffer mutated after escaping by reference into the "
            "zero-copy wire path",
        "buf-escape-mutation":
            "published buffer passed to a callee that mutates it "
            "(interprocedural)",
    }

    def file_facts(self, ctx: ModuleContext,
                   config: AnalysisConfig) -> dict:
        return _IrBuilder(ctx).run(ctx.tree)

    def project_check(self, facts: dict[str, dict], graph: CallGraph,
                      config: AnalysisConfig) -> Iterator[Finding]:
        ir_by_fn: dict[str, dict] = {}
        for blob in facts.values():
            ir_by_fn.update(blob)

        def initial(node: str) -> dict:
            return {"pub": set(), "mut": set()}

        def transfer(node: str, summaries: dict) -> dict:
            ir = ir_by_fn.get(node)
            if ir is None:
                return summaries.get(node) or initial(node)
            pubs, muts = _Interp(node, ir, graph, summaries, None).run()
            return {"pub": pubs, "mut": muts}

        summaries = dataflow.solve(
            list(ir_by_fn), graph.adjacency(), initial, transfer)

        report: list[Finding] = []
        for qual in sorted(ir_by_fn):
            _Interp(qual, ir_by_fn[qual], graph, summaries,
                    report).run()
        yield from report
