"""IDL / parallelism-spec semantic lint (rule family ``idl-*``).

The GridCCM toolchain compiles IDL units and pairs them with XML
parallelism descriptors (paper Figure 5).  Three mistakes survive the
existing compilers silently or fail only deep inside a deployment run;
this checker catches them at lint time:

``idl-dup-op``
    An interface inherits the *same operation name from two different
    bases*.  The IDL compiler's flattening dict silently keeps the last
    base's signature — a classic diamond hazard.
``idl-unknown-name``
    A parallelism spec naming a component, port, operation or argument
    that the accompanying IDL does not declare.
``idl-bad-redistribution``
    A distributed argument whose IDL type is not a sequence/array: the
    redistribution layer can only split indexable element containers.
``idl-parse``
    An IDL string passed to ``compile_idl`` that does not compile.

Sources are found two ways: standalone ``*.idl`` files, and — because
this codebase embeds its IDL in Python literals — module-level string
constants that are passed to ``compile_idl(...)`` or whose name
contains ``IDL``, plus any literal containing a ``<parallelism>``
element.  All IDL literals of one Python module are compiled and merged
so a descriptor can reference components declared in a sibling literal.
"""

from __future__ import annotations

import ast
import xml.etree.ElementTree as ET
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.corba.idl.compiler import CompiledIdl, InterfaceDef, compile_idl
from repro.corba.idl.errors import IdlError, IdlParseError
from repro.corba.idl.types import ArrayType, SequenceType
from repro.core.parallelism import DISTRIBUTION_KINDS


# ---------------------------------------------------------------------------
# semantic checks on compiled IDL (programmatic API, used by the checker
# and directly by tools/tests)
# ---------------------------------------------------------------------------
def lint_compiled_idl(idl: CompiledIdl, path: str = "<idl>",
                      line: int = 0) -> list[Finding]:
    """Post-compile semantic findings for one (merged) IDL unit."""
    findings: list[Finding] = []
    for iface in idl.interfaces.values():
        findings.extend(_diamond_collisions(idl, iface, path, line))
    return findings


def _diamond_collisions(idl: CompiledIdl, iface: InterfaceDef, path: str,
                        line: int) -> Iterator[Finding]:
    if len(iface.bases) < 2:
        return
    seen: dict[str, tuple[str, object]] = {}  # op name -> (base, def)
    for base_name in iface.bases:
        base = idl.interfaces.get(base_name)
        if base is None:
            continue
        for op_name, op in base.operations.items():
            prev = seen.get(op_name)
            if prev is None:
                seen[op_name] = (base_name, op)
            elif prev[1] is not op:
                # same object means a shared grandparent, which is fine;
                # two distinct definitions is the silent-override hazard
                yield Finding(
                    "idl-dup-op",
                    f"interface {iface.scoped_name}: operation "
                    f"{op_name!r} is inherited from both {prev[0]!r} and "
                    f"{base_name!r}; the flattened signature silently "
                    f"uses the latter", path, line)
    return


def lint_parallelism_element(idl: CompiledIdl | None, elem: ET.Element,
                             path: str = "<parallelism>",
                             line: int = 0) -> list[Finding]:
    """Check one ``<parallelism>`` element against compiled IDL.

    With ``idl=None`` only the spec-internal checks run (distribution
    kinds); with IDL available, names and argument types are verified.
    """
    findings: list[Finding] = []

    def bad(rule: str, message: str) -> None:
        findings.append(Finding(rule, message, path, line))

    component = elem.get("component") or ""
    for arg_el in elem.iter("argument"):
        dist = arg_el.get("distribution", "block")
        if dist not in DISTRIBUTION_KINDS:
            bad("idl-unknown-name",
                f"parallelism spec for {component!r}: unknown "
                f"distribution {dist!r} (one of {DISTRIBUTION_KINDS})")
    if idl is None:
        return findings

    cdef = idl.components.get(component)
    if cdef is None:
        bad("idl-unknown-name",
            f"parallelism spec names component {component!r} which the "
            f"IDL does not declare (known: {sorted(idl.components)})")
        return findings
    for port_el in elem.findall("port"):
        port = port_el.get("name") or ""
        iface_name = cdef.provides.get(port)
        if iface_name is None:
            bad("idl-unknown-name",
                f"component {component!r} has no provides port {port!r} "
                f"(provides: {sorted(cdef.provides)})")
            continue
        iface = idl.interfaces.get(iface_name)
        if iface is None:
            continue  # dangling interface: the compiler already rejects
        for op_el in port_el.findall("operation"):
            op_name = op_el.get("name") or ""
            op = iface.operations.get(op_name)
            if op is None:
                bad("idl-unknown-name",
                    f"interface {iface.scoped_name} (port {port!r}) has "
                    f"no operation {op_name!r}")
                continue
            params = {n: t for n, d, t in op.params if d in ("in", "inout")}
            for arg_el in op_el.findall("argument"):
                arg = arg_el.get("name") or ""
                if arg not in params:
                    bad("idl-unknown-name",
                        f"operation {op_name!r} has no in/inout "
                        f"parameter {arg!r} (has: {sorted(params)})")
                elif not isinstance(params[arg],
                                    (SequenceType, ArrayType)):
                    bad("idl-bad-redistribution",
                        f"parallel component {component!r}: distributed "
                        f"argument {arg!r} of {op_name!r} has "
                        f"non-array type "
                        f"{params[arg].typename()}; only sequences and "
                        f"arrays can be block/cyclic-distributed")
    return findings


# ---------------------------------------------------------------------------
# harvesting IDL / parallelism literals out of Python modules
# ---------------------------------------------------------------------------
def _module_literals(tree: ast.AST) -> tuple[dict[str, tuple[str, int]],
                                             list[tuple[str, int]]]:
    """(name -> (string, line)) for module-level constants, plus
    (string, line) for string literals passed directly to compile_idl."""
    consts: dict[str, tuple[str, int]] = {}
    direct: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, str):
            consts[node.targets[0].id] = (node.value.value, node.lineno)
        elif isinstance(node, ast.Call):
            fn = node.func
            fname = fn.id if isinstance(fn, ast.Name) else \
                fn.attr if isinstance(fn, ast.Attribute) else ""
            if fname == "compile_idl" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                direct.append((node.args[0].value, node.args[0].lineno))
    return consts, direct


def _compile_idl_names(tree: ast.AST) -> set[str]:
    """Names of constants that flow into compile_idl(...) calls."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            fn = node.func
            fname = fn.id if isinstance(fn, ast.Name) else \
                fn.attr if isinstance(fn, ast.Attribute) else ""
            if fname == "compile_idl" and node.args \
                    and isinstance(node.args[0], ast.Name):
                names.add(node.args[0].id)
    return names


def _parallelism_elements(text: str) -> list[ET.Element]:
    """Every <parallelism> element in an XML-looking literal (top level
    or nested, e.g. inside a <softpkg> document)."""
    if "<parallelism" not in text:
        return []
    try:
        root = ET.fromstring(text)
    except ET.ParseError:
        return []
    if root.tag == "parallelism":
        return [root]
    return list(root.iter("parallelism"))


@register_checker
class IdlLintChecker(Checker):
    name = "idl-lint"
    handles_idl = True
    rules = {
        "idl-parse": "embedded IDL unit fails to compile",
        "idl-dup-op": "operation inherited from two different bases",
        "idl-unknown-name": "parallelism spec names an undeclared "
                            "component/port/operation/argument",
        "idl-bad-redistribution": "distributed argument is not a "
                                  "sequence/array type",
    }

    def applicable(self, ctx: ModuleContext) -> bool:
        return ctx.tree is not None or ctx.path.endswith(".idl")

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        if ctx.tree is None:  # standalone .idl file
            yield from self._check_idl_source(ctx, ctx.source, 1,
                                              definitely_idl=True)
            return
        consts, direct = _module_literals(ctx.tree)
        used_names = _compile_idl_names(ctx.tree)
        merged: CompiledIdl | None = None
        idl_sources: list[tuple[str, int, bool]] = \
            [(s, ln, True) for s, ln in direct]
        for name, (text, ln) in consts.items():
            if name in used_names or "IDL" in name.upper().split("_"):
                idl_sources.append((text, ln, name in used_names))
        for text, ln, definitely in idl_sources:
            compiled, findings = self._compile(ctx, text, ln, definitely)
            yield from findings
            if compiled is not None:
                try:
                    merged = compiled if merged is None \
                        else merged.merge(compiled)
                except IdlError:
                    pass  # duplicate definitions across literals: each
                    #       unit was still linted on its own above
        for text, ln in list(consts.values()) + direct:
            for elem in _parallelism_elements(text):
                yield from lint_parallelism_element(
                    merged, elem, ctx.path, ln)

    def _compile(self, ctx: ModuleContext, text: str, line: int,
                 definitely_idl: bool):
        try:
            compiled = compile_idl(text)
        except (IdlParseError, IdlError) as exc:
            if definitely_idl:
                return None, [ctx.finding(
                    "idl-parse", f"embedded IDL does not compile: {exc}",
                    line=line)]
            return None, []  # name merely *looked* like IDL; stay quiet
        return compiled, lint_compiled_idl(compiled, ctx.path, line)

    def _check_idl_source(self, ctx: ModuleContext, text: str, line: int,
                          definitely_idl: bool) -> Iterator[Finding]:
        compiled, findings = self._compile(ctx, text, line, definitely_idl)
        yield from findings
