"""Protocol-lifecycle checkers (rule family ``tys-*``) — interprocedural.

The static twin of :mod:`repro.sanitizer.monitors`: the VLink/Circuit
lifecycle DFA (paper §4.3.2 — establish, use, close) enforced over the
whole program.  Version 2 replaces the linear per-function scan with a
:class:`~repro.analysis.base.ProjectChecker` on the callgraph/dataflow
engine: every function gets a summary (which parameters it closes,
which lifecycle methods it invokes on them, what it returns, whether it
reaches ``release_claims``), solved to fixpoint callees-first, and each
function body is then re-interpreted under those summaries.  That makes
the family *interprocedural* (a helper that closes or uses an endpoint
is seen from its callers) and *exception-edge-aware* (``try``/
``finally`` and ``with`` propagate state; an explicit ``raise`` with an
open endpoint is a leak).

``tys-send-before-connect``
    ``send``/``recv`` on a :class:`VLinkEndpoint` constructed directly
    (still RAW) — an established stream comes from ``VLink.connect``,
    ``VLinkEndpoint.make_pair`` or ``listener.accept``.  Uses reached
    through a resolvable helper count.
``tys-use-after-close``
    Traffic on a VLink endpoint or Circuit after ``close()`` — whether
    the close or the use happens directly or inside a callee that
    closes/uses its parameter.
``tys-double-bind``
    Two ``VLink.listen`` calls binding the same (process, port) with no
    intervening close of the first listener.
``tys-unreleased-claim``
    A *direct* NIC claim (``claim_nic(..., cooperative=False)``) in a
    function that never reaches ``release_claims``, not even through
    its callees — the static analogue of
    :meth:`TypestateMonitor.unreleased_claims`.  Cooperative claims are
    multiplexed by PadicoTM and may live for the process lifetime.
``tys-leak-on-raise``
    An explicit ``raise`` on a path where a locally-established
    endpoint or circuit is still open, not protected by a ``finally``
    or ``with`` that closes it, and has not escaped the function.
    (:class:`WireBuffer` needs no close — it is validity-scoped to the
    blocking send that produced it; its misuse is the ``buf-*``
    family's business.)

State merging stays deliberately FP-averse: ``if``/loop arms are
interpreted for their own findings but their effects are discarded at
the join (a conditional ``close`` never poisons the fall-through
path), ``try`` bodies *do* propagate (the no-exception path runs them
in full), handlers are treated as arms, and a ``finally`` always runs.
Only functions are scanned — module-level statements carry no
lifecycle state worth the false positives.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.base import (
    ModuleContext,
    ProjectChecker,
    register_project_checker,
)
from repro.analysis.callgraph import slice_module_name
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.callgraph import CallGraph

_RAW = "raw"
_CONNECTED = "connected"
_CLOSED = "closed"

#: dotted-origin suffixes that create a tracked value, longest first
_CREATORS: tuple[tuple[str, tuple[str, str]], ...] = (
    (".VLinkEndpoint.make_pair", ("pair", _CONNECTED)),
    (".VLink.connect", ("vlink", _CONNECTED)),
    (".VLinkEndpoint", ("vlink", _RAW)),
    (".Circuit.establish", ("circuit", _CONNECTED)),
)

_USES = {
    "vlink": {"send", "recv", "poll"},
    "circuit": {"send", "recv", "poll", "wait_message"},
}

#: every method name that is a lifecycle use for *some* kind — the
#: filter for parameter-use summaries (the caller re-checks the kind)
_ANY_USE = frozenset().union(*_USES.values())


def _creator(qual: str | None) -> tuple[str, str] | None:
    if qual is None:
        return None
    for suffix, kind_state in _CREATORS:
        if qual.endswith(suffix) or qual == suffix[1:]:
            return kind_state
    return None


def _listen_key(call: ast.Call) -> tuple[str, str] | None:
    """Syntactic (process, port) identity of a ``VLink.listen`` call,
    or None when either argument is not comparable across calls."""
    args = list(call.args)
    for kw in call.keywords:
        if kw.arg == "port":
            args = args[:1] + [kw.value]
    if len(args) != 2:
        return None
    port = args[1]
    if not (isinstance(port, ast.Constant) and isinstance(port.value, str)):
        return None
    try:
        proc_key = ast.dump(args[0])
    except Exception:  # pragma: no cover - dump never fails on exprs
        return None
    return proc_key, port.value


# ----------------------------------------------------------------------
# fact side: module AST -> per-function lifecycle event IR
# ----------------------------------------------------------------------
class _TysFactBuilder:
    """Reduce one module to JSON-serializable lifecycle events."""

    def __init__(self, ctx: ModuleContext, module: str) -> None:
        self.ctx = ctx
        self.module = module
        self.imap = ctx.import_map
        self.functions: dict[str, dict] = {}
        self._cls_stack: list[str] = []
        self._fn_stack: list[str] = []

    def run(self) -> dict:
        assert self.ctx.tree is not None
        self._walk(self.ctx.tree.body)
        return {"functions": self.functions}

    def _qual(self, name: str) -> str:
        if self._fn_stack:
            return f"{self._fn_stack[-1]}.{name}"
        if self._cls_stack:
            return f"{self._cls_stack[-1]}.{name}"
        return f"{self.module}.{name}"

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                self._cls_stack.append(self._qual(stmt.name))
                self._walk(stmt.body)
                self._cls_stack.pop()
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = self._qual(stmt.name)
                events = _TysScanner(self, stmt).scan()
                self.functions[qual] = {
                    "path": self.ctx.path, "line": stmt.lineno,
                    "name": stmt.name,
                    "params": [a.arg for a in stmt.args.args],
                    "events": events,
                }
                self._fn_stack.append(qual)
                self._walk(stmt.body)  # nested defs get their own facts
                self._fn_stack.pop()


class _TysScanner:
    """Emit one function's lifecycle events (nested defs excluded)."""

    def __init__(self, builder: _TysFactBuilder, node) -> None:
        self.b = builder
        self.node = node

    def scan(self) -> list:
        return self._block(self.node.body)

    def _text(self, line: int) -> str:
        return self.b.ctx.line_text(line)

    def _block(self, stmts: list[ast.stmt]) -> list:
        out: list = []
        for stmt in stmts:
            self._statement(stmt, out)
        return out

    # -- statements ----------------------------------------------------
    def _statement(self, stmt: ast.stmt, out: list) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # separate facts
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            self._assign(stmt.targets[0], stmt.value, stmt, out)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign(stmt.target, stmt.value, stmt, out)
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value, out)
        elif isinstance(stmt, ast.Return):
            self._return(stmt, out)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._expr(stmt.exc, out)
            out.append(["raise", stmt.lineno, self._text(stmt.lineno)])
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test, out)
            out.append(["branch", [self._block(stmt.body),
                                   self._block(stmt.orelse)]])
        elif isinstance(stmt, (ast.While, ast.For)):
            if isinstance(stmt, ast.While):
                self._expr(stmt.test, out)
            else:
                self._expr(stmt.iter, out)
            out.append(["branch", [self._block(stmt.body), []]])
            out.extend(self._block(stmt.orelse))
        elif isinstance(stmt, ast.Try):
            out.append(["try", self._block(stmt.body),
                        [self._block(h.body) for h in stmt.handlers],
                        self._block(stmt.orelse),
                        self._block(stmt.finalbody)])
        elif isinstance(stmt, ast.With):
            self._with(stmt, out)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, out)

    def _assign(self, target: ast.expr, value: ast.expr,
                stmt: ast.stmt, out: list) -> None:
        if isinstance(value, ast.Call):
            made = self._creation(value)
            if made is not None:
                kind, state = made
                self._args_events(value, out)
                if kind == "pair" and isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            out.append(["create", elt.id, "vlink", state,
                                        stmt.lineno,
                                        self._text(stmt.lineno)])
                    return
                if kind != "pair" and isinstance(target, ast.Name):
                    out.append(["create", target.id, kind, state,
                                stmt.lineno, self._text(stmt.lineno)])
                    return
                return
            qual = self.b.imap.qualify(value.func)
            if qual is not None and qual.endswith(".VLink.listen"):
                key = _listen_key(value)
                if key is not None:
                    self._args_events(value, out)
                    var = target.id if isinstance(target, ast.Name) \
                        else None
                    out.append(["listen", key[0], key[1], var,
                                stmt.lineno, self._text(stmt.lineno)])
                    return
            ret_var = target.id if isinstance(target, ast.Name) else None
            self._call_events(value, out, ret_var=ret_var)
            return
        self._expr(value, out)
        if isinstance(target, ast.Name):
            out.append(["kill", target.id])
        elif isinstance(value, ast.Name):
            # stored through an attribute/subscript: from here on the
            # object outlives this frame — don't report leaks on it
            out.append(["escape", value.id])

    def _return(self, stmt: ast.Return, out: list) -> None:
        value = stmt.value
        if isinstance(value, ast.Name):
            out.append(["ret", value.id])
            return
        if isinstance(value, ast.Call):
            made = self._creation(value)
            if made is not None and made[0] != "pair":
                self._args_events(value, out)
                out.append(["retnew", made[0], made[1]])
                return
            self._call_events(value, out, ret_var=None)
            out.append(["retcall", value.lineno, value.col_offset])
            return
        if value is not None:
            self._expr(value, out)

    def _with(self, stmt: ast.With, out: list) -> None:
        closes: list = []
        for item in stmt.items:
            cexpr = item.context_expr
            made = self._creation(cexpr) \
                if isinstance(cexpr, ast.Call) else None
            var = item.optional_vars.id \
                if isinstance(item.optional_vars, ast.Name) else None
            if made is not None and made[0] != "pair" and var is not None:
                self._args_events(cexpr, out)
                out.append(["create", var, made[0], made[1],
                            stmt.lineno, self._text(stmt.lineno)])
                closes.append(["close", var, stmt.lineno])
            else:
                self._expr(cexpr, out)
        body = self._block(stmt.body)
        if closes:
            # ``with`` guarantees close on every exit edge — exactly a
            # try/finally around the body
            out.append(["try", body, [], [], closes])
        else:
            out.extend(body)

    # -- expressions ---------------------------------------------------
    def _expr(self, node: ast.expr, out: list) -> None:
        if isinstance(node, ast.Call):
            self._call_events(node, out, ret_var=None)
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body: no events at this site
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, out)

    def _creation(self, call: ast.Call) -> tuple[str, str] | None:
        qual = self.b.imap.qualify(call.func)
        made = _creator(qual)
        if made is not None:
            return made
        if isinstance(call.func, ast.Attribute) \
                and call.func.attr == "accept":
            return ("vlink", _CONNECTED)  # listener.accept → established
        return None

    def _argvars(self, call: ast.Call) -> list:
        return [arg.id if isinstance(arg, ast.Name) else None
                for arg in call.args]

    def _args_events(self, call: ast.Call, out: list) -> None:
        for arg in call.args:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            self._expr(node, out)
        for kw in call.keywords:
            self._expr(kw.value, out)

    def _call_events(self, call: ast.Call, out: list,
                     ret_var: str | None) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            if func.attr == "release_claims":
                self._args_events(call, out)
                out.append(["release"])
                return
            if func.attr == "claim_nic" and any(
                    kw.arg == "cooperative"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is False
                    for kw in call.keywords):
                self._args_events(call, out)
                out.append(["claim", call.lineno,
                            self._text(call.lineno)])
                return
            qual = self.b.imap.qualify(func)
            if qual is not None and qual.endswith(".VLink.listen"):
                key = _listen_key(call)
                if key is not None:
                    self._args_events(call, out)
                    out.append(["listen", key[0], key[1], None,
                                call.lineno, self._text(call.lineno)])
                    return
            if isinstance(func.value, ast.Name):
                if func.attr == "close":
                    self._args_events(call, out)
                    out.append(["close", func.value.id, call.lineno])
                    return
                self._args_events(call, out)
                out.append(["use", func.value.id, func.attr, call.lineno,
                            self._text(call.lineno)])
                out.append(["call", call.lineno, call.col_offset,
                            func.value.id, self._argvars(call), ret_var,
                            self._text(call.lineno)])
                return
            self._expr(func.value, out)
        self._args_events(call, out)
        out.append(["call", call.lineno, call.col_offset, None,
                    self._argvars(call), ret_var,
                    self._text(call.lineno)])


# ----------------------------------------------------------------------
# project side: summaries + reporting interpretation
# ----------------------------------------------------------------------
def _empty_tsum() -> dict:
    return {"params": [], "uses": [], "closes": [],
            "ret": None, "releases": False}


class _TysInterp:
    """Interpret one function's events under the callee summaries.

    The same interpretation computes the summary (fixpoint phase) and,
    once summaries have converged, the findings (``report=True``).
    """

    def __init__(self, qual: str, fact: dict, summaries: dict,
                 graph: "CallGraph", report: bool = False) -> None:
        self.qual = qual
        self.fact = fact
        self.summaries = summaries
        self.graph = graph
        self.report = report
        self.params = list(fact["params"])
        self._pidx = {name: i for i, name in enumerate(self.params)}
        #: var -> [kind, state, created_line]
        self.vars: dict[str, list] = {}
        #: (proc_key, port) -> [listener var | None, first line]
        self.bound: dict[tuple, list] = {}
        self.protected: set[str] = set()
        self.escaped: set[str] = set()
        self.closes: set[int] = set()
        self.uses: set[tuple[int, str]] = set()
        self.rets: set[str] = set()
        self.releases = False
        self.claims: list[tuple[int, str]] = []
        self.findings: list[Finding] = []
        self._flagged: set[tuple] = set()
        self._arm = 0     # > 0 inside a discarded if/loop/handler arm
        self._caught = 0  # > 0 inside a try body that has handlers

    # -- driver --------------------------------------------------------
    def run(self) -> dict:
        self._events(self.fact["events"])
        if self.report and self.claims and not self.releases:
            for line, text in self.claims:
                self._finding(
                    "tys-unreleased-claim",
                    f"direct NIC claim (cooperative=False) in "
                    f"{self.fact['name']!r} with no release_claims() "
                    f"on any path (callees included); legacy middleware "
                    f"must balance open/close on the arbitration "
                    f"driver", line, text, Severity.WARNING)
        ret = None
        if len(self.rets) == 1:
            ret = next(iter(self.rets))
            # only an *established* return propagates a type to the
            # caller: a helper handing back a raw endpoint usually
            # establishes it through paths this model cannot see
            if not ret.endswith(":" + _CONNECTED):
                ret = None
        return {"params": self.params,
                "uses": sorted([p, m] for p, m in self.uses),
                "closes": sorted(self.closes), "ret": ret,
                "releases": self.releases}

    def _finding(self, rule: str, message: str, line: int, text: str,
                 severity: Severity = Severity.ERROR) -> None:
        self.findings.append(Finding(
            rule, message, self.fact["path"], line, 0, severity, text))

    def _events(self, events: list) -> None:
        for ev in events:
            getattr(self, "_ev_" + ev[0])(*ev[1:])

    # -- lifecycle events ----------------------------------------------
    def _ev_create(self, var: str, kind: str, state: str, line: int,
                   text: str) -> None:
        self.vars[var] = [kind, state, line]
        self.escaped.discard(var)

    def _ev_kill(self, var: str) -> None:
        self.vars.pop(var, None)

    def _ev_escape(self, var: str) -> None:
        self.escaped.add(var)

    def _ev_use(self, var: str, method: str, line: int,
                text: str) -> None:
        if var in self._pidx and method in _ANY_USE:
            self.uses.add((self._pidx[var], method))
        self._check_use(var, method, line, text, via=None)

    def _check_use(self, var: str, method: str, line: int, text: str,
                   via: str | None) -> None:
        tracked = self.vars.get(var)
        if tracked is None:
            return
        kind, state, _created = tracked
        if method not in _USES.get(kind, ()):
            return
        how = f" (inside {via!r})" if via else ""
        if state == _RAW:
            self._flag_once(
                ("tys-send-before-connect", var, line),
                "tys-send-before-connect",
                f"{method}(){how} on {var!r}, a VLinkEndpoint that was "
                f"constructed but never connected; establish it via "
                f"VLink.connect / make_pair / listener.accept first",
                line, text)
        elif state == _CLOSED:
            self._flag_once(
                ("tys-use-after-close", var, line),
                "tys-use-after-close",
                f"{method}(){how} on {var!r} after close(); a closed "
                f"{kind} endpoint must not carry traffic", line, text)

    def _flag_once(self, key: tuple, rule: str, message: str, line: int,
                   text: str,
                   severity: Severity = Severity.ERROR) -> None:
        if not self.report or key in self._flagged:
            return
        self._flagged.add(key)
        self._finding(rule, message, line, text, severity)

    def _ev_close(self, var: str, line: int) -> None:
        tracked = self.vars.get(var)
        if tracked is not None:
            tracked[1] = _CLOSED
        if var in self._pidx and self._arm == 0:
            self.closes.add(self._pidx[var])
        for key, (lvar, _line) in list(self.bound.items()):
            if lvar == var:
                del self.bound[key]

    def _ev_listen(self, proc_key: str, port: str, var: str | None,
                   line: int, text: str) -> None:
        key = (proc_key, port)
        if key in self.bound:
            self._flag_once(
                ("tys-double-bind", port, line), "tys-double-bind",
                f"port {port!r} is already bound on this process "
                f"(first bind at line {self.bound[key][1]}); close the "
                f"first listener before rebinding", line, text)
            return
        self.bound[key] = [var, line]

    # -- claims --------------------------------------------------------
    def _ev_claim(self, line: int, text: str) -> None:
        self.claims.append((line, text))

    def _ev_release(self) -> None:
        self.releases = True

    # -- returns -------------------------------------------------------
    def _ev_ret(self, var: str) -> None:
        tracked = self.vars.get(var)
        if tracked is not None:
            self.rets.add(f"{tracked[0]}:{tracked[1]}")
        self.escaped.add(var)

    def _ev_retnew(self, kind: str, state: str) -> None:
        self.rets.add(f"{kind}:{state}")

    def _ev_retcall(self, line: int, col: int) -> None:
        callee = self.graph.callee_at(self.fact["path"], line, col)
        csum = self.summaries.get(callee) if callee else None
        if csum is not None and csum["ret"]:
            self.rets.add(csum["ret"])

    # -- exception edges -----------------------------------------------
    def _ev_raise(self, line: int, text: str) -> None:
        if self._caught or not self.report:
            return
        for var in sorted(self.vars):
            kind, state, created = self.vars[var]
            if state != _CONNECTED or var in self.protected \
                    or var in self.escaped:
                continue
            self._flag_once(
                ("tys-leak-on-raise", var), "tys-leak-on-raise",
                f"raise with {var!r} still open ({kind} established at "
                f"line {created}); close it in a finally or with block "
                f"so the exception edge does not leak the endpoint",
                line, text, Severity.WARNING)

    # -- calls: summaries flow in --------------------------------------
    def _ev_call(self, line: int, col: int, recv: str | None,
                 argvars: list, ret_var: str | None,
                 text: str = "") -> None:
        callee = self.graph.callee_at(self.fact["path"], line, col)
        csum = self.summaries.get(callee) if callee else None
        if csum is None:
            # unknown callee: anything passed in may be retained
            for var in argvars:
                if var is not None:
                    self.escaped.add(var)
            if ret_var is not None:
                self.vars.pop(ret_var, None)
            return
        args = list(argvars)
        if csum["params"][:1] == ["self"] and recv is not None:
            args = [recv] + args
        for pidx, method in csum["uses"]:
            if pidx < len(args) and args[pidx] is not None:
                var = args[pidx]
                self._check_use(var, method, line, text, via=callee)
                if var in self._pidx:
                    self.uses.add((self._pidx[var], method))
        for pidx in csum["closes"]:
            if pidx < len(args) and args[pidx] is not None:
                self._ev_close(args[pidx], line)
        if csum["releases"]:
            self.releases = True
        if ret_var is not None:
            if csum["ret"]:
                kind, state = csum["ret"].split(":")
                self.vars[ret_var] = [kind, state, line]
                self.escaped.discard(ret_var)
            else:
                self.vars.pop(ret_var, None)

    # -- control flow --------------------------------------------------
    def _snapshot(self) -> tuple:
        return ({k: list(v) for k, v in self.vars.items()},
                {k: list(v) for k, v in self.bound.items()},
                set(self.protected), set(self.escaped))

    def _restore(self, snap: tuple) -> None:
        vars0, bound0, prot0, esc0 = snap
        self.vars = {k: list(v) for k, v in vars0.items()}
        self.bound = {k: list(v) for k, v in bound0.items()}
        self.protected = set(prot0)
        self.escaped = set(esc0)

    def _ev_branch(self, arms: list) -> None:
        snap = self._snapshot()
        self._arm += 1
        for arm in arms:
            self._restore(snap)
            self._events(arm)
        self._arm -= 1
        self._restore(snap)

    def _ev_try(self, body: list, handlers: list, orelse: list,
                final: list) -> None:
        prot = self._final_closes(final)
        added = prot - self.protected
        self.protected |= added
        if handlers:
            self._caught += 1
        self._events(body)
        if handlers:
            self._caught -= 1
        if handlers:
            snap = self._snapshot()
            self._arm += 1
            for arm in handlers:
                self._restore(snap)
                self._events(arm)
            self._arm -= 1
            self._restore(snap)
        self._events(orelse)
        self.protected -= added
        self._events(final)

    def _final_closes(self, events: list) -> set[str]:
        out: set[str] = set()
        for ev in events:
            if ev[0] == "close":
                out.add(ev[1])
            elif ev[0] == "branch":
                for arm in ev[1]:
                    out |= self._final_closes(arm)
            elif ev[0] == "try":
                out |= self._final_closes(ev[1])
                out |= self._final_closes(ev[4])
        return out


@register_project_checker
class TypestateChecker(ProjectChecker):
    name = "typestate"
    rules = {
        "tys-send-before-connect":
            "traffic on a VLink endpoint that was never connected",
        "tys-use-after-close":
            "traffic on a VLink endpoint or Circuit after close()",
        "tys-double-bind":
            "VLink.listen on a (process, port) that is already bound",
        "tys-unreleased-claim":
            "direct NIC claim that never reaches release_claims",
        "tys-leak-on-raise":
            "raise with an established endpoint open and unprotected",
    }

    def file_facts(self, ctx: ModuleContext,
                   config: AnalysisConfig) -> dict:
        if ctx.tree is None:
            return {"functions": {}}
        module = ctx.module or slice_module_name(ctx)
        return _TysFactBuilder(ctx, module).run()

    def project_check(self, facts: dict[str, dict], graph: "CallGraph",
                      config: AnalysisConfig) -> Iterator[Finding]:
        from repro.analysis import dataflow

        fns: dict[str, dict] = {}
        for blob in facts.values():
            fns.update(blob.get("functions", {}))
        if not fns:
            return

        def transfer(node: str, summaries: dict) -> dict:
            fact = fns.get(node)
            if fact is None:
                return _empty_tsum()
            return _TysInterp(node, fact, summaries, graph).run()

        summaries = dataflow.solve(
            graph.nodes(), graph.adjacency(),
            lambda node: _empty_tsum(), transfer)

        for qual in sorted(fns):
            interp = _TysInterp(qual, fns[qual], summaries, graph,
                                report=True)
            interp.run()
            yield from interp.findings
