"""Protocol-lifecycle checkers (rule family ``tys-*``).

The static twin of :mod:`repro.sanitizer.monitors`: the VLink/Circuit
lifecycle DFA (paper §4.3.2 — establish, use, close) enforced over the
AST, so the obvious misuses fail in ``repro-lint`` before any scenario
runs.  The analysis is deliberately linear and local — one function at
a time, statement by statement — tracking only variables whose origin
is syntactically certain:

``tys-send-before-connect``
    ``send``/``recv`` on a :class:`VLinkEndpoint` constructed directly
    (still RAW) — an established stream comes from ``VLink.connect``,
    ``VLinkEndpoint.make_pair`` or ``listener.accept``.
``tys-use-after-close``
    Traffic on a VLink endpoint or Circuit after ``close()`` in the
    same straight-line block.
``tys-double-bind``
    Two ``VLink.listen`` calls binding the same (process, port) with no
    intervening close of the first listener.
``tys-unreleased-claim``
    A *direct* NIC claim (``claim_nic(..., cooperative=False)``) in a
    function that never calls ``release_claims`` — the static analogue
    of :meth:`TypestateMonitor.unreleased_claims`.  Cooperative claims
    are multiplexed by PadicoTM and may live for the process lifetime.

Conditional paths are scanned with a non-propagating copy of the state,
so a close inside ``if``/``try`` never poisons the fall-through path —
the family prefers missed reports over false positives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity

_RAW = "raw"
_CONNECTED = "connected"
_CLOSED = "closed"

#: dotted-origin suffixes that create a tracked value, longest first
_CREATORS: tuple[tuple[str, tuple[str, str]], ...] = (
    (".VLinkEndpoint.make_pair", ("pair", _CONNECTED)),
    (".VLink.connect", ("vlink", _CONNECTED)),
    (".VLinkEndpoint", ("vlink", _RAW)),
    (".Circuit.establish", ("circuit", _CONNECTED)),
)

_USES = {
    "vlink": {"send", "recv", "poll"},
    "circuit": {"send", "recv", "poll", "wait_message"},
}


def _creator(qual: str | None) -> tuple[str, str] | None:
    if qual is None:
        return None
    for suffix, kind_state in _CREATORS:
        if qual.endswith(suffix) or qual == suffix[1:]:
            return kind_state
    return None


def _listen_key(call: ast.Call) -> tuple[str, str] | None:
    """Syntactic (process, port) identity of a ``VLink.listen`` call,
    or None when either argument is not comparable across calls."""
    args = list(call.args)
    for kw in call.keywords:
        if kw.arg == "port":
            args = args[:1] + [kw.value]
    if len(args) != 2:
        return None
    port = args[1]
    if not (isinstance(port, ast.Constant) and isinstance(port.value, str)):
        return None
    try:
        proc_key = ast.dump(args[0])
    except Exception:  # pragma: no cover - dump never fails on exprs
        return None
    return proc_key, port.value


class _Scope:
    """Linear per-function state: tracked variables and bound ports."""

    def __init__(self) -> None:
        #: var name -> (kind, lifecycle state)
        self.vars: dict[str, tuple[str, str]] = {}
        #: listen key -> (listener var name or None, first lineno)
        self.bound: dict[tuple[str, str], tuple[str | None, int]] = {}

    def copy(self) -> "_Scope":
        child = _Scope()
        child.vars = dict(self.vars)
        child.bound = dict(self.bound)
        return child


def _calls_in(stmt: ast.stmt):
    """Call nodes in ``stmt``'s own expressions — the header of a
    compound statement, not its nested blocks (those are scanned with
    their own scope copy) and not nested lambdas."""
    stack: list[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        if node is not stmt and isinstance(node, (ast.stmt, ast.Lambda)):
            continue  # nested statements/scopes are scanned separately
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class _TypestateVisitor:
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.imap = ctx.import_map
        self.findings: list[Finding] = []

    # ------------------------------------------------------------------
    def run(self, tree: ast.Module) -> None:
        self._scan_block(tree.body, _Scope())

    def _scan_block(self, body: list[ast.stmt], scope: _Scope) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(stmt)
                continue
            if isinstance(stmt, ast.ClassDef):
                self._scan_block(stmt.body, _Scope())
                continue
            self._scan_statement(stmt, scope)
            for nested in self._nested_blocks(stmt):
                self._scan_block(nested, scope.copy())

    def _scan_function(self, fn: ast.FunctionDef) -> None:
        self._scan_block(fn.body, _Scope())
        self._check_claim_balance(fn)

    @staticmethod
    def _nested_blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks: list[list[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            nested = getattr(stmt, attr, None)
            if isinstance(nested, list) and nested and \
                    isinstance(nested[0], ast.stmt):
                blocks.append(nested)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    # ------------------------------------------------------------------
    def _scan_statement(self, stmt: ast.stmt, scope: _Scope) -> None:
        closes: list[str] = []
        for node in _calls_in(stmt):
            self._check_listen(node, scope)
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)):
                continue
            var, method = func.value.id, func.attr
            if method == "close":
                if var in scope.vars or any(
                        v == var for v, _ in scope.bound.values()):
                    closes.append(var)
                continue
            tracked = scope.vars.get(var)
            if tracked is None:
                continue
            kind, state = tracked
            if method not in _USES.get(kind, ()):
                continue
            if state == _RAW:
                self.findings.append(self.ctx.finding(
                    "tys-send-before-connect",
                    f"{method}() on {var!r}, a VLinkEndpoint that was "
                    f"constructed but never connected; establish it via "
                    f"VLink.connect / make_pair / listener.accept first",
                    node))
            elif state == _CLOSED:
                self.findings.append(self.ctx.finding(
                    "tys-use-after-close",
                    f"{method}() on {var!r} after close(); a closed "
                    f"{kind} endpoint must not carry traffic", node))
        for var in closes:
            if var in scope.vars:
                kind, _ = scope.vars[var]
                scope.vars[var] = (kind, _CLOSED)
            for key, (lvar, _line) in list(scope.bound.items()):
                if lvar == var:
                    del scope.bound[key]
        self._track_assignment(stmt, scope)

    # ------------------------------------------------------------------
    def _check_listen(self, call: ast.Call, scope: _Scope) -> None:
        qual = self.imap.qualify(call.func)
        if qual is None or not qual.endswith(".VLink.listen"):
            return
        key = _listen_key(call)
        if key is None:
            return
        if key in scope.bound:
            _lvar, line = scope.bound[key]
            self.findings.append(self.ctx.finding(
                "tys-double-bind",
                f"port {key[1]!r} is already bound on this process "
                f"(first bind at line {line}); close the first listener "
                f"before rebinding", call))
            return
        scope.bound[key] = (None, call.lineno)

    def _track_assignment(self, stmt: ast.stmt, scope: _Scope) -> None:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        value = stmt.value
        if not isinstance(value, ast.Call):
            if isinstance(target, ast.Name):
                scope.vars.pop(target.id, None)
            return
        qual = self.imap.qualify(value.func)
        created = _creator(qual)
        if created is None and isinstance(value.func, ast.Attribute) \
                and value.func.attr == "accept":
            created = ("vlink", _CONNECTED)  # listener.accept → established
        if created is not None:
            kind, state = created
            if kind == "pair" and isinstance(target, ast.Tuple):
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        scope.vars[elt.id] = ("vlink", state)
            elif kind != "pair" and isinstance(target, ast.Name):
                scope.vars[target.id] = (kind, state)
            return
        if qual is not None and qual.endswith(".VLink.listen") \
                and isinstance(target, ast.Name):
            key = _listen_key(value)
            if key is not None and key in scope.bound:
                scope.bound[key] = (target.id, scope.bound[key][1])
            return
        if isinstance(target, ast.Name):
            scope.vars.pop(target.id, None)

    # ------------------------------------------------------------------
    def _check_claim_balance(self, fn: ast.FunctionDef) -> None:
        direct_claims: list[ast.Call] = []
        releases = False
        for node in ast.walk(fn):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute):
                if node.func.attr == "release_claims":
                    releases = True
                elif node.func.attr == "claim_nic" and any(
                        kw.arg == "cooperative"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is False
                        for kw in node.keywords):
                    direct_claims.append(node)
        if releases:
            return
        for call in direct_claims:
            self.findings.append(self.ctx.finding(
                "tys-unreleased-claim",
                f"direct NIC claim (cooperative=False) in "
                f"{fn.name!r} with no release_claims() on any path; "
                f"legacy middleware must balance open/close on the "
                f"arbitration driver", call,
                severity=Severity.WARNING))


@register_checker
class TypestateChecker(Checker):
    name = "typestate"
    rules = {
        "tys-send-before-connect":
            "traffic on a VLink endpoint that was never connected",
        "tys-use-after-close":
            "traffic on a VLink endpoint or Circuit after close()",
        "tys-double-bind":
            "VLink.listen on a (process, port) that is already bound",
        "tys-unreleased-claim":
            "direct NIC claim with no matching release_claims",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        visitor = _TypestateVisitor(ctx)
        visitor.run(ctx.tree)
        yield from visitor.findings
