"""``sim-race``: static race & atomicity analysis (rules ``race-*``).

The static twin of the dynamic vector-clock detector in
:mod:`repro.sanitizer.races`.  Where sim-san observes one schedule at a
time, sim-race reasons over *all* schedules the cooperative kernel
could pick, using three cooperating interprocedural analyses built on
the :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.dataflow`
engine (the event IR and interpreter live in
:mod:`repro.analysis.locksets`):

1. **yield-point analysis** — a transitive ``may_yield`` summary per
   function, seeded from the shared primitive registry
   (:mod:`repro.sim.primitives`: ``SimProcess.sleep``,
   ``WaitQueue.wait``, ``Mailbox.get``, ...).  Between two yield points
   the one-at-a-time kernel guarantees atomicity; a yield is where any
   other runnable process can interleave.

2. **lockset analysis** — for every simprocess entry point (process
   bodies reached from ``kernel.spawn``, timer callbacks reached from
   ``kernel.schedule``, monitor hooks), the shared attributes it
   transitively reads/writes and the ``SimLock``/``SimSemaphore`` set
   held at each access.

3. **window detection** — read → may-yield → write sequences on one key
   whose two sites share no lock (``race-atomicity``), plus
   cross-context access pairs with no common lock and no
   happens-before hand-off (``race-unlocked-shared``).

Reports mirror the dynamic :class:`~repro.sanitizer.races.RaceReport`
two-site format: both access sites, the contexts, and (for atomicity
windows) the yield chain that opens the window.

Deliberate over-approximations (static may flag what a given schedule
never exhibits — see docs/ANALYSIS.md "static vs dynamic race
detection"): attribute keys are per-class, not per-instance; loop
bodies are treated as straight-line; a conditional yield is treated as
a yield on the path where it occurs.  The converse is kept tight: every
race the dynamic detector can observe on corpus programs is flagged
(the differential harness in ``tests/analysis`` enforces this).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis import locksets
from repro.analysis.base import (
    ModuleContext,
    ProjectChecker,
    register_project_checker,
)
from repro.analysis.callgraph import CallGraph, slice_module_name
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

#: modules that *implement* the concurrency machinery; their internals
#: are the trusted computing base of both detectors and are exercised
#: by dedicated tests, not by this analysis
_TCB_PREFIXES = (
    "repro.sim.kernel", "repro.sim.sync", "repro.sim.primitives",
    "repro.obs", "repro.sanitizer", "repro.analysis",
)


def _is_tcb(module: str | None) -> bool:
    return module is not None and module.startswith(_TCB_PREFIXES)


def _chain_str(chain: list) -> str:
    return " -> ".join(chain) if chain else "a yield point"


class _Context:
    """One resolvable simprocess entry point."""

    def __init__(self, fn: str, kind: str, multi: bool,
                 summary: dict) -> None:
        self.fn = fn
        self.kind = kind          # "process" | "callback" | "hook"
        self.multi = multi        # may run as several instances
        self.summary = summary
        self.rel = set(summary["rel"])
        self.acq = set(summary["acq"])
        #: keys whose consecutive accesses straddle a yield point on
        #: the unconditional path (one of them a write) — the only
        #: exposure a run-to-completion kernel cannot make atomic
        self.spans = set(summary["spans"])

    def label(self) -> str:
        return f"{self.kind} {self.fn!r}"


@register_project_checker
class SimRaceChecker(ProjectChecker):
    """Whole-program lockset/atomicity analysis (see module docstring)."""

    name = "sim-race"
    rules = {
        "race-atomicity":
            "read-modify-write on shared state spans a yield point "
            "with no common lock while another context writes it",
        "race-unlocked-shared":
            "shared attribute accessed from concurrent simprocess "
            "contexts with no common lock and no happens-before "
            "primitive between them",
    }

    # -- fact pass -------------------------------------------------------
    def file_facts(self, ctx: ModuleContext,
                   config: AnalysisConfig) -> dict:
        if _is_tcb(ctx.module):
            return {"functions": {}, "typed": {}, "entries": []}
        module = ctx.module or slice_module_name(ctx)
        return locksets.build_file_facts(ctx, module)

    # -- interprocedural pass --------------------------------------------
    def project_check(self, facts: dict[str, dict], graph: CallGraph,
                      config: AnalysisConfig) -> Iterator[Finding]:
        fns: dict[str, dict] = {}
        typed: dict[str, str] = {}
        entries: list[dict] = []
        for blob in facts.values():
            fns.update(blob["functions"])
            typed.update(blob["typed"])
            entries.extend(blob["entries"])
        if not entries and not any(
                fn["name"] in locksets.HOOK_NAMES and fn["cls"]
                for fn in fns.values()):
            return

        summaries = locksets.solve_summaries(fns, typed, graph)
        contexts = self._contexts(entries, fns, graph, summaries)
        if len(contexts) < 1:
            return

        atomicity, hot_keys = self._atomicity(contexts)
        yield from atomicity
        yield from self._unlocked_shared(contexts, hot_keys)

    # -- entry-point resolution ------------------------------------------
    def _contexts(self, entries: list[dict], fns: dict,
                  graph: CallGraph, summaries: dict) -> list["_Context"]:
        sites: dict[tuple[str, str], set] = {}
        forced_multi: set[tuple[str, str]] = set()
        for entry in entries:
            fn = self._resolve_entry(entry["fn"], graph)
            if fn is None or fn not in fns:
                continue
            key = (fn, entry["kind"])
            sites.setdefault(key, set()).add((entry["path"],
                                              entry["line"]))
            if entry["multi"]:
                forced_multi.add(key)
        contexts = []
        for (fn, kind), where in sorted(sites.items()):
            multi = (fn, kind) in forced_multi or len(where) > 1
            contexts.append(_Context(
                fn, kind, multi, summaries.get(fn)
                or locksets.empty_summary()))
        spawned = {c.fn for c in contexts}
        for qual in sorted(fns):
            fact = fns[qual]
            if fact["cls"] and fact["name"] in locksets.HOOK_NAMES \
                    and qual not in spawned:
                contexts.append(_Context(
                    qual, "hook", False, summaries.get(qual)
                    or locksets.empty_summary()))
        return contexts

    @staticmethod
    def _resolve_entry(spec: str, graph: CallGraph) -> str | None:
        form, _, rest = spec.partition(":")
        if form == "q":
            if rest in graph.functions:
                return rest
            return graph._resolve_dotted(rest)
        if form == "a":
            cls, _, name = rest.rpartition(":")
            return graph._method_on(cls, name)
        if form == "m":
            candidates = graph._by_method.get(rest, ())
            return candidates[0] if len(candidates) == 1 else None
        return None

    # -- rule: race-atomicity --------------------------------------------
    def _atomicity(self, contexts: list["_Context"]
                   ) -> tuple[list[Finding], set[str]]:
        findings: dict[tuple, Finding] = {}
        hot_keys: set[str] = set()
        for ctx in contexts:
            for win in ctx.summary["windows"]:
                (key, rpath, rline, wpath, wline, text, locks,
                 chain, fn) = win
                writer = self._conflicting_writer(
                    contexts, ctx, key, set(locks), (wpath, wline))
                if writer is None:
                    continue
                other, acc = writer
                fkey = (key, wpath, wline)
                if fkey in findings:
                    continue
                hot_keys.add(key)
                findings[fkey] = Finding(
                    "race-atomicity",
                    f"atomicity violation on {key}: read at "
                    f"{rpath}:{rline} and write at {wpath}:{wline} "
                    f"(in {fn!r}, reached from {ctx.label()}) span "
                    f"{_chain_str(chain)} with no common lock; "
                    f"{other.label()} writes {key} at "
                    f"{acc[2]}:{acc[3]} and can interleave at the "
                    f"yield", wpath, wline, 0, source_line=text)
        ordered = [findings[k] for k in sorted(findings)]
        return ordered, hot_keys

    @staticmethod
    def _conflicting_writer(contexts: list["_Context"],
                            ctx: "_Context", key: str, locks: set,
                            wsite: tuple) -> tuple | None:
        best = None
        for other in contexts:
            same = other is ctx
            if same and not ctx.multi:
                continue
            if ctx.kind == "hook" and other.kind == "hook":
                continue
            for acc in other.summary["accesses"]:
                akey, kind, apath, aline, alocks, setup = acc[:6]
                if kind != "w" or akey != key or setup:
                    continue
                if same and (apath, aline) == wsite and not ctx.multi:
                    continue
                if set(alocks) & locks:
                    continue
                cand = ((apath, aline), other, acc)
                if best is None or cand[0] < best[0]:
                    best = cand
        if best is None:
            return None
        return best[1], best[2]

    # -- rule: race-unlocked-shared --------------------------------------
    def _unlocked_shared(self, contexts: list["_Context"],
                         hot_keys: set[str]) -> Iterator[Finding]:
        # Between two yield points the one-at-a-time kernel executes
        # atomically, so cross-context access alone is not a hazard:
        # some involved context must hold the key across a yield (its
        # ``spans`` set) for the other side's access to interleave
        # destructively.
        spanning: set[str] = set()
        for ctx in contexts:
            spanning |= ctx.spans
        by_key: dict[str, list] = {}
        for idx, ctx in enumerate(contexts):
            for acc in ctx.summary["accesses"]:
                key, setup = acc[0], acc[5]
                if setup or key in hot_keys or key not in spanning:
                    continue
                by_key.setdefault(key, []).append((idx, acc))

        for key in sorted(by_key):
            pair = self._conflicting_pair(contexts, by_key[key])
            if pair is None:
                continue
            (ctx_a, acc_a), (ctx_b, acc_b) = pair
            kind_b = "write" if acc_b[1] == "w" else "read"
            yield Finding(
                "race-unlocked-shared",
                f"data race on {key}:\n"
                f"    write by {ctx_a.label()} at "
                f"{acc_a[2]}:{acc_a[3]}\n"
                f"    {kind_b} by {ctx_b.label()} at "
                f"{acc_b[2]}:{acc_b[3]}\n"
                f"    (no common lock and no happens-before "
                f"primitive between the two accesses)",
                acc_a[2], acc_a[3], 0, source_line=acc_a[7])

    @staticmethod
    def _conflicting_pair(contexts: list["_Context"],
                          items: list) -> tuple | None:
        best = None
        for i, (ia, acc_a) in enumerate(items):
            if acc_a[1] != "w":
                continue
            ctx_a = contexts[ia]
            for ib, acc_b in items:
                ctx_b = contexts[ib]
                if ctx_a is ctx_b and not ctx_a.multi:
                    continue
                if ctx_a is ctx_b \
                        and (acc_a[2], acc_a[3]) == (acc_b[2], acc_b[3]) \
                        and acc_a[1] == acc_b[1]:
                    continue
                if ctx_a.kind == "hook" and ctx_b.kind == "hook":
                    continue
                if set(acc_a[4]) & set(acc_b[4]):
                    continue
                # a release->acquire chain between the two contexts is
                # a static happens-before edge: the hand-off orders the
                # accesses, exactly like the dynamic hb_release /
                # hb_acquire pair
                if (ctx_a.rel & ctx_b.acq) or (ctx_b.rel & ctx_a.acq):
                    continue
                cand = (((acc_a[2], acc_a[3]), (acc_b[2], acc_b[3])),
                        (ia, acc_a), (ib, acc_b))
                if best is None or cand[0] < best[0]:
                    best = cand
        if best is None:
            return None
        (ia, acc_a), (ib, acc_b) = best[1], best[2]
        return (contexts[ia], acc_a), (contexts[ib], acc_b)
