"""Finding and severity model for ``repro-lint``.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` is content-addressed (file, rule, source
line text) rather than line-number-addressed, so a committed baseline
survives unrelated edits that merely shift line numbers.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered severity; the CLI exit code keys off ERROR findings."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error" in CLI output
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str                 # stable rule id, e.g. "det-wallclock"
    message: str
    path: str                 # project-relative, forward slashes
    line: int                 # 1-based; 0 for whole-file findings
    col: int = 0
    severity: Severity = Severity.ERROR
    source_line: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Content hash used by the baseline mechanism."""
        normalized = " ".join(self.source_line.split())
        blob = f"{self.path}|{self.rule}|{normalized}".encode()
        return hashlib.sha1(blob).hexdigest()[:12]

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.severity}: {self.message}")

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=Finding.sort_key)
