"""``repro.analysis`` — AST-based static analysis for the grid stack.

Turns the reproduction's two load-bearing conventions into machine-
checked rules (see ``docs/ANALYSIS.md``):

* the simulation kernel's *exact reproducibility* promise
  (``det-*`` and ``ker-*`` rule families), and
* the paper's layered PadicoTM architecture as an import DAG
  (``lay-*``), plus semantic lint for IDL/parallelism specs
  (``idl-*``).

Since repro-lint v2 the per-file families are complemented by an
*interprocedural* engine — a project call graph
(:mod:`repro.analysis.callgraph`) plus a summary fixpoint framework
(:mod:`repro.analysis.dataflow`) — with three whole-program clients:
``buf-*`` (zero-copy buffer escape/mutation-after-publish),
``ker-block-deep`` (transitive blocking-call reachability) and
``obs-guard`` (instrumentation dominated by non-None guards).

Entry points: the ``repro-lint`` console script
(:func:`repro.analysis.cli.main`) and :func:`run_analysis` for
programmatic use (the tier-1 gate test in ``tests/analysis``).
"""

from repro.analysis.base import (
    Checker,
    ModuleContext,
    ProjectChecker,
    all_checkers,
    all_project_checkers,
    all_rules,
    register_checker,
    register_project_checker,
)
from repro.analysis.cache import DEFAULT_CACHE_NAME, AnalysisCache
from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    format_baseline,
    load_baseline,
)
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.engine import find_project_root, run_analysis
from repro.analysis.findings import Finding, Severity, sort_findings
from repro.analysis.idllint import (
    lint_compiled_idl,
    lint_parallelism_element,
)
from repro.analysis.suppress import Suppressions

__all__ = [
    "AnalysisCache",
    "AnalysisConfig",
    "Checker",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_NAME",
    "DEFAULT_CONFIG",
    "Finding",
    "ModuleContext",
    "ProjectChecker",
    "Severity",
    "Suppressions",
    "all_checkers",
    "all_project_checkers",
    "all_rules",
    "apply_baseline",
    "find_project_root",
    "format_baseline",
    "lint_compiled_idl",
    "lint_parallelism_element",
    "load_baseline",
    "register_checker",
    "register_project_checker",
    "run_analysis",
    "sort_findings",
]
