"""``repro-lint --stats``: where does lint wall time actually go?

The engine feeds one :class:`RunStats` per run: per-checker wall time
split by phase (the cached per-file pass vs the always-recomputed
interprocedural pass), finding counts per rule, and the ``--changed``
cache hit ratio.  The CI lint step prints the report so a slow rule or
a cold cache is visible in the log instead of a mystery.

This module is the one place the analysis reads the host clock — lint
measures its *own* latency, which is tooling wall time, not simulated
time (the same reasoning that keeps ``benchmarks/`` outside the linted
roots).  Hence the single ``det-wallclock`` file-allow for this file in
:mod:`repro.analysis.config`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def clock() -> float:
    """Monotonic seconds; the only sanctioned clock read in the linter."""
    return time.perf_counter()


@dataclass
class RunStats:
    """Accumulated timing/counting for one ``run_analysis`` call."""

    #: checker name -> seconds spent in the per-file pass (check() +
    #: file_facts() over all files that missed the cache)
    file_seconds: dict[str, float] = field(default_factory=dict)
    #: checker name -> seconds spent in project_check()
    project_seconds: dict[str, float] = field(default_factory=dict)
    #: rule id -> surviving finding count (post suppression/allowlist)
    rule_counts: dict[str, int] = field(default_factory=dict)
    files_analyzed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    # ------------------------------------------------------------------
    def add_file_time(self, checker: str, seconds: float) -> None:
        self.file_seconds[checker] = \
            self.file_seconds.get(checker, 0.0) + seconds

    def add_project_time(self, checker: str, seconds: float) -> None:
        self.project_seconds[checker] = \
            self.project_seconds.get(checker, 0.0) + seconds

    def count_findings(self, findings) -> None:
        for finding in findings:
            self.rule_counts[finding.rule] = \
                self.rule_counts.get(finding.rule, 0) + 1

    # ------------------------------------------------------------------
    @property
    def hit_ratio(self) -> float | None:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else None

    def render(self) -> str:
        lines = ["repro-lint --stats:"]
        lines.append(f"  files analysed: {self.files_analyzed}")
        if self.hit_ratio is not None:
            lines.append(
                f"  --changed cache: {self.cache_hits} hit(s), "
                f"{self.cache_misses} miss(es) "
                f"({self.hit_ratio:.0%} hit ratio)")
        merged: dict[str, tuple[float, float]] = {}
        for name, secs in self.file_seconds.items():
            merged[name] = (secs, merged.get(name, (0.0, 0.0))[1])
        for name, secs in self.project_seconds.items():
            merged[name] = (merged.get(name, (0.0, 0.0))[0], secs)
        if merged:
            lines.append("  checker wall time (file-pass / project-pass):")
            by_total = sorted(merged.items(),
                              key=lambda kv: -(kv[1][0] + kv[1][1]))
            for name, (fsec, psec) in by_total:
                lines.append(f"    {name:16} {fsec * 1000:8.1f}ms"
                             f" / {psec * 1000:8.1f}ms")
        if self.rule_counts:
            lines.append("  findings per rule:")
            for rule in sorted(self.rule_counts):
                lines.append(f"    {rule:24} {self.rule_counts[rule]}")
        else:
            lines.append("  findings per rule: none")
        return "\n".join(lines)
