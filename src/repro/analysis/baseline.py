"""Committed-baseline support.

A baseline file records fingerprints of findings that are accepted for
now, so ``repro-lint`` can gate *new* findings in CI while legacy ones
are burned down.  Format — one finding per line, ``#`` comments::

    # fingerprint  rule            location (informational)
    0a1b2c3d4e5f   det-set-order   src/foo.py:87  # why this is OK

Only the first token (the fingerprint) is significant; the rest keeps
the file reviewable.  Fingerprints are content-addressed (see
:class:`~repro.analysis.findings.Finding.fingerprint`), so moving a
line does not invalidate its entry, while editing it does.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.findings import Finding

DEFAULT_BASELINE_NAME = ".repro-lint-baseline"


def load_baseline(path: Path) -> set[str]:
    """Fingerprints accepted by the committed baseline."""
    fingerprints: set[str] = set()
    if not path.exists():
        return fingerprints
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            fingerprints.add(line.split()[0])
    return fingerprints


def apply_baseline(findings: list[Finding],
                   fingerprints: set[str]) -> tuple[list[Finding],
                                                    set[str]]:
    """(non-baselined findings, unused fingerprints)."""
    fresh = [f for f in findings if f.fingerprint not in fingerprints]
    used = {f.fingerprint for f in findings} & fingerprints
    return fresh, fingerprints - used


def format_baseline(findings: list[Finding]) -> str:
    """Render findings as a baseline file body (for --update-baseline)."""
    lines = [
        "# repro-lint baseline — accepted findings, keyed by content",
        "# fingerprint; regenerate with: repro-lint --update-baseline",
        "# Keep this minimal: fix findings instead of baselining them,",
        "# and justify every entry with a trailing comment.",
    ]
    for f in sorted(findings, key=Finding.sort_key):
        lines.append(f"{f.fingerprint}  {f.rule}  {f.path}:{f.line}")
    return "\n".join(lines) + "\n"
