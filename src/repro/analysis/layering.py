"""Architecture layering checker (rule family ``lay-*``).

Enforces the paper's layered stack as an import DAG (lowest first)::

    sim -> net -> padicotm.arbitration -> padicotm.abstraction
        -> padicotm.personality -> padicotm (facade) -> soap
        -> {corba, mpi} -> ccm -> core (GridCCM) -> deploy -> tools

A file may import its own layer and anything *below* it.  Importing
upward at module level is always an error (``lay-upward``): it would
make the runtime import graph cyclic and collapse the architecture the
way cross-layer shortcuts did in the middleware systems the paper
compares against.  Upward references inside ``if TYPE_CHECKING:``
blocks or function bodies (lazy imports) are real escape hatches the
codebase needs — but each one must be registered, with a justification,
in ``config.DEFAULT_LAYER_EXCEPTIONS``; an unregistered one is
``lay-escape``.  Files whose dotted name maps to no layer are skipped
(tests, examples — they sit above the whole stack by construction).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.imports import resolve_from

_TOPLEVEL = "toplevel"
_TYPE_CHECKING = "type_checking"
_LAZY = "lazy"


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name) and test.id == "TYPE_CHECKING":
        return True
    if isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING":
        return True
    return False


def _collect_imports(tree: ast.AST):
    """Yield (node, imported module, context) for every import statement,
    where context records how the import is guarded."""

    def walk(node: ast.AST, context: str):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                yield from walk(child, _LAZY)
            elif isinstance(child, ast.If) and context == _TOPLEVEL \
                    and _is_type_checking_test(child.test):
                yield from walk(child, _TYPE_CHECKING)
            elif isinstance(child, ast.Import):
                for alias in child.names:
                    yield child, alias.name, context
            elif isinstance(child, ast.ImportFrom):
                yield child, child, context  # resolved later (needs ctx)
            else:
                yield from walk(child, context)

    yield from walk(tree, _TOPLEVEL)


@register_checker
class LayeringChecker(Checker):
    name = "layering"
    rules = {
        "lay-upward": "module-level import of a higher architectural layer",
        "lay-escape": "unregistered TYPE_CHECKING/lazy upward reference",
        "lay-unknown": "repro module not assigned to any layer",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        if ctx.module is None:
            return  # unlayered file (example, test): sits above the stack
        my_layer = config.layer_of(ctx.module)
        if my_layer is None:
            if ctx.module.startswith("repro.") and not ctx.is_package:
                yield ctx.finding(
                    "lay-unknown",
                    f"module {ctx.module!r} maps to no layer; add its "
                    f"package to the layer table in repro.analysis.config",
                    line=1, severity=Severity.WARNING)
            return
        my_rank, my_name = my_layer
        for node, target, context in _collect_imports(ctx.tree):
            if isinstance(target, ast.ImportFrom):
                imported = resolve_from(target, ctx.module, ctx.is_package)
            else:
                imported = target
            if imported is None or not imported.startswith("repro"):
                continue
            their_layer = config.layer_of(imported)
            if their_layer is None:
                if imported not in ("repro",) and imported != ctx.module:
                    yield ctx.finding(
                        "lay-unknown",
                        f"imported module {imported!r} maps to no layer; "
                        f"add it to the layer table in "
                        f"repro.analysis.config", node,
                        severity=Severity.WARNING)
                continue
            their_rank, their_name = their_layer
            if their_rank <= my_rank:
                continue  # downward or same-layer: always fine
            if context == _TOPLEVEL:
                yield ctx.finding(
                    "lay-upward",
                    f"layer {my_name!r} imports {imported!r} from the "
                    f"higher layer {their_name!r} at module level; "
                    f"invert the dependency or move the shared piece "
                    f"down the stack", node)
            elif config.exception_for(ctx.path, imported) is None:
                yield ctx.finding(
                    "lay-escape",
                    f"{context.replace('_', '-')} upward reference from "
                    f"layer {my_name!r} to {imported!r} "
                    f"({their_name!r}) is not registered in "
                    f"DEFAULT_LAYER_EXCEPTIONS; register it with a "
                    f"justification or invert the dependency", node)
