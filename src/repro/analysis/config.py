"""Analysis configuration: layer DAG, allowed exceptions, allowlists.

The layer order encodes the paper's PadicoTM stack (§4.3: personality
above abstraction above arbitration) extended with the surrounding
reproduction layers.  An import is *upward* — and rejected — when the
importing file's layer sits below the imported module's layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Layer table, lowest first.  Entries are (layer name, module prefixes);
#: prefixes are matched longest-first, so ``repro.padicotm.arbitration``
#: wins over ``repro.padicotm``.  A module may import its own layer and
#: any layer below it.
DEFAULT_LAYERS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("sim",         ("repro.sim",)),
    # sim-san instruments the kernel/sync layer only; it must never see
    # the stack above it (the runtime notifies its duck-typed monitor)
    ("sanitizer",   ("repro.sanitizer",)),
    # observability records what the stack reports through the same
    # duck-typed monitor hooks; it sees only the kernel clock, never the
    # layers that feed it
    ("obs",         ("repro.obs",)),
    ("net",         ("repro.net",)),
    ("arbitration", ("repro.padicotm.arbitration",)),
    ("abstraction", ("repro.padicotm.abstraction",)),
    ("personality", ("repro.padicotm.personality",)),
    # the PadicoTM facade: runtime wiring + the dynamic module registry
    ("padicotm",    ("repro.padicotm",)),
    ("soap",        ("repro.soap",)),
    ("middleware",  ("repro.corba", "repro.mpi")),
    ("ccm",         ("repro.ccm",)),
    ("gridccm",     ("repro.core",)),
    ("deploy",      ("repro.deploy",)),
    ("tools",       ("repro.tools", "repro.analysis")),
)

#: Registered escape hatches: non-top-level upward references that are
#: architecturally intentional.  Keyed by (project-relative file path,
#: imported module); the value is the justification shown in docs and
#: ``--list-exceptions``.  Only ``if TYPE_CHECKING:`` blocks and
#: function-local lazy imports may be registered here — a module-level
#: upward import is never allowed because it would make the layering
#: cyclic at runtime, not just in the type graph.
DEFAULT_LAYER_EXCEPTIONS: dict[tuple[str, str], str] = {
    # The arbitration core multiplexes I/O for PadicoProcess objects that
    # the runtime facade (a higher layer) creates; the names appear only
    # in type annotations, and at runtime the facade calls *down* into
    # arbitration, never the reverse.
    ("src/repro/padicotm/arbitration/core.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: annotates the PadicoProcess/runtime handles "
        "the facade passes down when it drives the arbitration core.",
    # The framed-group transport annotates the process objects whose
    # messages it frames; instances are injected from above at runtime.
    ("src/repro/padicotm/arbitration/_framed.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: annotates injected PadicoProcess/PadicoRuntime "
        "handles; the transport never constructs or calls them.",
    ("src/repro/padicotm/arbitration/sockets.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: annotates the process handle the runtime "
        "passes to the TCP subsystem.",
    ("src/repro/padicotm/arbitration/madeleine.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: annotates the process handle the runtime "
        "passes to the Madeleine subsystem.",
    ("src/repro/padicotm/abstraction/selector.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: link selection is parameterised by the "
        "calling PadicoProcess for locality decisions.",
    ("src/repro/padicotm/abstraction/circuit.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: circuits annotate the runtime/process pair "
        "that owns them.",
    ("src/repro/padicotm/abstraction/vlink.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: virtual links annotate the runtime/process "
        "pair that owns them.",
    ("src/repro/padicotm/personality/aio.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: AIO control blocks annotate the owning "
        "PadicoProcess.",
    ("src/repro/padicotm/personality/bsd.py", "repro.padicotm.runtime"):
        "TYPE_CHECKING only: BSD sockets annotate the owning "
        "PadicoProcess.",
}

#: (project-relative file path, rule id) pairs exempted wholesale.
#: Keep this list short and justified — it is the config-level analogue
#: of an inline ``# repro-lint: disable=`` comment.
DEFAULT_FILE_ALLOW: dict[tuple[str, str], str] = {
    # The cooperative kernel's semaphore handshake is the one place real
    # threading primitives are legal: each SimProcess parks on its own
    # semaphore and the kernel serialises execution.  The handshake
    # lived in kernel.py until the switch-backend refactor extracted it
    # into ThreadBackend (backends.py); same audit, same justification
    # — kernel.py itself is threading-free now, and the
    # greenlet/trampoline backends in backends.py use no threading
    # primitives at all, so this remains the single ker-thread
    # exemption.
    ("src/repro/sim/backends.py", "ker-thread"):
        "ThreadBackend hosts the extracted one-at-a-time semaphore "
        "handshake (historical kernel core)",
    # The linter measures its own wall time for --stats; that is
    # tooling latency, not simulated time, and the clock reads are
    # confined to stats.clock() (same reasoning that keeps the
    # benchmarks/ tree outside the linted roots).
    ("src/repro/analysis/stats.py", "det-wallclock"):
        "--stats measures the linter's own wall time",
}


@dataclass
class AnalysisConfig:
    """Everything the engine and checkers need to know about a project."""

    layers: tuple[tuple[str, tuple[str, ...]], ...] = DEFAULT_LAYERS
    layer_exceptions: dict[tuple[str, str], str] = \
        field(default_factory=lambda: dict(DEFAULT_LAYER_EXCEPTIONS))
    file_allow: dict[tuple[str, str], str] = \
        field(default_factory=lambda: dict(DEFAULT_FILE_ALLOW))
    #: rule ids to skip entirely (e.g. a project without IDL)
    disabled_rules: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        # longest-prefix-first lookup order, precomputed once
        self._prefix_rank: list[tuple[str, int, str]] = []
        for rank, (layer, prefixes) in enumerate(self.layers):
            for prefix in prefixes:
                self._prefix_rank.append((prefix, rank, layer))
        self._prefix_rank.sort(key=lambda e: -len(e[0]))

    def layer_of(self, module: str) -> tuple[int, str] | None:
        """(rank, layer name) for a dotted module, or None if unlayered."""
        for prefix, rank, layer in self._prefix_rank:
            if module == prefix or module.startswith(prefix + "."):
                return rank, layer
        return None

    def is_allowed(self, path: str, rule: str) -> bool:
        return (path, rule) in self.file_allow

    def exception_for(self, path: str, imported: str) -> str | None:
        """Justification if (file, imported module) is a registered
        escape hatch; prefix-matches the imported module so an exception
        for a package covers its submodules."""
        probe = imported
        while probe:
            just = self.layer_exceptions.get((path, probe))
            if just is not None:
                return just
            if "." not in probe:
                return None
            probe = probe.rsplit(".", 1)[0]
        return None


DEFAULT_CONFIG = AnalysisConfig()
