"""Import-alias resolution shared by the AST checkers.

Maps local names to the dotted path they were imported as, so a checker
asking "is this call ``time.time()``?" also catches ``import time as t;
t.time()`` and ``from time import time as now; now()``.
"""

from __future__ import annotations

import ast


class ImportMap:
    """Local name -> dotted origin, built from a module's import nodes."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    @classmethod
    def build(cls, tree: ast.AST, module: str | None = None,
              is_package: bool = False) -> "ImportMap":
        imap = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    imap._names[local] = origin
            elif isinstance(node, ast.ImportFrom):
                base = resolve_from(node, module, is_package)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imap._names[local] = f"{base}.{alias.name}"
        return imap

    def qualify(self, node: ast.expr) -> str | None:
        """Dotted origin of a Name/Attribute chain, if import-derived.

        ``t.time`` with ``import time as t`` -> ``"time.time"``; a chain
        whose root is not an imported name resolves to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._names.get(node.id)
        if origin is None:
            return None
        return ".".join([origin] + list(reversed(parts)))


def resolve_from(node: ast.ImportFrom, module: str | None,
                 is_package: bool = False) -> str | None:
    """Absolute module named by a ``from X import ...`` node.

    Relative imports are resolved against ``module`` (the dotted name of
    the file being analysed); if that is unknown they resolve to None.
    For a package ``__init__`` the package itself is level-1's anchor.
    """
    if node.level == 0:
        return node.module
    if module is None:
        return None
    parts = module.split(".")
    # level=1 strips the leaf (the current module); each extra level one
    # more — except in a package __init__, where the leaf is the package.
    strip = node.level - 1 if is_package else node.level
    if strip > len(parts):
        return None
    base = parts[:len(parts) - strip] if strip else parts
    if node.module:
        base.append(node.module)
    return ".".join(base) if base else None
