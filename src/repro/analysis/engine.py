"""Analysis engine: file discovery, checker dispatch, filtering.

The engine walks the given roots for ``*.py`` and ``*.idl`` sources,
builds a :class:`ModuleContext` per file, runs every registered checker,
then filters findings through inline suppressions and the config-level
file allowlist.  Baseline filtering is the caller's concern (CLI and
the tier-1 gate test both layer it on top via :mod:`.baseline`).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.base import ModuleContext, all_checkers
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.suppress import Suppressions

_SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist", "node_modules"}


def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml (else ``start`` itself)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return probe


def collect_files(roots: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".py", ".idl"):
                continue
            parts = set(path.parts)
            if parts & _SKIP_DIRS or any(p.endswith(".egg-info")
                                         for p in path.parts):
                continue
            files.append(path)
    return files


def module_name_for(relpath: str) -> tuple[str | None, bool]:
    """(dotted module, is_package) for a project-relative posix path.

    Only files under ``src/`` get a module name — which is exactly the
    set of files the layering checker applies to.
    """
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None, False
    parts = relpath[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts), False


def build_context(path: Path, project_root: Path) -> ModuleContext:
    relpath = path.resolve().relative_to(project_root).as_posix()
    source = path.read_text(encoding="utf-8", errors="replace")
    if path.suffix == ".idl":
        return ModuleContext(relpath, source, tree=None)
    module, is_package = module_name_for(relpath)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        ctx = ModuleContext(relpath, source, tree=None)
        ctx.parse_error = exc  # type: ignore[attr-defined]
        return ctx
    return ModuleContext(relpath, source, tree, module, is_package,
                         Suppressions.scan(source))


def run_analysis(roots: list[Path],
                 config: AnalysisConfig = DEFAULT_CONFIG,
                 project_root: Path | None = None) -> list[Finding]:
    """Run every registered checker over the roots; returns findings
    that survive inline suppressions and the config allowlist."""
    if project_root is None:
        project_root = find_project_root(roots[0] if roots else Path("."))
    project_root = project_root.resolve()
    checkers = [cls() for cls in all_checkers()]
    findings: list[Finding] = []
    for path in collect_files(roots):
        ctx = build_context(path, project_root)
        if ctx.tree is None and path.suffix == ".py":
            exc = getattr(ctx, "parse_error", None)
            findings.append(Finding(
                "parse-error", f"file does not parse: {exc}", ctx.path,
                getattr(exc, "lineno", 0) or 0))
            continue
        for checker in checkers:
            if not checker.applicable(ctx):
                continue
            for finding in checker.check(ctx, config):
                if finding.rule in config.disabled_rules:
                    continue
                if ctx.suppressions.is_suppressed(finding.rule,
                                                  finding.line):
                    continue
                if config.is_allowed(finding.path, finding.rule):
                    continue
                findings.append(finding)
    return sort_findings(findings)
