"""Analysis engine: file discovery, checker dispatch, filtering.

The engine walks the given roots for ``*.py`` and ``*.idl`` sources and
produces one *analysis unit* per file: the per-file checkers' findings
(already filtered through inline suppressions and the config
allowlist), the file's inline suppressions, its call-graph slice, and
each registered :class:`ProjectChecker`'s fact blob.  Units are
JSON-serializable so ``--changed`` can reuse them for unchanged files
via :class:`~repro.analysis.cache.AnalysisCache`.

After the per-file pass the *interprocedural phase* always runs: the
slices are assembled into a :class:`~repro.analysis.callgraph.CallGraph`
and every project checker gets all facts plus the graph.  This phase is
never cached — it is cheap (no parsing) and re-deriving it is what
keeps cached callers honest when a callee's summary changes.

Baseline filtering is the caller's concern (CLI and the tier-1 gate
test both layer it on top via :mod:`.baseline`).
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis import callgraph
from repro.analysis.base import (
    ModuleContext,
    all_checkers,
    all_project_checkers,
)
from repro.analysis.cache import AnalysisCache, file_sha
from repro.analysis.config import DEFAULT_CONFIG, AnalysisConfig
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.stats import RunStats, clock
from repro.analysis.suppress import Suppressions

_SKIP_DIRS = {"__pycache__", ".git", ".hg", "build", "dist", "node_modules"}


def find_project_root(start: Path) -> Path:
    """Nearest ancestor holding pyproject.toml (else ``start`` itself)."""
    start = start.resolve()
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return probe


def collect_files(roots: list[Path]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        if root.is_file():
            files.append(root)
            continue
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".py", ".idl"):
                continue
            parts = set(path.parts)
            if parts & _SKIP_DIRS or any(p.endswith(".egg-info")
                                         for p in path.parts):
                continue
            files.append(path)
    return files


def module_name_for(relpath: str) -> tuple[str | None, bool]:
    """(dotted module, is_package) for a project-relative posix path.

    Only files under ``src/`` get a module name — which is exactly the
    set of files the layering checker applies to.
    """
    if not relpath.startswith("src/") or not relpath.endswith(".py"):
        return None, False
    parts = relpath[len("src/"):-len(".py")].split("/")
    if parts[-1] == "__init__":
        return ".".join(parts[:-1]), True
    return ".".join(parts), False


def build_context(path: Path, project_root: Path) -> ModuleContext:
    relpath = path.resolve().relative_to(project_root).as_posix()
    source = path.read_text(encoding="utf-8", errors="replace")
    if path.suffix == ".idl":
        return ModuleContext(relpath, source, tree=None)
    module, is_package = module_name_for(relpath)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        ctx = ModuleContext(relpath, source, tree=None)
        ctx.parse_error = exc  # type: ignore[attr-defined]
        return ctx
    return ModuleContext(relpath, source, tree, module, is_package,
                         Suppressions.scan(source))


def _filtered(findings, ctx_suppressions: Suppressions,
              config: AnalysisConfig) -> list[Finding]:
    out: list[Finding] = []
    for finding in findings:
        if finding.rule in config.disabled_rules:
            continue
        if ctx_suppressions.is_suppressed(finding.rule, finding.line):
            continue
        if config.is_allowed(finding.path, finding.rule):
            continue
        out.append(finding)
    return out


def _analyze_file(path: Path, project_root: Path,
                  config: AnalysisConfig,
                  checkers, project_checkers,
                  stats: RunStats | None = None) -> dict:
    """One freshly computed analysis unit (same shape as a cache hit)."""
    ctx = build_context(path, project_root)
    unit: dict = {"findings": [], "suppressions": ctx.suppressions,
                  "slice": None, "facts": {}}
    if ctx.tree is None and path.suffix == ".py":
        exc = getattr(ctx, "parse_error", None)
        unit["findings"].append(Finding(
            "parse-error", f"file does not parse: {exc}", ctx.path,
            getattr(exc, "lineno", 0) or 0))
        return unit
    for checker in checkers:
        if not checker.applicable(ctx):
            continue
        start = clock()
        found = checker.check(ctx, config)
        unit["findings"].extend(_filtered(found, ctx.suppressions, config))
        if stats is not None:
            stats.add_file_time(checker.name, clock() - start)
    if ctx.tree is not None:
        unit["slice"] = callgraph.slice_for(ctx)
        for checker in project_checkers:
            start = clock()
            unit["facts"][checker.name] = checker.file_facts(ctx, config)
            if stats is not None:
                stats.add_file_time(checker.name, clock() - start)
    return unit


def run_analysis(roots: list[Path],
                 config: AnalysisConfig = DEFAULT_CONFIG,
                 project_root: Path | None = None,
                 cache: AnalysisCache | None = None,
                 stats: RunStats | None = None) -> list[Finding]:
    """Run every registered checker over the roots; returns findings
    that survive inline suppressions and the config allowlist.

    With ``cache`` set, unchanged files (by content hash) reuse their
    cached per-file findings, suppressions, call-graph slice and fact
    blobs; the interprocedural phase still runs in full.  With
    ``stats`` set, per-checker wall time, per-rule finding counts and
    the cache hit ratio are accumulated onto it.
    """
    if project_root is None:
        project_root = find_project_root(roots[0] if roots else Path("."))
    project_root = project_root.resolve()
    checkers = [cls() for cls in all_checkers()]
    project_checkers = [cls() for cls in all_project_checkers()]

    units: dict[str, dict] = {}
    for path in collect_files(roots):
        relpath = path.resolve().relative_to(project_root).as_posix()
        unit = None
        sha = None
        if cache is not None:
            sha = file_sha(path)
            unit = cache.lookup(relpath, sha)
        if unit is None:
            unit = _analyze_file(path, project_root, config,
                                 checkers, project_checkers, stats)
            if cache is not None:
                cache.store(relpath, sha, unit["findings"],
                            unit["suppressions"], unit["slice"],
                            unit["facts"])
        units[relpath] = unit
    if stats is not None:
        stats.files_analyzed = len(units)
        if cache is not None:
            stats.cache_hits = len(cache.hits)
            stats.cache_misses = len(cache.misses)

    findings: list[Finding] = []
    for unit in units.values():
        findings.extend(unit["findings"])

    # interprocedural phase: always recomputed over all summaries
    slices = [u["slice"] for u in units.values()
              if u["slice"] is not None]
    graph = callgraph.CallGraph.from_slices(slices)
    for checker in project_checkers:
        facts = {path: unit["facts"].get(checker.name)
                 for path, unit in units.items()
                 if checker.name in unit["facts"]}
        start = clock()
        for finding in checker.project_check(facts, graph, config):
            unit = units.get(finding.path)
            suppressions = (unit["suppressions"] if unit is not None
                            else Suppressions())
            findings.extend(_filtered([finding], suppressions, config))
        if stats is not None:
            stats.add_project_time(checker.name, clock() - start)
    findings = sort_findings(findings)
    if stats is not None:
        stats.count_findings(findings)
    return findings
