"""Project-wide call graph for the interprocedural checkers.

Construction is two-phase so the ``--changed`` cache can keep its
per-file work:

* :func:`build_slice` extracts a JSON-serializable :class:`FileSlice`
  from one module's AST — every function/method definition, the class
  table (with resolved base names), and every call site with its best
  local resolution.  This is the only phase that needs the AST, so a
  cached slice fully replaces re-parsing an unchanged file.
* :meth:`CallGraph.from_slices` assembles slices into the project
  graph, finishing the resolutions a single file cannot do alone:
  ``self.m()`` through base classes defined elsewhere, constructor
  calls through imported class names, and a unique-method fallback for
  ``obj.m()`` when exactly one project class defines ``m``.

Resolution is deliberately syntactic (no type inference): a call edge
is added only when the target is near-certain, because every client
rule prefers a missed edge over a false-positive finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.base import ModuleContext

#: caller name used for statements executed at module import time
MODULE_BODY = "<module>"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qual: str                 # module-qualified, e.g. repro.x.C.m
    name: str
    module: str
    path: str
    line: int
    params: tuple[str, ...]   # positional parameter names, incl. self
    cls: str | None = None    # qualified class name for methods
    end: int = 0              # last physical line of the definition
    #: dotted quals of project-resolvable decorators (factory calls
    #: resolve to the factory), so the graph can route calls of the
    #: decorated function into the decorator's wrapper closure
    decorators: tuple[str, ...] = ()

    def to_json(self) -> dict:
        return {"qual": self.qual, "name": self.name,
                "module": self.module, "path": self.path,
                "line": self.line, "params": list(self.params),
                "cls": self.cls, "end": self.end,
                "decorators": list(self.decorators)}

    @classmethod
    def from_json(cls, blob: dict) -> "FunctionInfo":
        return cls(blob["qual"], blob["name"], blob["module"],
                   blob["path"], blob["line"], tuple(blob["params"]),
                   blob["cls"], blob.get("end", 0),
                   tuple(blob.get("decorators", ())))


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function (or the module body)."""

    caller: str               # qualified caller function, or *.<module>
    path: str
    line: int
    col: int
    text: str                 # source line, for messages/fingerprints
    target: str | None = None  # locally resolved dotted target, if any
    attr: str | None = None    # method name for late (CHA) resolution
    self_cls: str | None = None  # class qual for self.m() calls

    def to_json(self) -> dict:
        return {"caller": self.caller, "path": self.path,
                "line": self.line, "col": self.col, "text": self.text,
                "target": self.target, "attr": self.attr,
                "self_cls": self.self_cls}

    @classmethod
    def from_json(cls, blob: dict) -> "CallSite":
        return cls(blob["caller"], blob["path"], blob["line"],
                   blob["col"], blob["text"], blob["target"],
                   blob["attr"], blob["self_cls"])


@dataclass
class FileSlice:
    """Everything the graph needs to know about one file."""

    module: str
    path: str
    functions: list[FunctionInfo] = field(default_factory=list)
    #: class qual -> {"bases": [dotted name...], "methods": {name: qual}}
    classes: dict[str, dict] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"module": self.module, "path": self.path,
                "functions": [f.to_json() for f in self.functions],
                "classes": self.classes,
                "calls": [c.to_json() for c in self.calls]}

    @classmethod
    def from_json(cls, blob: dict) -> "FileSlice":
        return cls(blob["module"], blob["path"],
                   [FunctionInfo.from_json(f) for f in blob["functions"]],
                   {k: {"bases": list(v["bases"]),
                        "methods": dict(v["methods"])}
                    for k, v in blob["classes"].items()},
                   [CallSite.from_json(c) for c in blob["calls"]])


def slice_module_name(ctx: "ModuleContext") -> str:
    """Dotted module for graph purposes; files outside ``src/`` (test
    corpora, examples) get their stem so sibling imports still link."""
    if ctx.module:
        return ctx.module
    return PurePosixPath(ctx.path).stem


class _SliceVisitor(ast.NodeVisitor):
    def __init__(self, ctx: "ModuleContext", module: str):
        self.ctx = ctx
        self.module = module
        self.imap = ctx.import_map
        self.slice = FileSlice(module, ctx.path)
        self._fn_stack: list[str] = []      # qualified function names
        self._cls_stack: list[str] = []     # qualified class names
        #: bare name -> qual for defs visible in the current scope chain
        self._local_defs: list[dict[str, str]] = [{}]

    # -- scope helpers ---------------------------------------------------
    @property
    def _caller(self) -> str:
        if self._fn_stack:
            return self._fn_stack[-1]
        return f"{self.module}.{MODULE_BODY}"

    def _qual_here(self, name: str) -> str:
        if self._cls_stack and not self._fn_stack:
            return f"{self._cls_stack[-1]}.{name}"
        if self._fn_stack:
            return f"{self._fn_stack[-1]}.{name}"
        return f"{self.module}.{name}"

    def _preregister(self, body: list[ast.stmt]) -> None:
        """Bind this scope's immediate def/class names before walking
        the body — Python resolves names at call time, so mutually
        recursive functions reference each other forward."""
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._local_defs[-1][stmt.name] = \
                    self._qual_here(stmt.name)

    # -- definitions -----------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._preregister(node.body)
        self.generic_visit(node)
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qual = self._qual_here(node.name)
        bases: list[str] = []
        for base in node.bases:
            dotted = self.imap.qualify(base)
            if dotted is None and isinstance(base, ast.Name):
                # same-module base, or builtin we cannot see
                dotted = f"{self.module}.{base.id}"
            if dotted is not None:
                bases.append(dotted)
        self.slice.classes[qual] = {"bases": bases, "methods": {}}
        self._local_defs[-1][node.name] = qual
        self._cls_stack.append(qual)
        self._local_defs.append({})
        self._preregister(node.body)
        for child in node.body:
            self.visit(child)
        self._local_defs.pop()
        self._cls_stack.pop()

    def _resolve_decorator(self, deco: ast.expr) -> str | None:
        """Best dotted name for a decorator expression; factory calls
        (``@_collective("bcast")``) resolve to the factory itself."""
        expr = deco.func if isinstance(deco, ast.Call) else deco
        qual = self.imap.qualify(expr)
        if qual is not None:
            return qual
        if isinstance(expr, ast.Name):
            for scope in reversed(self._local_defs):
                if expr.id in scope:
                    return scope[expr.id]
        return None

    def _visit_func(self, node: ast.FunctionDef | ast.AsyncFunctionDef
                    ) -> None:
        qual = self._qual_here(node.name)
        in_class = bool(self._cls_stack) and not self._fn_stack
        params = tuple(a.arg for a in (node.args.posonlyargs
                                       + node.args.args))
        decorators = tuple(
            d for d in map(self._resolve_decorator, node.decorator_list)
            if d is not None)
        self.slice.functions.append(FunctionInfo(
            qual, node.name, self.module, self.ctx.path, node.lineno,
            params, self._cls_stack[-1] if in_class else None,
            node.end_lineno or node.lineno, decorators))
        if in_class:
            self.slice.classes[self._cls_stack[-1]]["methods"][
                node.name] = qual
        # decoration executes in the enclosing scope, not inside the
        # decorated function — visit it there so decorator-expression
        # calls are not mis-attributed to the function body
        for deco in node.decorator_list:
            self.visit(deco)
        self._local_defs[-1][node.name] = qual
        self._fn_stack.append(qual)
        self._local_defs.append({})
        self._preregister(node.body)
        for child in node.body:
            self.visit(child)
        self._local_defs.pop()
        self._fn_stack.pop()

    visit_FunctionDef = _visit_func
    visit_AsyncFunctionDef = _visit_func

    # -- call sites ------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        target: str | None = None
        attr: str | None = None
        self_cls: str | None = None
        func = node.func
        qual = self.imap.qualify(func)
        if qual is not None:
            target = qual
        elif isinstance(func, ast.Name):
            for scope in reversed(self._local_defs):
                if func.id in scope:
                    target = scope[func.id]
                    break
        elif isinstance(func, ast.Attribute):
            if (isinstance(func.value, ast.Name)
                    and func.value.id in ("self", "cls")
                    and self._cls_stack):
                self_cls = self._cls_stack[-1]
                attr = func.attr
            else:
                attr = func.attr
        if target is not None or attr is not None:
            self.slice.calls.append(CallSite(
                self._caller, self.ctx.path, node.lineno,
                node.col_offset, self.ctx.line_text(node.lineno),
                target, attr, self_cls))
        self.generic_visit(node)


def build_slice(ctx: "ModuleContext") -> FileSlice:
    """Extract the call-graph slice for one parsed module."""
    assert ctx.tree is not None
    visitor = _SliceVisitor(ctx, slice_module_name(ctx))
    visitor.visit(ctx.tree)
    return visitor.slice


def slice_for(ctx: "ModuleContext") -> FileSlice:
    """Memoized :func:`build_slice` — the engine and every project
    checker's fact pass share one slice per parsed file."""
    cached = getattr(ctx, "_cg_slice", None)
    if cached is None:
        cached = build_slice(ctx)
        ctx._cg_slice = cached  # type: ignore[attr-defined]
    return cached


def enclosing_function(slice_: FileSlice, line: int) -> str:
    """Qualified name of the innermost function containing ``line``,
    or the module-body pseudo-function."""
    best: str | None = None
    best_span = None
    for fn in slice_.functions:
        if fn.line <= line <= (fn.end or fn.line):
            span = (fn.end or fn.line) - fn.line
            if best_span is None or span < best_span:
                best, best_span = fn.qual, span
    return best if best is not None \
        else f"{slice_.module}.{MODULE_BODY}"


class CallGraph:
    """The assembled project call graph."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, dict] = {}
        #: caller qual -> [(CallSite, callee qual)]
        self.edges: dict[str, list[tuple[CallSite, str]]] = {}
        #: (path, line, col) -> callee qual, for clients that recorded
        #: their own per-site facts
        self.site_index: dict[tuple[str, int, int], str] = {}
        #: method name -> [function quals], for unique-method fallback
        self._by_method: dict[str, list[str]] = {}

    # -- assembly --------------------------------------------------------
    @classmethod
    def from_slices(cls, slices: list[FileSlice]) -> "CallGraph":
        graph = cls()
        for sl in slices:
            for fn in sl.functions:
                graph.functions[fn.qual] = fn
                if fn.cls is not None and not fn.name.startswith("__"):
                    graph._by_method.setdefault(fn.name, []).append(
                        fn.qual)
            graph.classes.update(sl.classes)
        for sl in slices:
            for site in sl.calls:
                callee = graph._resolve(site)
                if callee is None:
                    continue
                graph.edges.setdefault(site.caller, []).append(
                    (site, callee))
                graph.site_index[(site.path, site.line, site.col)] = \
                    callee
        graph._add_decorator_edges()
        for sites in graph.edges.values():
            sites.sort(key=lambda e: (e[0].line, e[0].col, e[1]))
        return graph

    def _add_decorator_edges(self) -> None:
        """Calling a decorated function really runs the decorator's
        wrapper closure, so wrapper-side effects (blocking, monitor
        hooks, buffer escapes) belong to every decorated callee: add
        ``f -> <each function nested under the decorator>`` for every
        project-resolvable decorator on ``f``.  The wrapper's own call
        back into ``f`` is deliberately *not* modelled — a shared
        wrapper would otherwise smear all decorated functions' facts
        into each other."""
        for fn in list(self.functions.values()):
            for deco in fn.decorators:
                target = self._resolve_dotted(deco)
                if target is None and deco in self.classes:
                    continue  # class decorator: no wrapper functions
                if target is None:
                    continue
                prefix = target + "."
                nested = sorted(q for q in self.functions
                                if q.startswith(prefix))
                for callee in nested:
                    site = CallSite(
                        fn.qual, fn.path, fn.line, 0,
                        f"@{deco.rsplit('.', 1)[-1]} on {fn.name}")
                    self.edges.setdefault(fn.qual, []).append(
                        (site, callee))

    def _resolve(self, site: CallSite) -> str | None:
        if site.target is not None:
            hit = self._resolve_dotted(site.target)
            if hit is not None:
                return hit
        if site.self_cls is not None and site.attr is not None:
            hit = self._method_on(site.self_cls, site.attr)
            if hit is not None:
                return hit
        if site.attr is not None:
            candidates = self._by_method.get(site.attr, ())
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:  # constructor call
            return self._method_on(dotted, "__init__")
        # ClassName.method through an imported class name, or a
        # classmethod alternative constructor
        if "." in dotted:
            head, leaf = dotted.rsplit(".", 1)
            if head in self.classes:
                return self._method_on(head, leaf)
        return None

    def _method_on(self, cls_qual: str, name: str,
                   _seen: frozenset = frozenset()) -> str | None:
        """Resolve a method through the class and its project bases."""
        if cls_qual in _seen:
            return None
        info = self.classes.get(cls_qual)
        if info is None:
            return None
        hit = info["methods"].get(name)
        if hit is not None:
            return hit
        seen = _seen | {cls_qual}
        for base in info["bases"]:
            hit = self._method_on(base, name, seen)
            if hit is not None:
                return hit
        return None

    # -- queries ---------------------------------------------------------
    def callees(self, caller: str) -> list[tuple[CallSite, str]]:
        return self.edges.get(caller, [])

    def nodes(self) -> Iterator[str]:
        yield from self.functions
        for caller in self.edges:
            if caller not in self.functions:
                yield caller  # module bodies

    def adjacency(self) -> dict[str, list[str]]:
        """caller -> callee quals (deduplicated, deterministic order)."""
        adj: dict[str, list[str]] = {}
        for node in self.nodes():
            seen: dict[str, None] = {}
            for _site, callee in self.edges.get(node, ()):
                seen.setdefault(callee)
            adj[node] = list(seen)
        return adj

    def callee_at(self, path: str, line: int, col: int) -> str | None:
        return self.site_index.get((path, line, col))
