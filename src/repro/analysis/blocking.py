"""Cooperative-kernel safety checkers (rule family ``ker-*``).

Everything under ``src/repro`` executes inside :class:`SimProcess`
bodies driven by the one-at-a-time cooperative kernel (or in kernel
callbacks).  A real blocking primitive there does not "just" block: it
parks the only runnable OS thread while the kernel believes the process
still holds the run token, desynchronising or deadlocking the whole
simulation.  Hence:

``ker-thread``
    Real :mod:`threading` primitives (Lock/Event/Condition/Thread/...).
    The kernel's own semaphore handshake in ``sim/kernel.py`` is the
    single registered exemption (see ``config.DEFAULT_FILE_ALLOW``).
``ker-sleep``
    ``time.sleep`` — use ``SimProcess.sleep`` (virtual time).
``ker-socket``
    Real :mod:`socket`/:mod:`select` I/O — use the simulated network
    stack (vlinks / the arbitration subsystems).
``ker-subprocess``
    :mod:`subprocess` / ``os.system`` / ``os.fork`` — the simulation
    cannot checkpoint or replay external processes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.base import Checker, ModuleContext, register_checker
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

_THREAD_PRIMITIVES = {
    "threading." + n for n in (
        "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event",
        "Condition", "Barrier", "Thread", "Timer", "local",
    )
}

#: whole modules whose presence in simulated code is the finding
_BANNED_MODULES = {
    "socket": ("ker-socket",
               "real sockets block the cooperative kernel; use the "
               "simulated network stack (VLink / arbitration subsystems)"),
    "select": ("ker-socket",
               "real select() blocks the cooperative kernel; use the "
               "simulated I/O multiplexer"),
    "subprocess": ("ker-subprocess",
                   "external processes cannot be replayed by the "
                   "simulation kernel"),
}

_BANNED_CALLS = {
    "time.sleep": ("ker-sleep",
                   "time.sleep blocks the real thread; use "
                   "SimProcess.sleep (virtual time)"),
    "os.system": ("ker-subprocess",
                  "external processes cannot be replayed by the "
                  "simulation kernel"),
    "os.popen": ("ker-subprocess",
                 "external processes cannot be replayed by the "
                 "simulation kernel"),
    "os.fork": ("ker-subprocess",
                "forking desynchronises the cooperative kernel"),
}


class _BlockingVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.imap = ctx.import_map
        self.findings: list[Finding] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_MODULES:
                rule, why = _BANNED_MODULES[root]
                self.findings.append(self.ctx.finding(
                    rule, f"import of {root!r}: {why}", node))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _BANNED_MODULES:
            rule, why = _BANNED_MODULES[root]
            self.findings.append(self.ctx.finding(
                rule, f"import from {root!r}: {why}", node))
        else:
            for alias in node.names:
                qual = f"{node.module}.{alias.name}" if node.module else ""
                if qual in _BANNED_CALLS:
                    rule, why = _BANNED_CALLS[qual]
                    self.findings.append(self.ctx.finding(
                        rule, f"importing {qual}: {why}", node))
                elif qual in _THREAD_PRIMITIVES:
                    self.findings.append(self.ctx.finding(
                        "ker-thread",
                        f"importing {qual}: real thread primitives "
                        f"deadlock the one-at-a-time kernel", node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.imap.qualify(node.func)
        if qual is not None:
            if qual in _BANNED_CALLS:
                rule, why = _BANNED_CALLS[qual]
                self.findings.append(self.ctx.finding(
                    rule, f"{qual}(): {why}", node))
            elif qual in _THREAD_PRIMITIVES:
                self.findings.append(self.ctx.finding(
                    "ker-thread",
                    f"{qual}() creates a real thread primitive, which "
                    f"deadlocks or desynchronises the one-at-a-time "
                    f"cooperative kernel; use repro.sim.sync instead",
                    node))
            elif qual.split(".")[0] in _BANNED_MODULES and "." in qual:
                rule, why = _BANNED_MODULES[qual.split(".")[0]]
                self.findings.append(self.ctx.finding(
                    rule, f"{qual}(): {why}", node))
        self.generic_visit(node)


@register_checker
class BlockingChecker(Checker):
    name = "kernel-safety"
    rules = {
        "ker-thread": "real threading primitive in simulated code",
        "ker-sleep": "time.sleep in simulated code",
        "ker-socket": "real socket/select I/O in simulated code",
        "ker-subprocess": "subprocess/os.system in simulated code",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        visitor = _BlockingVisitor(ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
