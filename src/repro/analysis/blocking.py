"""Cooperative-kernel safety checkers (rule family ``ker-*``).

Everything under ``src/repro`` executes inside :class:`SimProcess`
bodies driven by the one-at-a-time cooperative kernel (or in kernel
callbacks).  A real blocking primitive there does not "just" block: it
parks the only runnable OS thread while the kernel believes the process
still holds the run token, desynchronising or deadlocking the whole
simulation.  Hence:

``ker-thread``
    Real :mod:`threading` primitives (Lock/Event/Condition/Thread/...).
    The kernel's own semaphore handshake in ``sim/kernel.py`` is the
    single registered exemption (see ``config.DEFAULT_FILE_ALLOW``).
``ker-sleep``
    ``time.sleep`` — use ``SimProcess.sleep`` (virtual time).
``ker-socket``
    Real :mod:`socket`/:mod:`select` I/O — use the simulated network
    stack (vlinks / the arbitration subsystems).
``ker-subprocess``
    :mod:`subprocess` / ``os.system`` / ``os.fork`` — the simulation
    cannot checkpoint or replay external processes.
``ker-block-deep``
    The interprocedural closure of the four rules above: a call site
    whose callee *transitively* reaches a real blocking primitive
    through the project call graph.  The direct rules flag the helper
    that wraps ``time.sleep``; this one flags every kernel-side call
    site of that helper, with the root primitive and the call chain in
    the message.  Facts are *sanitized* before propagation: a blocking
    use that is inline-suppressed or config-allowlisted at its own site
    (e.g. the kernel's semaphore handshake) has been justified as safe
    and must not poison its callers.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import dataflow
from repro.analysis.base import (
    Checker,
    ModuleContext,
    ProjectChecker,
    register_checker,
    register_project_checker,
)
from repro.analysis.callgraph import CallGraph, enclosing_function, slice_for
from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding

_THREAD_PRIMITIVES = {
    "threading." + n for n in (
        "Lock", "RLock", "Semaphore", "BoundedSemaphore", "Event",
        "Condition", "Barrier", "Thread", "Timer", "local",
    )
}

#: whole modules whose presence in simulated code is the finding
_BANNED_MODULES = {
    "socket": ("ker-socket",
               "real sockets block the cooperative kernel; use the "
               "simulated network stack (VLink / arbitration subsystems)"),
    "select": ("ker-socket",
               "real select() blocks the cooperative kernel; use the "
               "simulated I/O multiplexer"),
    "subprocess": ("ker-subprocess",
                   "external processes cannot be replayed by the "
                   "simulation kernel"),
}

_BANNED_CALLS = {
    "time.sleep": ("ker-sleep",
                   "time.sleep blocks the real thread; use "
                   "SimProcess.sleep (virtual time)"),
    "os.system": ("ker-subprocess",
                  "external processes cannot be replayed by the "
                  "simulation kernel"),
    "os.popen": ("ker-subprocess",
                 "external processes cannot be replayed by the "
                 "simulation kernel"),
    "os.fork": ("ker-subprocess",
                "forking desynchronises the cooperative kernel"),
}


class _BlockingVisitor(ast.NodeVisitor):
    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.imap = ctx.import_map
        self.findings: list[Finding] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in _BANNED_MODULES:
                rule, why = _BANNED_MODULES[root]
                self.findings.append(self.ctx.finding(
                    rule, f"import of {root!r}: {why}", node))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in _BANNED_MODULES:
            rule, why = _BANNED_MODULES[root]
            self.findings.append(self.ctx.finding(
                rule, f"import from {root!r}: {why}", node))
        else:
            for alias in node.names:
                qual = f"{node.module}.{alias.name}" if node.module else ""
                if qual in _BANNED_CALLS:
                    rule, why = _BANNED_CALLS[qual]
                    self.findings.append(self.ctx.finding(
                        rule, f"importing {qual}: {why}", node))
                elif qual in _THREAD_PRIMITIVES:
                    self.findings.append(self.ctx.finding(
                        "ker-thread",
                        f"importing {qual}: real thread primitives "
                        f"deadlock the one-at-a-time kernel", node))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.imap.qualify(node.func)
        if qual is not None:
            if qual in _BANNED_CALLS:
                rule, why = _BANNED_CALLS[qual]
                self.findings.append(self.ctx.finding(
                    rule, f"{qual}(): {why}", node))
            elif qual in _THREAD_PRIMITIVES:
                self.findings.append(self.ctx.finding(
                    "ker-thread",
                    f"{qual}() creates a real thread primitive, which "
                    f"deadlocks or desynchronises the one-at-a-time "
                    f"cooperative kernel; use repro.sim.sync instead",
                    node))
            elif qual.split(".")[0] in _BANNED_MODULES and "." in qual:
                rule, why = _BANNED_MODULES[qual.split(".")[0]]
                self.findings.append(self.ctx.finding(
                    rule, f"{qual}(): {why}", node))
        self.generic_visit(node)


@register_checker
class BlockingChecker(Checker):
    name = "kernel-safety"
    rules = {
        "ker-thread": "real threading primitive in simulated code",
        "ker-sleep": "time.sleep in simulated code",
        "ker-socket": "real socket/select I/O in simulated code",
        "ker-subprocess": "subprocess/os.system in simulated code",
    }

    def check(self, ctx: ModuleContext,
              config: AnalysisConfig) -> Iterator[Finding]:
        visitor = _BlockingVisitor(ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings


_CHAIN_CAP = 6


@register_project_checker
class DeepBlockingChecker(ProjectChecker):
    """Summary-based transitive closure of the ``ker-*`` rules."""

    name = "kernel-safety-deep"
    rules = {
        "ker-block-deep":
            "call site whose callee transitively reaches a real "
            "blocking primitive (sleep/socket/thread/subprocess)",
    }

    # -- fact pass -------------------------------------------------------
    def file_facts(self, ctx: ModuleContext,
                   config: AnalysisConfig) -> dict:
        """Direct blocking facts per function, already sanitized:
        suppressed / allowlisted / disabled direct uses do not seed
        summaries (their justification covers their callers too)."""
        visitor = _BlockingVisitor(ctx)
        visitor.visit(ctx.tree)
        slice_ = slice_for(ctx)
        facts: dict[str, list] = {}
        for finding in visitor.findings:
            if finding.rule in config.disabled_rules:
                continue
            if ctx.suppressions.is_suppressed(finding.rule, finding.line):
                continue
            if config.is_allowed(ctx.path, finding.rule):
                continue
            fn = enclosing_function(slice_, finding.line)
            # "time.sleep(): ..." / "import of 'socket': ..." — keep the
            # leading token as the human-readable origin
            origin = finding.message.split(":", 1)[0]
            facts.setdefault(fn, []).append(
                {"rule": finding.rule, "origin": origin,
                 "site": f"{ctx.path}:{finding.line}"})
        return facts

    # -- interprocedural pass --------------------------------------------
    def project_check(self, facts: dict[str, dict], graph: CallGraph,
                      config: AnalysisConfig) -> Iterator[Finding]:
        direct: dict[str, list] = {}
        for blob in facts.values():
            for fn, entries in blob.items():
                direct.setdefault(fn, []).extend(entries)

        def initial(node: str) -> dict:
            summary: dict[str, dict] = {}
            for entry in direct.get(node, ()):
                summary.setdefault(entry["rule"], {
                    "origin": entry["origin"], "site": entry["site"],
                    "chain": ()})
            return summary

        def transfer(node: str, summaries: dict) -> dict:
            summary = initial(node)
            for _site, callee in graph.callees(node):
                for rule, entry in summaries.get(callee, {}).items():
                    if rule in summary:
                        continue
                    chain = (callee,) + tuple(entry["chain"])
                    summary[rule] = {"origin": entry["origin"],
                                     "site": entry["site"],
                                     "chain": chain[:_CHAIN_CAP]}
            return summary

        adjacency = graph.adjacency()
        summaries = dataflow.solve(graph.nodes(), adjacency,
                                   initial, transfer)

        for caller in sorted(graph.edges):
            for site, callee in graph.callees(caller):
                for rule in sorted(summaries.get(callee, {})):
                    entry = summaries[callee][rule]
                    chain = dataflow.reach_chain(
                        (callee,) + tuple(entry["chain"]))
                    yield Finding(
                        "ker-block-deep",
                        f"call reaches {entry['origin']} "
                        f"[{rule} at {entry['site']}] via {chain}; "
                        f"blocking primitives must not run on the "
                        f"cooperative kernel",
                        site.path, site.line, site.col,
                        source_line=site.text)
