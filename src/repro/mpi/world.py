"""World construction and SPMD execution helpers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.mpi.coll import CollTuning
from repro.mpi.communicator import Comm
from repro.padicotm.abstraction.circuit import Circuit
from repro.padicotm.modules import PadicoModule
from repro.sim.kernel import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess, PadicoRuntime


class MpiModule(PadicoModule):
    """The MPI middleware as a loadable PadicoTM module.

    Mirrors the paper's MPICH/Madeleine port: written against pthread
    semantics but adapted to the resident Marcel policy by PadicoTM.
    """

    name = "mpi"
    version = "mpich-madeleine/1.1.2"
    thread_policy = "pthread"


class World:
    """An MPI world spanning a set of PadicoTM processes."""

    def __init__(self, circuit: Circuit, comms: list[Comm]):
        self.circuit = circuit
        self.comms = comms

    @property
    def size(self) -> int:
        return len(self.comms)

    def comm(self, rank: int) -> Comm:
        return self.comms[rank]


def create_world(runtime: "PadicoRuntime", name: str,
                 processes: list["PadicoProcess"],
                 fabric: str | None = None,
                 coll: CollTuning | None = None) -> World:
    """Build an MPI world: one rank per PadicoTM process.

    Loads the MPI module into each process (idempotent per process) and
    establishes the underlying Circuit, letting the PadicoTM selector
    pick the network unless ``fabric`` forces one.  ``coll`` pins the
    collective tuning (topology-aware by default; ``REPRO_MPI_COLL=flat``
    selects the flat oracle when no explicit tuning is given).
    """
    for p in processes:
        if not p.modules.is_loaded(MpiModule.name):
            p.modules.load(MpiModule())
    circuit = Circuit.establish(runtime, f"mpi:{name}", processes,
                                fabric=fabric)
    group = list(range(len(processes)))
    tuning = CollTuning.resolve(coll)
    comms = [Comm(circuit, group, r, f"mpi:{name}", tuning=tuning)
             for r in range(len(processes))]
    return World(circuit, comms)


def spmd(world: World, fn: Callable, *args: Any,
         name: str = "rank") -> list[SimProcess]:
    """Run ``fn(proc, comm, *args)`` once per rank of ``world``.

    Returns the spawned simulated threads (their ``result`` attributes
    carry the per-rank return values after the kernel runs).
    """
    threads = []
    for rank, comm in enumerate(world.comms):

        def runner(proc: SimProcess, comm: Comm = comm) -> Any:
            comm.bind(proc)
            return fn(proc, comm, *args)

        threads.append(comm.process.spawn(runner, name=f"{name}{rank}"))
    return threads
