"""Topology-aware collective hierarchy (MPICH-G2 style, paper Fig. 8).

MPICH-G2 (Karonis et al.) showed that multi-site MPI collectives must be
*topology-depth aware*: a flat rank-order binomial tree crosses the WAN
O(log N) times per broadcast, while a two-level tree — cluster-local
binomial subtrees under a per-site *leader*, with only leaders talking
over the WAN — crosses it exactly ``sites - 1`` times.  This module
holds the site hierarchy the communicator routes through:

- :class:`CollTuning` — the per-communicator knobs (``aware`` on/off,
  alltoall aggregation threshold), resolvable from the
  ``REPRO_MPI_COLL`` environment variable so any run can be replayed in
  flat mode as the differential-testing oracle;
- :class:`SiteMap` — each group rank resolved to its host's topology
  ``site`` tag, with per-site member lists and the deterministic leader
  rule (lowest rank per site, except the root's site where the root
  itself leads, so data never takes an extra intra-site hop);
- :class:`CollShared` — the state all ranks of one communicator share:
  the site map, lazily-established per-site subcircuits (the PadicoTM
  selector picks the site SAN for those, so intra-site tree edges ride
  Myrinet instead of the WAN fabric's uplinks), and the plain-integer
  WAN-crossing/byte counters behind ``Comm.coll_stats``.

Rank-local ``Comm`` objects cannot share state directly, so
:func:`shared_state` caches one :class:`CollShared` per communicator
context on the (shared) Circuit object.  The counters are plain ints —
they perturb nothing when no monitor is attached (the obs-guard
contract); the ``mpi.wan_crossings`` / ``mpi.wan_bytes.<op>`` obs
counters are emitted by the communicator only under ``mon is not None``
guards.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.padicotm.abstraction.circuit import Circuit

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

__all__ = ["CollTuning", "CollStats", "SiteMap", "CollShared",
           "shared_state"]


@dataclass(frozen=True)
class CollTuning:
    """Collective-path tuning, fixed at communicator construction.

    ``aware``
        route collectives through the site hierarchy (default).  Flat
        mode — ``CollTuning(aware=False)`` or ``REPRO_MPI_COLL=flat`` —
        keeps the original rank-order binomial trees and serves as the
        differential-testing oracle.
    ``alltoall_threshold``
        per-destination-site aggregate size (bytes) below which an
        alltoall sender bypasses the leader relay and sends its
        payloads directly (0 = always aggregate through leaders).
    """

    aware: bool = True
    alltoall_threshold: int = 0

    @classmethod
    def resolve(cls, explicit: "CollTuning | None" = None) -> "CollTuning":
        """Pick the tuning: an explicit value wins, else the
        ``REPRO_MPI_COLL`` environment variable, else aware."""
        if explicit is not None:
            return explicit
        mode = os.environ.get("REPRO_MPI_COLL", "aware").strip().lower()
        if mode == "flat":
            return cls(aware=False)
        if mode in ("", "aware"):
            return cls()
        raise ValueError(
            f"REPRO_MPI_COLL must be 'aware' or 'flat', got {mode!r}")


class CollStats:
    """Per-communicator WAN traffic counters (plain ints/floats —
    maintained whether or not a monitor is attached)."""

    __slots__ = ("wan_crossings", "wan_bytes")

    def __init__(self) -> None:
        self.wan_crossings = 0
        self.wan_bytes: dict[str, float] = {}

    def count(self, op: str, nbytes: float) -> None:
        self.wan_crossings += 1
        self.wan_bytes[op] = self.wan_bytes.get(op, 0.0) + float(nbytes)


class SiteMap:
    """Group ranks resolved to topology sites.

    Sites are indexed in order of first appearance in rank order, so
    every rank derives the identical map without communicating."""

    def __init__(self, tags: list[str]):
        self.tags = tags
        self.sites: list[str] = []
        self.site_of: list[int] = []
        index: dict[str, int] = {}
        for tag in tags:
            si = index.get(tag)
            if si is None:
                si = index[tag] = len(self.sites)
                self.sites.append(tag)
            self.site_of.append(si)
        self.members: list[list[int]] = [[] for _ in self.sites]
        for rank, si in enumerate(self.site_of):
            self.members[si].append(rank)
        # contiguous == every site's ranks form one unbroken block, which
        # is what lets hierarchical reduce preserve flat operand order
        self.contiguous = all(
            m[-1] - m[0] + 1 == len(m) for m in self.members)

    @property
    def nsites(self) -> int:
        return len(self.sites)

    @property
    def multi_site(self) -> bool:
        return len(self.sites) > 1

    def leader(self, si: int, root: int) -> int:
        """Deterministic per-site leader for a collective rooted at
        ``root``: the root itself on its own site (no extra hop for the
        root's data), the lowest member rank elsewhere."""
        if si == self.site_of[root]:
            return root
        return self.members[si][0]

    def leaders(self, root: int) -> list[int]:
        return [self.leader(si, root) for si in range(self.nsites)]


class CollShared:
    """State shared by all ranks of one communicator (cached on the
    Circuit, see :func:`shared_state`)."""

    def __init__(self, circuit: Circuit, group: list[int], context: str,
                 tuning: CollTuning):
        self.tuning = tuning
        self.stats = CollStats()
        self.sitemap = SiteMap(
            [circuit.members[g].host.site for g in group])
        #: hierarchy engaged: aware tuning on a genuinely multi-site
        #: group.  Single-site groups keep the flat path bit-for-bit.
        self.active = tuning.aware and self.sitemap.multi_site
        self._circuit = circuit
        self._group = list(group)
        self._context = context
        self._site_circuits: dict[int, tuple[Circuit, dict[int, int]]] = {}

    def site_channel(self, si: int) -> tuple[Circuit, dict[int, int]]:
        """The per-site subcircuit and its group-rank -> local-rank map.

        Established lazily (first collective that routes an intra-site
        edge); the PadicoTM selector picks the best fabric connecting
        just the site's hosts — the site SAN on a grid topology."""
        got = self._site_circuits.get(si)
        if got is None:
            ranks = self.sitemap.members[si]
            procs: list["PadicoProcess"] = [
                self._circuit.members[self._group[r]] for r in ranks]
            sub = Circuit.establish(
                self._circuit.runtime,
                f"{self._context}|site:{self.sitemap.sites[si]}", procs)
            got = (sub, {r: i for i, r in enumerate(ranks)})
            self._site_circuits[si] = got
        return got


def shared_state(circuit: Circuit, group: list[int], context: str,
                 tuning: CollTuning) -> CollShared:
    """One :class:`CollShared` per communicator, shared across its
    rank-local ``Comm`` objects via a cache on the Circuit.

    The first rank to ask builds it; the tuning of later askers is
    ignored (SPMD discipline means they carry the same one anyway)."""
    cache = circuit.__dict__.setdefault("_coll_shared", {})
    key = (context, tuple(group))
    shared = cache.get(key)
    if shared is None:
        shared = cache[key] = CollShared(circuit, group, context, tuning)
    return shared
