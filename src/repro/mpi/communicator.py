"""MPI communicator: point-to-point and collective operations.

A :class:`Comm` is bound to one rank of a Circuit and to the simulated
thread that runs that rank (see :func:`repro.mpi.world.spmd`).  Message
envelopes are ``(context, tag, body)`` tuples; contexts isolate
communicators (and each collective call) from each other, so overlapping
traffic can never be mis-matched.

Cost model (charged to the virtual clock):

- lowercase/pickle path: ``len(pickle) * PICKLE_BYTE_COST`` CPU seconds
  on each side (the serialisation copy);
- uppercase/buffer path: no software copy — the zero-copy Madeleine DMA
  path, which is what lets MPI saturate Myrinet in Figure 7;
- wire time and per-message overheads are charged by the Circuit layer.

Wall-clock protocol selection (Madeleine-style, virtual clock
unaffected): outgoing buffers below :data:`RENDEZVOUS_THRESHOLD` are
staged through an eager copy, so the caller may reuse its buffer the
moment the send returns; buffers at or above it ride the rendezvous
path — the message references the caller's memory, which must stay
unmutated until the matching receive has completed (the standard
zero-copy send contract).  Both disciplines are metered through the
``wire.copied_bytes.mpi`` / ``wire.referenced_bytes.mpi`` obs counters,
as is the delivery copy into the receiver's buffer.
"""

from __future__ import annotations

import functools
import pickle
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.mpi.ops import ReduceOp
from repro.mpi.request import Request
from repro.padicotm.abstraction.circuit import ANY_SOURCE as _CIRCUIT_ANY
from repro.padicotm.abstraction.circuit import Circuit
from repro.sim.kernel import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

#: wildcard receive selectors (mpi4py names)
ANY_SOURCE = -1
ANY_TAG = -1

#: CPU cost of the pickle serialisation copy, seconds per byte (~500 MB/s,
#: generous for a 1 GHz Pentium III but it keeps the pickle path visibly
#: slower than the zero-copy buffer path).
PICKLE_BYTE_COST = 2.0e-9

#: eager/rendezvous cutover for the buffer path: sends below this size
#: are staged through an eager copy (buffer reusable immediately);
#: larger sends reference the caller's buffer until the matching
#: receive completes — Madeleine's large-message rendezvous protocol.
RENDEZVOUS_THRESHOLD = 64 * 1024


class MpiError(RuntimeError):
    """MPI usage or transport error."""


def _collective(op: str) -> Callable:
    """Wrap a collective in an ``mpi.<op>`` observability span.

    Pure bookkeeping when a monitor is attached, nothing at all when
    none is — the decorated body runs unchanged either way.
    """
    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self: "Comm", *args: Any, **kwargs: Any) -> Any:
            mon = self._monitor()
            if mon is None:
                return fn(self, *args, **kwargs)
            mon.on_span_start(f"mpi.{op}", cat="middleware",
                              rank=self._rank, size=self.size)
            try:
                return fn(self, *args, **kwargs)
            finally:
                mon.on_span_end(f"mpi.{op}")
        return wrapper
    return deco


class Status:
    """Receive status: envelope information of a matched message."""

    def __init__(self) -> None:
        self.source: int = ANY_SOURCE
        self.tag: int = ANY_TAG
        self.count: float = 0.0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> float:
        return self.count


class Comm:
    """An MPI communicator bound to one rank.

    Created through :func:`repro.mpi.world.create_world`; user code
    receives it already bound to the simulated thread of its rank.
    """

    def __init__(self, circuit: Circuit, group: list[int], rank: int,
                 context: str):
        self._circuit = circuit
        self._group = group           # group index -> circuit rank
        self._rank = rank             # my index within the group
        self._context = context
        self._coll_seq = 0
        self._proc: SimProcess | None = None

    # ------------------------------------------------------------------
    # binding & identity
    # ------------------------------------------------------------------
    def bind(self, proc: SimProcess) -> "Comm":
        """Attach this communicator to the simulated thread of its rank."""
        self._proc = proc
        return self

    @property
    def proc(self) -> SimProcess:
        if self._proc is None:
            raise MpiError("communicator not bound to a thread; "
                           "run ranks through repro.mpi.spmd()")
        return self._proc

    @property
    def kernel(self):
        return self._circuit.runtime.kernel

    @property
    def process(self) -> "PadicoProcess":
        return self._circuit.members[self._group[self._rank]]

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._group)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    def Get_processor_name(self) -> str:
        return self.process.host.name

    def Wtime(self) -> float:
        return self.kernel.now

    def _monitor(self) -> Any:
        return self._circuit.runtime.monitor

    def _stage(self, arr: np.ndarray) -> np.ndarray:
        """Eager/rendezvous protocol selection for an outgoing buffer.

        Below :data:`RENDEZVOUS_THRESHOLD` the buffer is copied
        (eager — the caller may scribble on it right away); at or above
        it the message references the caller's memory (rendezvous).
        Pure wall-clock behaviour: the virtual clock never charges for
        this copy either way."""
        mon = self._monitor()
        if arr.nbytes >= RENDEZVOUS_THRESHOLD:
            if mon is not None:
                mon.on_counter("wire.referenced_bytes.mpi",
                               float(arr.nbytes))
            return arr
        if mon is not None:
            mon.on_counter("wire.copied_bytes.mpi", float(arr.nbytes))
        return arr.copy()

    def _count_delivery(self, nbytes: int) -> None:
        """Meter the copy into the receiver's buffer."""
        mon = self._monitor()
        if mon is not None:
            mon.on_counter("wire.copied_bytes.mpi", float(nbytes))

    def __repr__(self) -> str:
        return (f"<Comm rank {self._rank}/{self.size} "
                f"ctx={self._context!r}>")

    # ------------------------------------------------------------------
    # envelope plumbing
    # ------------------------------------------------------------------
    def _send_body(self, proc: SimProcess, dest: int, tag: int, body: Any,
                   nbytes: float, context: str) -> None:
        if not 0 <= dest < self.size:
            raise MpiError(f"destination rank {dest} out of range "
                           f"(size {self.size})")
        self._circuit.send(proc, self._group[self._rank],
                           self._group[dest], (context, tag, body), nbytes)

    def _recv_body(self, proc: SimProcess, source: int, tag: int,
                   context: str) -> tuple[int, int, Any, float]:
        csrc = _CIRCUIT_ANY if source == ANY_SOURCE \
            else self._group[source]

        def where(payload) -> bool:
            ctx, mtag, _body = payload
            return ctx == context and (tag == ANY_TAG or mtag == tag)

        src, payload, n = self._circuit.recv(
            proc, self._group[self._rank], source=csrc, where=where)
        _ctx, mtag, body = payload
        return self._group.index(src), mtag, body, n

    def _p2p_context(self) -> str:
        return f"{self._context}|p2p"

    def _coll_context(self, opname: str) -> str:
        """A fresh context per collective call.

        SPMD discipline means every rank issues collectives in the same
        order, so per-rank sequence numbers agree."""
        ctx = f"{self._context}|coll{self._coll_seq}|{opname}"
        self._coll_seq += 1
        return ctx

    # ------------------------------------------------------------------
    # point-to-point: pickle path (lowercase)
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send of a pickled Python object."""
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        n = len(data)
        self.proc.sleep(n * PICKLE_BYTE_COST)
        self._send_body(self.proc, dest, tag, ("p", data), n,
                        self._p2p_context())

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> Any:
        """Blocking receive of a pickled Python object."""
        src, mtag, body, n = self._recv_body(self.proc, source, tag,
                                             self._p2p_context())
        obj = self._decode(self.proc, body, n)
        if status is not None:
            status.source, status.tag, status.count = src, mtag, n
        return obj

    def _decode(self, proc: SimProcess, body: tuple[str, Any],
                nbytes: float) -> Any:
        kind, data = body
        if kind == "p":
            proc.sleep(nbytes * PICKLE_BYTE_COST)
            return pickle.loads(data)
        return data

    # ------------------------------------------------------------------
    # point-to-point: buffer path (uppercase, zero-copy)
    # ------------------------------------------------------------------
    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Blocking send of a numpy buffer on the zero-copy path.

        Small sends are eager (the buffer is reusable immediately);
        sends of :data:`RENDEZVOUS_THRESHOLD` bytes or more reference
        the caller's buffer, which must stay unmutated until the
        receiver has completed the matching receive."""
        arr = np.ascontiguousarray(buf)
        self._send_body(self.proc, dest, tag, ("b", self._stage(arr)),
                        arr.nbytes, self._p2p_context())

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, status: Status | None = None) -> None:
        """Blocking receive into a caller-provided numpy buffer."""
        src, mtag, body, n = self._recv_body(self.proc, source, tag,
                                             self._p2p_context())
        kind, data = body
        if kind != "b":
            raise MpiError("Recv matched a pickled message; use recv()")
        out = np.asarray(buf)
        if out.nbytes != data.nbytes:
            raise MpiError(f"receive buffer is {out.nbytes} bytes, "
                           f"message is {data.nbytes}")
        np.copyto(out, data.reshape(out.shape))
        self._count_delivery(out.nbytes)
        if status is not None:
            status.source, status.tag, status.count = src, mtag, n

    # ------------------------------------------------------------------
    # nonblocking
    # ------------------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking pickled send; the buffer is captured immediately."""
        req = Request(self)
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        n = len(data)
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                p.sleep(n * PICKLE_BYTE_COST)
                self._send_body(p, dest, tag, ("p", data), n, ctx)
            except Exception as exc:  # noqa: BLE001 - surfaced via request
                req._complete(error=exc)
            else:
                req._complete()

        self.process.spawn(worker, name="mpi-isend", daemon=True)
        return req

    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer send."""
        req = Request(self)
        # MPI nonblocking semantics already forbid touching the buffer
        # before wait(), so the rendezvous reference is always safe here
        arr = self._stage(np.ascontiguousarray(buf))
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                self._send_body(p, dest, tag, ("b", arr), arr.nbytes, ctx)
            except Exception as exc:  # noqa: BLE001
                req._complete(error=exc)
            else:
                req._complete()

        self.process.spawn(worker, name="mpi-Isend", daemon=True)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking pickled receive; ``wait()`` returns the object."""
        req = Request(self)
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                _src, _t, body, n = self._recv_body(p, source, tag, ctx)
                obj = self._decode(p, body, n)
            except Exception as exc:  # noqa: BLE001
                req._complete(error=exc)
            else:
                req._complete(obj)

        self.process.spawn(worker, name="mpi-irecv", daemon=True)
        return req

    def Irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking buffer receive into ``buf``."""
        req = Request(self)
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                _src, _t, body, _n = self._recv_body(p, source, tag, ctx)
                kind, data = body
                if kind != "b":
                    raise MpiError("Irecv matched a pickled message")
                out = np.asarray(buf)
                np.copyto(out, data.reshape(out.shape))
                self._count_delivery(out.nbytes)
            except Exception as exc:  # noqa: BLE001
                req._complete(error=exc)
            else:
                req._complete()

        self.process.spawn(worker, name="mpi-Irecv", daemon=True)
        return req

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free by construction)."""
        req = self.isend(obj, dest, sendtag)
        got = self.recv(source, recvtag)
        req.wait()
        return got

    @_collective("Scatterv")
    def Scatterv(self, sendbuf: np.ndarray | None,
                 counts: Sequence[int] | None, recvbuf: np.ndarray,
                 root: int = 0) -> None:
        """Variable-count scatter of a numpy buffer.

        ``counts[i]`` elements go to rank i; displacements are the
        running sum (contiguous layout, the common case)."""
        ctx = self._coll_context("Scatterv")
        out = np.asarray(recvbuf)
        if self._rank == root:
            if sendbuf is None or counts is None or \
                    len(counts) != self.size:
                raise MpiError(f"root must supply sendbuf and exactly "
                               f"{self.size} counts")
            flat = np.ascontiguousarray(sendbuf).ravel()
            if sum(counts) != flat.size:
                raise MpiError(f"counts sum to {sum(counts)} but sendbuf "
                               f"has {flat.size} elements")
            offset = 0
            my_part = None
            for dst, count in enumerate(counts):
                part = flat[offset:offset + count]
                offset += count
                if dst == root:
                    my_part = part.copy()
                else:
                    self._send_body(self.proc, dst, 9,
                                    ("b", self._stage(part)),
                                    part.nbytes, ctx)
            np.copyto(out, my_part.reshape(out.shape))
        else:
            _s, _t, body, _n = self._recv_body(self.proc, root, 9, ctx)
            np.copyto(out, body[1].reshape(out.shape))
            self._count_delivery(out.nbytes)

    @_collective("Gatherv")
    def Gatherv(self, sendbuf: np.ndarray,
                recvbuf: np.ndarray | None,
                counts: Sequence[int] | None, root: int = 0) -> None:
        """Variable-count gather into a contiguous buffer at ``root``."""
        ctx = self._coll_context("Gatherv")
        part = np.ascontiguousarray(sendbuf).ravel()
        if self._rank == root:
            if recvbuf is None or counts is None or \
                    len(counts) != self.size:
                raise MpiError(f"root must supply recvbuf and exactly "
                               f"{self.size} counts")
            flat = np.asarray(recvbuf).ravel()
            if sum(counts) != flat.size:
                raise MpiError(f"counts sum to {sum(counts)} but recvbuf "
                               f"has {flat.size} elements")
            offsets = np.concatenate(([0], np.cumsum(counts)))
            flat[offsets[root]:offsets[root + 1]] = part
            for _ in range(self.size - 1):
                src, _t, body, _n = self._recv_body(self.proc, ANY_SOURCE,
                                                    10, ctx)
                flat[offsets[src]:offsets[src + 1]] = body[1]
                self._count_delivery(int(body[1].nbytes))
        else:
            self._send_body(self.proc, root, 10, ("b", self._stage(part)),
                            part.nbytes, ctx)

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Status | None = None) -> None:
        """Block until a matching message is pending, without receiving
        it (MPI_Probe); fills ``status`` with the pending envelope."""
        ctx = self._p2p_context()
        csrc = _CIRCUIT_ANY if source == ANY_SOURCE else self._group[source]
        src, payload, n = self._circuit.wait_message(
            self.proc, self._group[self._rank], source=csrc,
            where=lambda p: p[0] == ctx and
            (tag == ANY_TAG or p[1] == tag))
        if status is not None:
            status.source = self._group.index(src)
            status.tag = payload[1]
            status.count = n

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check for a matching pending message."""
        ctx = self._p2p_context()
        csrc = _CIRCUIT_ANY if source == ANY_SOURCE else self._group[source]
        return self._circuit.poll(
            self._group[self._rank], source=csrc,
            where=lambda p: p[0] == ctx and (tag == ANY_TAG or p[1] == tag))

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    @_collective("barrier")
    def barrier(self) -> None:
        """Binomial gather-to-0 then binomial release (MPICH style).

        2·ceil(log2(size)) message hops on the critical path — the term
        the paper's Figure-8 latency column grows by with node count.
        """
        ctx = self._coll_context("barrier")
        self._tree_gather_signal(ctx)
        self._tree_bcast(("p", b""), 0.0, 0, ctx)

    Barrier = barrier

    def _tree_gather_signal(self, ctx: str) -> None:
        size, rank = self.size, self._rank
        mask = 1
        while mask < size:
            if rank & mask:
                self._send_body(self.proc, rank - mask, 0, ("p", b""), 0, ctx)
                break
            if rank + mask < size:
                self._recv_body(self.proc, rank + mask, 0, ctx)
            mask <<= 1

    @_collective("bcast")
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast of a pickled object."""
        ctx = self._coll_context("bcast")
        if self._rank == root:
            data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            self.proc.sleep(len(data) * PICKLE_BYTE_COST)
            body: tuple[str, Any] = ("p", data)
            n = float(len(data))
        else:
            body, n = None, 0.0  # type: ignore[assignment]
        body, n = self._tree_bcast(body, n, root, ctx)
        _kind, data = body
        self.proc.sleep(n * PICKLE_BYTE_COST)
        return pickle.loads(data)

    @_collective("Bcast")
    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        """Binomial-tree broadcast of a numpy buffer, in place."""
        ctx = self._coll_context("Bcast")
        out = np.asarray(buf)
        if self._rank == root:
            # rendezvous contract for large broadcasts: the root buffer
            # must stay unmutated until every rank's delivery copy —
            # tree forwarding passes the same reference down unchanged
            body: tuple[str, Any] = \
                ("b", self._stage(np.ascontiguousarray(out)))
            n = float(out.nbytes)
        else:
            body, n = None, 0.0  # type: ignore[assignment]
        body, _n = self._tree_bcast(body, n, root, ctx)
        if self._rank != root:
            np.copyto(out, body[1].reshape(out.shape))
            self._count_delivery(out.nbytes)

    def _tree_bcast(self, body: Any, nbytes: float, root: int,
                    ctx: str) -> tuple[Any, float]:
        """Binomial-tree broadcast: each node receives once (from its
        parent in the virtual-rank tree) then forwards down."""
        size = self.size
        vrank = (self._rank - root) % size
        mask = 1
        while mask < size:
            if vrank < mask:
                if vrank + mask < size:
                    dst = (vrank + mask + root) % size
                    self._send_body(self.proc, dst, 2, body, nbytes, ctx)
            elif vrank < mask << 1:
                src = (vrank - mask + root) % size
                _s, _t, body, nbytes = self._recv_body(self.proc, src, 2, ctx)
            mask <<= 1
        return body, nbytes

    @_collective("gather")
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather pickled objects to ``root`` (rank order preserved)."""
        ctx = self._coll_context("gather")
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            for _ in range(self.size - 1):
                src, _t, body, n = self._recv_body(self.proc, ANY_SOURCE,
                                                   3, ctx)
                out[src] = self._decode(self.proc, body, n)
            return out
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.proc.sleep(len(data) * PICKLE_BYTE_COST)
        self._send_body(self.proc, root, 3, ("p", data), len(data), ctx)
        return None

    @_collective("scatter")
    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one object per rank from ``root``."""
        if self._rank == root and (objs is None or len(objs) != self.size):
            # reject before allocating the collective context so a failed
            # call leaves the context sequence aligned across ranks
            raise MpiError(f"scatter needs exactly {self.size} items "
                           f"at the root")
        ctx = self._coll_context("scatter")
        if self._rank == root:
            for dst, item in enumerate(objs):
                if dst == root:
                    continue
                data = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
                self.proc.sleep(len(data) * PICKLE_BYTE_COST)
                self._send_body(self.proc, dst, 4, ("p", data),
                                len(data), ctx)
            return objs[root]
        _s, _t, body, n = self._recv_body(self.proc, root, 4, ctx)
        return self._decode(self.proc, body, n)

    @_collective("allgather")
    def allgather(self, obj: Any) -> list[Any]:
        """Gather to rank 0, then broadcast the assembled list."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    @_collective("alltoall")
    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all exchange."""
        if len(objs) != self.size:
            raise MpiError(f"alltoall needs exactly {self.size} items")
        ctx = self._coll_context("alltoall")
        out: list[Any] = [None] * self.size
        out[self._rank] = objs[self._rank]
        for shift in range(1, self.size):
            dst = (self._rank + shift) % self.size
            data = pickle.dumps(objs[dst], protocol=pickle.HIGHEST_PROTOCOL)
            self.proc.sleep(len(data) * PICKLE_BYTE_COST)
            self._send_body(self.proc, dst, 5, ("p", data), len(data), ctx)
        for _ in range(self.size - 1):
            src, _t, body, n = self._recv_body(self.proc, ANY_SOURCE, 5, ctx)
            out[src] = self._decode(self.proc, body, n)
        return out

    @_collective("reduce")
    def reduce(self, obj: Any, op: ReduceOp, root: int = 0) -> Any:
        """Binomial-tree reduction of pickled objects towards ``root``."""
        ctx = self._coll_context("reduce")
        size = self.size
        vrank = (self._rank - root) % size
        acc = obj
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = (vrank - mask + root) % size
                data = pickle.dumps(acc, protocol=pickle.HIGHEST_PROTOCOL)
                self.proc.sleep(len(data) * PICKLE_BYTE_COST)
                self._send_body(self.proc, dst, 6, ("p", data),
                                len(data), ctx)
                break
            if vrank + mask < size:
                src = (vrank + mask + root) % size
                _s, _t, body, n = self._recv_body(self.proc, src, 6, ctx)
                contrib = self._decode(self.proc, body, n)
                # combine in child-first order so non-commutative ops
                # see operands in rank order
                acc = op(acc, contrib)
            mask <<= 1
        return acc if self._rank == root else None

    @_collective("allreduce")
    def allreduce(self, obj: Any, op: ReduceOp) -> Any:
        """Reduce to rank 0, then broadcast the result."""
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)

    @_collective("scan")
    def scan(self, obj: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction (linear chain)."""
        ctx = self._coll_context("scan")
        acc = obj
        if self._rank > 0:
            _s, _t, body, n = self._recv_body(self.proc, self._rank - 1,
                                              7, ctx)
            prefix = self._decode(self.proc, body, n)
            acc = op(prefix, obj)
        if self._rank + 1 < self.size:
            data = pickle.dumps(acc, protocol=pickle.HIGHEST_PROTOCOL)
            self.proc.sleep(len(data) * PICKLE_BYTE_COST)
            self._send_body(self.proc, self._rank + 1, 7, ("p", data),
                            len(data), ctx)
        return acc

    @_collective("Reduce")
    def Reduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
               op: ReduceOp, root: int = 0) -> None:
        """Buffer-path binomial reduction (no pickle cost)."""
        ctx = self._coll_context("Reduce")
        size = self.size
        vrank = (self._rank - root) % size
        # ops are functional (no in-place accumulation), so the initial
        # accumulator can reference sendbuf on the rendezvous path
        acc = self._stage(np.ascontiguousarray(sendbuf))
        mask = 1
        while mask < size:
            if vrank & mask:
                dst = (vrank - mask + root) % size
                self._send_body(self.proc, dst, 8, ("b", acc),
                                acc.nbytes, ctx)
                break
            if vrank + mask < size:
                src = (vrank + mask + root) % size
                _s, _t, body, _n = self._recv_body(self.proc, src, 8, ctx)
                acc = op(acc, body[1])
            mask <<= 1
        if self._rank == root:
            if recvbuf is None:
                raise MpiError("root must supply recvbuf")
            out = np.asarray(recvbuf)
            np.copyto(out, acc.reshape(out.shape))
            self._count_delivery(out.nbytes)

    @_collective("Allreduce")
    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op: ReduceOp) -> None:
        """Buffer-path reduce to rank 0 followed by broadcast."""
        out = np.asarray(recvbuf)
        if self._rank == 0:
            self.Reduce(sendbuf, out, op, root=0)
        else:
            self.Reduce(sendbuf, None, op, root=0)
        self.Bcast(out, root=0)

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order ranks by
        ``(key, old rank)``.  Returns None for ``color=None``
        (MPI_UNDEFINED)."""
        triples = self.allgather((color, key, self._rank))
        seq = self._coll_seq  # advanced identically on every rank
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color)
        group = [self._group[r] for _k, r in members]
        my_index = [r for _k, r in members].index(self._rank)
        ctx = f"{self._context}/split{seq}:{color}"
        sub = Comm(self._circuit, group, my_index, ctx)
        sub.bind(self.proc)
        return sub

    def Create_cart(self, dims, periods=None) -> "Comm":
        """Cartesian topology view (see :mod:`repro.mpi.cartesian`)."""
        from repro.mpi.cartesian import create_cart

        return create_cart(self, dims, periods)

    def dup(self) -> "Comm":
        """Duplicate with a fresh context (isolated traffic)."""
        triples = self.allgather(0)  # synchronise context generation
        del triples
        ctx = f"{self._context}/dup{self._coll_seq}"
        dup = Comm(self._circuit, list(self._group), self._rank, ctx)
        dup.bind(self.proc)
        return dup
