"""MPI communicator: point-to-point and collective operations.

A :class:`Comm` is bound to one rank of a Circuit and to the simulated
thread that runs that rank (see :func:`repro.mpi.world.spmd`).  Message
envelopes are ``(context, tag, body)`` tuples; contexts isolate
communicators (and each collective call) from each other, so overlapping
traffic can never be mis-matched.

Cost model (charged to the virtual clock):

- lowercase/pickle path: ``len(pickle) * PICKLE_BYTE_COST`` CPU seconds
  on each side (the serialisation copy);
- uppercase/buffer path: no software copy — the zero-copy Madeleine DMA
  path, which is what lets MPI saturate Myrinet in Figure 7;
- wire time and per-message overheads are charged by the Circuit layer.

Collectives are *topology aware* by default (MPICH-G2 style, see
:mod:`repro.mpi.coll`): on a multi-site group each collective routes
through cluster-local binomial subtrees under per-site leaders, with
only leaders crossing the WAN — intra-site edges ride a per-site
subcircuit whose fabric the PadicoTM selector picks (the site SAN on a
grid).  ``CollTuning(aware=False)`` or ``REPRO_MPI_COLL=flat`` selects
the original flat rank-order binomial trees, the differential-testing
oracle; single-site groups always take the flat path unchanged.  Both
modes maintain per-communicator WAN-crossing/byte counters
(:attr:`Comm.coll_stats`) and, when a monitor is attached, the
``mpi.wan_crossings`` / ``mpi.wan_bytes.<op>`` obs counters.

Wall-clock protocol selection (Madeleine-style, virtual clock
unaffected): outgoing buffers below :data:`RENDEZVOUS_THRESHOLD` are
staged through an eager copy, so the caller may reuse its buffer the
moment the send returns; buffers at or above it ride the rendezvous
path — the message references the caller's memory, which must stay
unmutated until the matching receive has completed (the standard
zero-copy send contract).  Both disciplines are metered through the
``wire.copied_bytes.mpi`` / ``wire.referenced_bytes.mpi`` obs counters,
as is the delivery copy into the receiver's buffer.
"""

from __future__ import annotations

import functools
import pickle
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.mpi.coll import CollShared, CollStats, CollTuning, shared_state
from repro.mpi.ops import ReduceOp
from repro.mpi.request import Request
from repro.padicotm.abstraction.circuit import ANY_SOURCE as _CIRCUIT_ANY
from repro.padicotm.abstraction.circuit import Circuit
from repro.sim.kernel import SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.padicotm.runtime import PadicoProcess

#: wildcard receive selectors (mpi4py names)
ANY_SOURCE = -1
ANY_TAG = -1

#: CPU cost of the pickle serialisation copy, seconds per byte (~500 MB/s,
#: generous for a 1 GHz Pentium III but it keeps the pickle path visibly
#: slower than the zero-copy buffer path).
PICKLE_BYTE_COST = 2.0e-9

#: eager/rendezvous cutover for the buffer path: sends below this size
#: are staged through an eager copy (buffer reusable immediately);
#: larger sends reference the caller's buffer until the matching
#: receive completes — Madeleine's large-message rendezvous protocol.
RENDEZVOUS_THRESHOLD = 64 * 1024


class MpiError(RuntimeError):
    """MPI usage or transport error."""


def _collective(op: str) -> Callable:
    """Wrap a collective in an ``mpi.<op>`` observability span.

    Pure bookkeeping when a monitor is attached, nothing at all when
    none is — the decorated body runs unchanged either way.
    """
    def deco(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(self: "Comm", *args: Any, **kwargs: Any) -> Any:
            mon = self._monitor()
            if mon is None:
                return fn(self, *args, **kwargs)
            mon.on_span_start(f"mpi.{op}", cat="middleware",
                              rank=self._rank, size=self.size)
            try:
                return fn(self, *args, **kwargs)
            finally:
                mon.on_span_end(f"mpi.{op}")
        return wrapper
    return deco


class Status:
    """Receive status: envelope information of a matched message."""

    def __init__(self) -> None:
        self.source: int = ANY_SOURCE
        self.tag: int = ANY_TAG
        self.count: float = 0.0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> float:
        return self.count


class Comm:
    """An MPI communicator bound to one rank.

    Created through :func:`repro.mpi.world.create_world`; user code
    receives it already bound to the simulated thread of its rank.
    """

    def __init__(self, circuit: Circuit, group: list[int], rank: int,
                 context: str, tuning: CollTuning | None = None):
        self._circuit = circuit
        self._group = group           # group index -> circuit rank
        self._rank = rank             # my index within the group
        self._context = context
        self._coll_seq = 0
        self._proc: SimProcess | None = None
        self._tuning = CollTuning.resolve(tuning)
        self._shared_memo: CollShared | None = None

    # ------------------------------------------------------------------
    # binding & identity
    # ------------------------------------------------------------------
    def bind(self, proc: SimProcess) -> "Comm":
        """Attach this communicator to the simulated thread of its rank."""
        self._proc = proc
        return self

    @property
    def proc(self) -> SimProcess:
        if self._proc is None:
            raise MpiError("communicator not bound to a thread; "
                           "run ranks through repro.mpi.spmd()")
        return self._proc

    @property
    def kernel(self):
        return self._circuit.runtime.kernel

    @property
    def process(self) -> "PadicoProcess":
        return self._circuit.members[self._group[self._rank]]

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._group)

    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self.size

    def Get_processor_name(self) -> str:
        return self.process.host.name

    def Wtime(self) -> float:
        return self.kernel.now

    def _monitor(self) -> Any:
        return self._circuit.runtime.monitor

    def _stage(self, arr: np.ndarray) -> np.ndarray:
        """Eager/rendezvous protocol selection for an outgoing buffer.

        Below :data:`RENDEZVOUS_THRESHOLD` the buffer is copied
        (eager — the caller may scribble on it right away); at or above
        it the message references the caller's memory (rendezvous).
        Pure wall-clock behaviour: the virtual clock never charges for
        this copy either way."""
        mon = self._monitor()
        if arr.nbytes >= RENDEZVOUS_THRESHOLD:
            if mon is not None:
                mon.on_counter("wire.referenced_bytes.mpi",
                               float(arr.nbytes))
            return arr
        if mon is not None:
            mon.on_counter("wire.copied_bytes.mpi", float(arr.nbytes))
        return arr.copy()

    def _count_delivery(self, nbytes: int) -> None:
        """Meter the copy into the receiver's buffer."""
        mon = self._monitor()
        if mon is not None:
            mon.on_counter("wire.copied_bytes.mpi", float(nbytes))

    def __repr__(self) -> str:
        return (f"<Comm rank {self._rank}/{self.size} "
                f"ctx={self._context!r}>")

    # ------------------------------------------------------------------
    # envelope plumbing
    # ------------------------------------------------------------------
    def _send_body(self, proc: SimProcess, dest: int, tag: int, body: Any,
                   nbytes: float, context: str) -> None:
        if not 0 <= dest < self.size:
            raise MpiError(f"destination rank {dest} out of range "
                           f"(size {self.size})")
        self._circuit.send(proc, self._group[self._rank],
                           self._group[dest], (context, tag, body), nbytes)

    def _recv_body(self, proc: SimProcess, source: int, tag: int,
                   context: str) -> tuple[int, int, Any, float]:
        csrc = _CIRCUIT_ANY if source == ANY_SOURCE \
            else self._group[source]

        def where(payload) -> bool:
            ctx, mtag, _body = payload
            return ctx == context and (tag == ANY_TAG or mtag == tag)

        src, payload, n = self._circuit.recv(
            proc, self._group[self._rank], source=csrc, where=where)
        _ctx, mtag, body = payload
        return self._group.index(src), mtag, body, n

    def _p2p_context(self) -> str:
        return f"{self._context}|p2p"

    def _coll_context(self, opname: str) -> str:
        """A fresh context per collective call.

        SPMD discipline means every rank issues collectives in the same
        order, so per-rank sequence numbers agree."""
        ctx = f"{self._context}|coll{self._coll_seq}|{opname}"
        self._coll_seq += 1
        return ctx

    # ------------------------------------------------------------------
    # topology-aware routing (see repro.mpi.coll)
    # ------------------------------------------------------------------
    def _shared(self) -> CollShared:
        if self._shared_memo is None:
            self._shared_memo = shared_state(
                self._circuit, self._group, self._context, self._tuning)
        return self._shared_memo

    @property
    def coll_stats(self) -> CollStats:
        """Per-communicator WAN crossing/byte counters (shared across
        all ranks of this communicator; maintained in both modes)."""
        return self._shared().stats

    @property
    def coll_aware(self) -> bool:
        """True when collectives route through the site hierarchy."""
        return self._shared().active

    def _xsend(self, proc: SimProcess, dest: int, tag: int, body: Any,
               nbytes: float, ctx: str, op: str,
               local: bool = False) -> None:
        """One collective tree edge.

        Cross-site edges are counted against the communicator's WAN
        stats (both modes — the flat-vs-aware comparison needs the flat
        numbers too).  With ``local=True`` (hierarchy code only, where
        the matching receive agrees) an intra-site edge is routed over
        the per-site subcircuit instead of the group circuit."""
        shared = self._shared()
        sm = shared.sitemap
        if sm.multi_site:
            if sm.site_of[self._rank] != sm.site_of[dest]:
                shared.stats.count(op, nbytes)
                mon = self._monitor()
                if mon is not None:
                    mon.on_counter("mpi.wan_crossings", 1.0)
                    mon.on_counter(f"mpi.wan_bytes.{op}", float(nbytes))
            elif local and shared.active:
                sub, index = shared.site_channel(sm.site_of[self._rank])
                sub.send(proc, index[self._rank], index[dest],
                         (ctx, tag, body), nbytes)
                return
        self._send_body(proc, dest, tag, body, nbytes, ctx)

    def _xrecv(self, proc: SimProcess, source: int, tag: int, ctx: str,
               local: bool = False) -> tuple[int, int, Any, float]:
        """Receive one collective tree edge; routing mirrors
        :meth:`_xsend` (``local=True`` with ``ANY_SOURCE`` matches any
        same-site sender on the subcircuit)."""
        shared = self._shared()
        if local and shared.active:
            si = shared.sitemap.site_of[self._rank]
            sub, index = shared.site_channel(si)
            csrc = _CIRCUIT_ANY if source == ANY_SOURCE else index[source]

            def where(payload) -> bool:
                mctx, mtag, _body = payload
                return mctx == ctx and (tag == ANY_TAG or mtag == tag)

            src, payload, n = sub.recv(proc, index[self._rank],
                                       source=csrc, where=where)
            _ctx, mtag, body = payload
            return shared.sitemap.members[si][src], mtag, body, n
        return self._recv_body(proc, source, tag, ctx)

    # ------------------------------------------------------------------
    # point-to-point: pickle path (lowercase)
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send of a pickled Python object."""
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        n = len(data)
        self.proc.sleep(n * PICKLE_BYTE_COST)
        self._send_body(self.proc, dest, tag, ("p", data), n,
                        self._p2p_context())

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
             status: Status | None = None) -> Any:
        """Blocking receive of a pickled Python object."""
        src, mtag, body, n = self._recv_body(self.proc, source, tag,
                                             self._p2p_context())
        obj = self._decode(self.proc, body, n)
        if status is not None:
            status.source, status.tag, status.count = src, mtag, n
        return obj

    def _decode(self, proc: SimProcess, body: tuple[str, Any],
                nbytes: float) -> Any:
        kind, data = body
        if kind == "p":
            proc.sleep(nbytes * PICKLE_BYTE_COST)
            return pickle.loads(data)
        return data

    # ------------------------------------------------------------------
    # point-to-point: buffer path (uppercase, zero-copy)
    # ------------------------------------------------------------------
    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Blocking send of a numpy buffer on the zero-copy path.

        Small sends are eager (the buffer is reusable immediately);
        sends of :data:`RENDEZVOUS_THRESHOLD` bytes or more reference
        the caller's buffer, which must stay unmutated until the
        receiver has completed the matching receive."""
        arr = np.ascontiguousarray(buf)
        self._send_body(self.proc, dest, tag, ("b", self._stage(arr)),
                        arr.nbytes, self._p2p_context())

    def Recv(self, buf: np.ndarray, source: int = ANY_SOURCE,
             tag: int = ANY_TAG, status: Status | None = None) -> None:
        """Blocking receive into a caller-provided numpy buffer."""
        src, mtag, body, n = self._recv_body(self.proc, source, tag,
                                             self._p2p_context())
        kind, data = body
        if kind != "b":
            raise MpiError("Recv matched a pickled message; use recv()")
        out = np.asarray(buf)
        if out.nbytes != data.nbytes:
            raise MpiError(f"receive buffer is {out.nbytes} bytes, "
                           f"message is {data.nbytes}")
        np.copyto(out, data.reshape(out.shape))
        self._count_delivery(out.nbytes)
        if status is not None:
            status.source, status.tag, status.count = src, mtag, n

    # ------------------------------------------------------------------
    # nonblocking
    # ------------------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking pickled send; the buffer is captured immediately."""
        req = Request(self)
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        n = len(data)
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                p.sleep(n * PICKLE_BYTE_COST)
                self._send_body(p, dest, tag, ("p", data), n, ctx)
            except Exception as exc:  # noqa: BLE001 - surfaced via request
                req._complete(error=exc)
            else:
                req._complete()

        self.process.spawn(worker, name="mpi-isend", daemon=True)
        return req

    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer send."""
        req = Request(self)
        # MPI nonblocking semantics already forbid touching the buffer
        # before wait(), so the rendezvous reference is always safe here
        arr = self._stage(np.ascontiguousarray(buf))
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                self._send_body(p, dest, tag, ("b", arr), arr.nbytes, ctx)
            except Exception as exc:  # noqa: BLE001
                req._complete(error=exc)
            else:
                req._complete()

        self.process.spawn(worker, name="mpi-Isend", daemon=True)
        return req

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking pickled receive; ``wait()`` returns the object."""
        req = Request(self)
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                _src, _t, body, n = self._recv_body(p, source, tag, ctx)
                obj = self._decode(p, body, n)
            except Exception as exc:  # noqa: BLE001
                req._complete(error=exc)
            else:
                req._complete(obj)

        self.process.spawn(worker, name="mpi-irecv", daemon=True)
        return req

    def Irecv(self, buf: np.ndarray, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking buffer receive into ``buf``."""
        req = Request(self)
        ctx = self._p2p_context()

        def worker(p: SimProcess) -> None:
            try:
                _src, _t, body, _n = self._recv_body(p, source, tag, ctx)
                kind, data = body
                if kind != "b":
                    raise MpiError("Irecv matched a pickled message")
                out = np.asarray(buf)
                np.copyto(out, data.reshape(out.shape))
                self._count_delivery(out.nbytes)
            except Exception as exc:  # noqa: BLE001
                req._complete(error=exc)
            else:
                req._complete()

        self.process.spawn(worker, name="mpi-Irecv", daemon=True)
        return req

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free by construction)."""
        req = self.isend(obj, dest, sendtag)
        got = self.recv(source, recvtag)
        req.wait()
        return got

    @_collective("Scatterv")
    def Scatterv(self, sendbuf: np.ndarray | None,
                 counts: Sequence[int] | None, recvbuf: np.ndarray,
                 root: int = 0) -> None:
        """Variable-count scatter of a numpy buffer.

        ``counts[i]`` elements go to rank i; displacements are the
        running sum (contiguous layout, the common case)."""
        ctx = self._coll_context("Scatterv")
        out = np.asarray(recvbuf)
        if self._rank == root:
            if sendbuf is None or counts is None or \
                    len(counts) != self.size:
                raise MpiError(f"root must supply sendbuf and exactly "
                               f"{self.size} counts")
            flat = np.ascontiguousarray(sendbuf).ravel()
            if sum(counts) != flat.size:
                raise MpiError(f"counts sum to {sum(counts)} but sendbuf "
                               f"has {flat.size} elements")
            offset = 0
            my_part = None
            for dst, count in enumerate(counts):
                part = flat[offset:offset + count]
                offset += count
                if dst == root:
                    my_part = part.copy()
                else:
                    self._xsend(self.proc, dst, 9,
                                ("b", self._stage(part)),
                                part.nbytes, ctx, "Scatterv")
            np.copyto(out, my_part.reshape(out.shape))
        else:
            _s, _t, body, _n = self._recv_body(self.proc, root, 9, ctx)
            np.copyto(out, body[1].reshape(out.shape))
            self._count_delivery(out.nbytes)

    @_collective("Gatherv")
    def Gatherv(self, sendbuf: np.ndarray,
                recvbuf: np.ndarray | None,
                counts: Sequence[int] | None, root: int = 0) -> None:
        """Variable-count gather into a contiguous buffer at ``root``."""
        ctx = self._coll_context("Gatherv")
        part = np.ascontiguousarray(sendbuf).ravel()
        if self._rank == root:
            if recvbuf is None or counts is None or \
                    len(counts) != self.size:
                raise MpiError(f"root must supply recvbuf and exactly "
                               f"{self.size} counts")
            flat = np.asarray(recvbuf).ravel()
            if sum(counts) != flat.size:
                raise MpiError(f"counts sum to {sum(counts)} but recvbuf "
                               f"has {flat.size} elements")
            offsets = np.concatenate(([0], np.cumsum(counts)))
            flat[offsets[root]:offsets[root + 1]] = part
            for _ in range(self.size - 1):
                src, _t, body, _n = self._recv_body(self.proc, ANY_SOURCE,
                                                    10, ctx)
                flat[offsets[src]:offsets[src + 1]] = body[1]
                self._count_delivery(int(body[1].nbytes))
        else:
            self._xsend(self.proc, root, 10, ("b", self._stage(part)),
                        part.nbytes, ctx, "Gatherv")

    # ------------------------------------------------------------------
    # probing
    # ------------------------------------------------------------------
    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG,
              status: Status | None = None) -> None:
        """Block until a matching message is pending, without receiving
        it (MPI_Probe); fills ``status`` with the pending envelope."""
        ctx = self._p2p_context()
        csrc = _CIRCUIT_ANY if source == ANY_SOURCE else self._group[source]
        src, payload, n = self._circuit.wait_message(
            self.proc, self._group[self._rank], source=csrc,
            where=lambda p: p[0] == ctx and
            (tag == ANY_TAG or p[1] == tag))
        if status is not None:
            status.source = self._group.index(src)
            status.tag = payload[1]
            status.count = n

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Non-blocking check for a matching pending message."""
        ctx = self._p2p_context()
        csrc = _CIRCUIT_ANY if source == ANY_SOURCE else self._group[source]
        return self._circuit.poll(
            self._group[self._rank], source=csrc,
            where=lambda p: p[0] == ctx and (tag == ANY_TAG or p[1] == tag))

    # ------------------------------------------------------------------
    # collective tree primitives
    #
    # The _seq_* helpers run a binomial schedule over an explicit
    # participant list (global ranks) rooted at ``parts[rootpos]`` —
    # the hierarchy uses them twice per collective: once over a site's
    # members (``local=True``, subcircuit routing) and once over the
    # per-site leaders (WAN edges, counted).  The classic whole-group
    # _tree_* helpers below remain the flat path.
    # ------------------------------------------------------------------
    def _seq_bcast(self, parts: list[int], rootpos: int, body: Any,
                   nbytes: float, tag: int, ctx: str, op: str,
                   local: bool) -> tuple[Any, float]:
        k = len(parts)
        v = (parts.index(self._rank) - rootpos) % k
        mask = 1
        while mask < k:
            if v < mask:
                if v + mask < k:
                    dst = parts[(v + mask + rootpos) % k]
                    self._xsend(self.proc, dst, tag, body, nbytes, ctx,
                                op, local=local)
            elif v < mask << 1:
                src = parts[(v - mask + rootpos) % k]
                _s, _t, body, nbytes = self._xrecv(self.proc, src, tag,
                                                   ctx, local=local)
            mask <<= 1
        return body, nbytes

    def _seq_gather_signal(self, parts: list[int], rootpos: int, tag: int,
                           ctx: str, op: str, local: bool) -> None:
        k = len(parts)
        v = (parts.index(self._rank) - rootpos) % k
        mask = 1
        while mask < k:
            if v & mask:
                dst = parts[(v - mask + rootpos) % k]
                self._xsend(self.proc, dst, tag, ("p", b""), 0, ctx, op,
                            local=local)
                break
            if v + mask < k:
                src = parts[(v + mask + rootpos) % k]
                self._xrecv(self.proc, src, tag, ctx, local=local)
            mask <<= 1

    def _seq_reduce(self, parts: list[int], rootpos: int, value: Any,
                    redop: ReduceOp, tag: int, ctx: str, op: str,
                    local: bool, buffered: bool) -> Any:
        """Binomial reduction over ``parts``; combines child-first so
        operands associate in participant order (result meaningful only
        at ``parts[rootpos]``)."""
        k = len(parts)
        v = (parts.index(self._rank) - rootpos) % k
        acc = value
        mask = 1
        while mask < k:
            if v & mask:
                dst = parts[(v - mask + rootpos) % k]
                if buffered:
                    self._xsend(self.proc, dst, tag, ("b", acc),
                                acc.nbytes, ctx, op, local=local)
                else:
                    data = pickle.dumps(acc,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    self.proc.sleep(len(data) * PICKLE_BYTE_COST)
                    self._xsend(self.proc, dst, tag, ("p", data),
                                len(data), ctx, op, local=local)
                break
            if v + mask < k:
                src = parts[(v + mask + rootpos) % k]
                _s, _t, body, n = self._xrecv(self.proc, src, tag, ctx,
                                              local=local)
                contrib = body[1] if buffered \
                    else self._decode(self.proc, body, n)
                acc = redop(acc, contrib)
            mask <<= 1
        return acc

    def _hier(self, root: int) -> tuple[Any, int, int, bool] | None:
        """Hierarchy context for a collective rooted at ``root``, or
        None when the flat path applies: ``(sitemap, my site, my
        leader, am-I-leader)``."""
        shared = self._shared()
        if not shared.active:
            return None
        sm = shared.sitemap
        si = sm.site_of[self._rank]
        leader = sm.leader(si, root)
        return sm, si, leader, self._rank == leader

    # ------------------------------------------------------------------
    # collectives
    # ------------------------------------------------------------------
    @_collective("barrier")
    def barrier(self) -> None:
        """Binomial gather-to-0 then binomial release (MPICH style).

        2·ceil(log2(size)) message hops on the critical path — the term
        the paper's Figure-8 latency column grows by with node count.
        On a multi-site group the aware path fences each site under its
        leader first, then runs both phases leader-only over the WAN:
        2·(sites−1) crossings instead of O(size·log size).
        """
        ctx = self._coll_context("barrier")
        hier = self._hier(0)
        if hier is None:
            self._tree_gather_signal(ctx, "barrier")
            self._tree_bcast(("p", b""), 0.0, 0, ctx, "barrier")
            return
        sm, si, leader, is_leader = hier
        members = sm.members[si]
        lpos = members.index(leader)
        self._seq_gather_signal(members, lpos, 22, ctx, "barrier",
                                local=True)
        if is_leader:
            self._seq_gather_signal(sm.leaders(0), sm.site_of[0], 23,
                                    ctx, "barrier", local=False)
            self._seq_bcast(sm.leaders(0), sm.site_of[0], ("p", b""),
                            0.0, 24, ctx, "barrier", local=False)
        self._seq_bcast(members, lpos, ("p", b""), 0.0, 25, ctx,
                        "barrier", local=True)

    Barrier = barrier

    def _tree_gather_signal(self, ctx: str, op: str) -> None:
        size, rank = self.size, self._rank
        mask = 1
        while mask < size:
            if rank & mask:
                self._xsend(self.proc, rank - mask, 0, ("p", b""), 0,
                            ctx, op)
                break
            if rank + mask < size:
                self._recv_body(self.proc, rank + mask, 0, ctx)
            mask <<= 1

    @_collective("bcast")
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast of a pickled object (leader-relayed
        on a multi-site group: exactly sites−1 WAN crossings)."""
        ctx = self._coll_context("bcast")
        if self._rank == root:
            data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
            self.proc.sleep(len(data) * PICKLE_BYTE_COST)
            body: tuple[str, Any] = ("p", data)
            n = float(len(data))
        else:
            body, n = None, 0.0  # type: ignore[assignment]
        body, n = self._any_bcast(body, n, root, ctx, "bcast")
        _kind, data = body
        self.proc.sleep(n * PICKLE_BYTE_COST)
        return pickle.loads(data)

    @_collective("Bcast")
    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        """Binomial-tree broadcast of a numpy buffer, in place."""
        ctx = self._coll_context("Bcast")
        out = np.asarray(buf)
        if self._rank == root:
            # rendezvous contract for large broadcasts: the root buffer
            # must stay unmutated until every rank's delivery copy —
            # tree forwarding (leaders included) passes the same
            # reference down unchanged, so the hierarchy stays
            # reference-only end-to-end
            body: tuple[str, Any] = \
                ("b", self._stage(np.ascontiguousarray(out)))
            n = float(out.nbytes)
        else:
            body, n = None, 0.0  # type: ignore[assignment]
        body, _n = self._any_bcast(body, n, root, ctx, "Bcast")
        if self._rank != root:
            np.copyto(out, body[1].reshape(out.shape))
            self._count_delivery(out.nbytes)

    def _any_bcast(self, body: Any, nbytes: float, root: int, ctx: str,
                   op: str) -> tuple[Any, float]:
        """Route a broadcast body: flat whole-group tree, or WAN tree
        over leaders followed by intra-site trees."""
        hier = self._hier(root)
        if hier is None:
            return self._tree_bcast(body, nbytes, root, ctx, op)
        sm, si, leader, is_leader = hier
        if is_leader:
            body, nbytes = self._seq_bcast(
                sm.leaders(root), sm.site_of[root], body, nbytes, 20,
                ctx, op, local=False)
        members = sm.members[si]
        return self._seq_bcast(members, members.index(leader), body,
                               nbytes, 21, ctx, op, local=True)

    def _tree_bcast(self, body: Any, nbytes: float, root: int,
                    ctx: str, op: str) -> tuple[Any, float]:
        """Binomial-tree broadcast: each node receives once (from its
        parent in the virtual-rank tree) then forwards down."""
        size = self.size
        vrank = (self._rank - root) % size
        mask = 1
        while mask < size:
            if vrank < mask:
                if vrank + mask < size:
                    dst = (vrank + mask + root) % size
                    self._xsend(self.proc, dst, 2, body, nbytes, ctx, op)
            elif vrank < mask << 1:
                src = (vrank - mask + root) % size
                _s, _t, body, nbytes = self._recv_body(self.proc, src, 2, ctx)
            mask <<= 1
        return body, nbytes

    @_collective("gather")
    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather pickled objects to ``root`` (rank order preserved).

        Aware path: raw pickled bodies are collected under each site
        leader first, then forwarded to the root as one bundle per
        remote site (sites−1 WAN crossings, each carrying only that
        site's bytes); the root alone pays the unpickle cost, once per
        contribution — exactly the flat path's accounting."""
        ctx = self._coll_context("gather")
        hier = self._hier(root)
        if self._rank == root:
            out: list[Any] = [None] * self.size
            out[root] = obj
            if hier is None:
                for _ in range(self.size - 1):
                    src, _t, body, n = self._recv_body(
                        self.proc, ANY_SOURCE, 3, ctx)
                    out[src] = self._decode(self.proc, body, n)
                return out
            sm, si, _leader, _is_leader = hier
            for _ in range(len(sm.members[si]) - 1):
                src, _t, body, n = self._xrecv(self.proc, ANY_SOURCE, 26,
                                               ctx, local=True)
                out[src] = self._decode(self.proc, body, n)
            for _ in range(sm.nsites - 1):
                _s, _t, body, _n = self._recv_body(self.proc, ANY_SOURCE,
                                                   27, ctx)
                for src, data in body[1]:
                    self.proc.sleep(len(data) * PICKLE_BYTE_COST)
                    out[src] = pickle.loads(data)
            return out
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.proc.sleep(len(data) * PICKLE_BYTE_COST)
        if hier is None:
            self._xsend(self.proc, root, 3, ("p", data), len(data), ctx,
                        "gather")
            return None
        sm, si, leader, is_leader = hier
        if not is_leader:
            self._xsend(self.proc, leader, 26, ("p", data), len(data),
                        ctx, "gather", local=True)
            return None
        entries = [(self._rank, data)]
        for _ in range(len(sm.members[si]) - 1):
            src, _t, body, _n = self._xrecv(self.proc, ANY_SOURCE, 26,
                                            ctx, local=True)
            entries.append((src, body[1]))
        entries.sort()
        total = sum(len(d) for _r, d in entries)
        self._xsend(self.proc, root, 27, ("rl", entries), total, ctx,
                    "gather")
        return None

    @_collective("scatter")
    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one object per rank from ``root``.

        The root pickles every part up front and charges the
        serialisation cost once (the per-iteration sleep used to
        stretch the send loop); the aware path then ships one bundle
        per remote site to its leader, which fans out locally."""
        if self._rank == root and (objs is None or len(objs) != self.size):
            # reject before allocating the collective context so a failed
            # call leaves the context sequence aligned across ranks
            raise MpiError(f"scatter needs exactly {self.size} items "
                           f"at the root")
        ctx = self._coll_context("scatter")
        hier = self._hier(root)
        if self._rank == root:
            parts = {dst: pickle.dumps(item,
                                       protocol=pickle.HIGHEST_PROTOCOL)
                     for dst, item in enumerate(objs) if dst != root}
            self.proc.sleep(
                sum(len(d) for d in parts.values()) * PICKLE_BYTE_COST)
            if hier is None:
                for dst in sorted(parts):
                    data = parts[dst]
                    self._xsend(self.proc, dst, 4, ("p", data),
                                len(data), ctx, "scatter")
                return objs[root]
            sm, si, _leader, _is_leader = hier
            for s in range(sm.nsites):
                if s == si:
                    for dst in sm.members[s]:
                        if dst != root:
                            self._xsend(self.proc, dst, 29,
                                        ("p", parts[dst]),
                                        len(parts[dst]), ctx, "scatter",
                                        local=True)
                    continue
                bundle = [(dst, parts[dst]) for dst in sm.members[s]]
                total = sum(len(d) for _r, d in bundle)
                self._xsend(self.proc, sm.leader(s, root), 28,
                            ("rl", bundle), total, ctx, "scatter")
            return objs[root]
        if hier is None:
            _s, _t, body, n = self._recv_body(self.proc, root, 4, ctx)
            return self._decode(self.proc, body, n)
        sm, si, leader, is_leader = hier
        if is_leader:
            _s, _t, body, _n = self._recv_body(self.proc, root, 28, ctx)
            mine = None
            for dst, data in body[1]:
                if dst == self._rank:
                    mine = data
                else:
                    self._xsend(self.proc, dst, 29, ("p", data),
                                len(data), ctx, "scatter", local=True)
            self.proc.sleep(len(mine) * PICKLE_BYTE_COST)
            return pickle.loads(mine)
        src = root if si == sm.site_of[root] else leader
        _s, _t, body, n = self._xrecv(self.proc, src, 29, ctx, local=True)
        return self._decode(self.proc, body, n)

    @_collective("allgather")
    def allgather(self, obj: Any) -> list[Any]:
        """Gather raw pickled bodies to rank 0, broadcast the bundle,
        decode once per entry on every rank.

        This fixes the historical double charge: the old gather→bcast
        composition unpickled everything at rank 0 and re-pickled the
        assembled list, paying ``PICKLE_BYTE_COST`` twice for every
        byte.  Bytes are now serialised once at their source and
        deserialised once per consumer, in both modes."""
        ctx = self._coll_context("allgather")
        hier = self._hier(0)
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        self.proc.sleep(len(data) * PICKLE_BYTE_COST)
        entries: list[tuple[int, bytes]] | None = None
        if self._rank == 0:
            entries = [(0, data)]
            if hier is None:
                for _ in range(self.size - 1):
                    src, _t, body, _n = self._recv_body(
                        self.proc, ANY_SOURCE, 3, ctx)
                    entries.append((src, body[1]))
            else:
                sm, si, _leader, _is_leader = hier
                for _ in range(len(sm.members[si]) - 1):
                    src, _t, body, _n = self._xrecv(self.proc, ANY_SOURCE,
                                                    26, ctx, local=True)
                    entries.append((src, body[1]))
                for _ in range(sm.nsites - 1):
                    _s, _t, body, _n = self._recv_body(
                        self.proc, ANY_SOURCE, 27, ctx)
                    entries.extend(body[1])
            entries.sort()
        elif hier is None:
            self._xsend(self.proc, 0, 3, ("p", data), len(data), ctx,
                        "allgather")
        else:
            sm, si, leader, is_leader = hier
            if not is_leader:
                self._xsend(self.proc, leader, 26, ("p", data),
                            len(data), ctx, "allgather", local=True)
            else:
                site_entries = [(self._rank, data)]
                for _ in range(len(sm.members[si]) - 1):
                    src, _t, body, _n = self._xrecv(self.proc, ANY_SOURCE,
                                                    26, ctx, local=True)
                    site_entries.append((src, body[1]))
                site_entries.sort()
                total = sum(len(d) for _r, d in site_entries)
                self._xsend(self.proc, 0, 27, ("rl", site_entries),
                            total, ctx, "allgather")
        nbytes = float(sum(len(d) for _r, d in entries)) \
            if entries is not None else 0.0
        body = ("rl", entries) if entries is not None else None
        body, _n = self._any_bcast(body, nbytes, 0, ctx, "allgather")
        out: list[Any] = [None] * self.size
        for src, raw in body[1]:
            self.proc.sleep(len(raw) * PICKLE_BYTE_COST)
            out[src] = pickle.loads(raw)
        return out

    @_collective("alltoall")
    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        """Personalised all-to-all exchange.

        Every payload is pickled up front and the serialisation cost
        charged once (hoisted out of the send loop).  The aware path
        aggregates per-destination-site payloads through the two
        leaders (source leader merges its site's traffic, destination
        leader fans out), collapsing the flat path's
        size·(size − site size) WAN crossings to sites·(sites − 1);
        per-site aggregates below ``CollTuning.alltoall_threshold``
        skip the relay and travel directly, announced through the
        leader so receive counts stay deterministic."""
        if len(objs) != self.size:
            raise MpiError(f"alltoall needs exactly {self.size} items")
        ctx = self._coll_context("alltoall")
        out: list[Any] = [None] * self.size
        out[self._rank] = objs[self._rank]
        shifts = [(self._rank + s) % self.size
                  for s in range(1, self.size)]
        parts = {dst: pickle.dumps(objs[dst],
                                   protocol=pickle.HIGHEST_PROTOCOL)
                 for dst in shifts}
        self.proc.sleep(
            sum(len(d) for d in parts.values()) * PICKLE_BYTE_COST)
        hier = self._hier(0)
        if hier is None:
            for dst in shifts:
                self._xsend(self.proc, dst, 5, ("p", parts[dst]),
                            len(parts[dst]), ctx, "alltoall")
            for _ in range(self.size - 1):
                src, _t, body, n = self._recv_body(self.proc, ANY_SOURCE,
                                                   5, ctx)
                out[src] = self._decode(self.proc, body, n)
            return out
        sm, si, leader, is_leader = hier
        members = sm.members[si]
        threshold = self._tuning.alltoall_threshold
        for dst in members:
            if dst != self._rank:
                self._xsend(self.proc, dst, 5, ("p", parts[dst]),
                            len(parts[dst]), ctx, "alltoall", local=True)
        bundles: list[tuple[int, list[tuple[int, bytes]]]] = []
        directs: list[tuple[int, list[int]]] = []
        for s in range(sm.nsites):
            if s == si:
                continue
            sub = [(dst, parts[dst]) for dst in sm.members[s]]
            if sum(len(d) for _r, d in sub) >= threshold:
                bundles.append((s, sub))
            else:
                directs.append((s, [dst for dst, _d in sub]))
                for dst, data in sub:
                    self._xsend(self.proc, dst, 5, ("p", data),
                                len(data), ctx, "alltoall")
        up = (self._rank, bundles, directs)
        if not is_leader:
            upn = sum(len(d) for _s, sub in bundles for _r, d in sub)
            self._xsend(self.proc, leader, 60, ("a2a", up), upn, ctx,
                        "alltoall", local=True)
            _s, _t, body, _n = self._xrecv(self.proc, leader, 62, ctx,
                                           local=True)
            my_entries, my_ndirect = body[1]
        else:
            ups = [up]
            for _ in range(len(members) - 1):
                _s, _t, body, _n = self._xrecv(self.proc, ANY_SOURCE, 60,
                                               ctx, local=True)
                ups.append(body[1])
            ups.sort(key=lambda u: u[0])
            for s in range(sm.nsites):
                if s == si:
                    continue
                entries = sorted(
                    (src, dst, data)
                    for src, ubundles, _ud in ups
                    for bs, sub in ubundles if bs == s
                    for dst, data in sub)
                dcounts: dict[int, int] = {}
                for _src, _ub, udirects in ups:
                    for ds, dlist in udirects:
                        if ds == s:
                            for dst in dlist:
                                dcounts[dst] = dcounts.get(dst, 0) + 1
                total = sum(len(d) for _s2, _d2, d in entries)
                self._xsend(self.proc, sm.leader(s, 0), 61,
                            ("a2a", (entries, sorted(dcounts.items()))),
                            total, ctx, "alltoall")
            deliveries: dict[int, tuple[list, int]] = \
                {m: ([], 0) for m in members}
            for _ in range(sm.nsites - 1):
                _s, _t, body, _n = self._recv_body(self.proc, ANY_SOURCE,
                                                   61, ctx)
                entries, dcount_items = body[1]
                for src, dst, data in entries:
                    deliveries[dst][0].append((src, data))
                for dst, c in dcount_items:
                    ent, n0 = deliveries[dst]
                    deliveries[dst] = (ent, n0 + c)
            my_entries, my_ndirect = deliveries[self._rank]
            my_entries.sort()
            for m in members:
                if m == self._rank:
                    continue
                ent, ndir = deliveries[m]
                ent.sort()
                total = sum(len(d) for _r, d in ent)
                self._xsend(self.proc, m, 62, ("a2a", (ent, ndir)),
                            total, ctx, "alltoall", local=True)
        for _ in range(len(members) - 1):
            src, _t, body, n = self._xrecv(self.proc, ANY_SOURCE, 5, ctx,
                                           local=True)
            out[src] = self._decode(self.proc, body, n)
        for src, data in my_entries:
            self.proc.sleep(len(data) * PICKLE_BYTE_COST)
            out[src] = pickle.loads(data)
        for _ in range(my_ndirect):
            src, _t, body, n = self._recv_body(self.proc, ANY_SOURCE, 5,
                                               ctx)
            out[src] = self._decode(self.proc, body, n)
        return out

    def _hier_reduce(self, root: int) -> tuple[Any, int, int, bool] | None:
        """Hierarchy context for a reduction, or None for the flat
        path.

        Beyond :meth:`_hier`, a reduction engages the hierarchy only
        when sites partition the ranks into contiguous blocks and the
        root leads its block: the flat tree combines operands
        child-first in (root-rotated) rank order, and only then does
        site-local pre-reduction preserve that operand order for
        non-commutative ops (associativity is still assumed, as in any
        tree reduction)."""
        hier = self._hier(root)
        if hier is None:
            return None
        sm = hier[0]
        if not sm.contiguous or sm.members[sm.site_of[root]][0] != root:
            return None
        return hier

    @_collective("reduce")
    def reduce(self, obj: Any, op: ReduceOp, root: int = 0) -> Any:
        """Binomial-tree reduction of pickled objects towards ``root``.

        Aware path (contiguous site blocks, block-leading root): each
        site pre-reduces under its leader, then the site partials
        combine over a leaders-only WAN tree — sites−1 crossings, each
        carrying one partial."""
        ctx = self._coll_context("reduce")
        hier = self._hier_reduce(root)
        if hier is None:
            size = self.size
            vrank = (self._rank - root) % size
            acc = obj
            mask = 1
            while mask < size:
                if vrank & mask:
                    dst = (vrank - mask + root) % size
                    data = pickle.dumps(acc,
                                        protocol=pickle.HIGHEST_PROTOCOL)
                    self.proc.sleep(len(data) * PICKLE_BYTE_COST)
                    self._xsend(self.proc, dst, 6, ("p", data),
                                len(data), ctx, "reduce")
                    break
                if vrank + mask < size:
                    src = (vrank + mask + root) % size
                    _s, _t, body, n = self._recv_body(self.proc, src, 6,
                                                      ctx)
                    contrib = self._decode(self.proc, body, n)
                    # combine in child-first order so non-commutative
                    # ops see operands in rank order
                    acc = op(acc, contrib)
                mask <<= 1
            return acc if self._rank == root else None
        sm, si, leader, is_leader = hier
        members = sm.members[si]
        acc = self._seq_reduce(members, members.index(leader), obj, op,
                               30, ctx, "reduce", local=True,
                               buffered=False)
        if is_leader:
            acc = self._seq_reduce(sm.leaders(root), sm.site_of[root],
                                   acc, op, 31, ctx, "reduce",
                                   local=False, buffered=False)
        return acc if self._rank == root else None

    @_collective("allreduce")
    def allreduce(self, obj: Any, op: ReduceOp) -> Any:
        """Reduce to rank 0, then broadcast the result (each leg
        hierarchical on a multi-site group)."""
        reduced = self.reduce(obj, op, root=0)
        return self.bcast(reduced, root=0)

    @_collective("scan")
    def scan(self, obj: Any, op: ReduceOp) -> Any:
        """Inclusive prefix reduction (linear chain)."""
        ctx = self._coll_context("scan")
        acc = obj
        if self._rank > 0:
            _s, _t, body, n = self._recv_body(self.proc, self._rank - 1,
                                              7, ctx)
            prefix = self._decode(self.proc, body, n)
            acc = op(prefix, obj)
        if self._rank + 1 < self.size:
            data = pickle.dumps(acc, protocol=pickle.HIGHEST_PROTOCOL)
            self.proc.sleep(len(data) * PICKLE_BYTE_COST)
            self._xsend(self.proc, self._rank + 1, 7, ("p", data),
                        len(data), ctx, "scan")
        return acc

    @_collective("Reduce")
    def Reduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray | None,
               op: ReduceOp, root: int = 0) -> None:
        """Buffer-path binomial reduction (no pickle cost).

        The aware path mirrors :meth:`reduce`; partials stay on the
        zero-copy path throughout (the initial accumulator is staged
        once, op results are fresh arrays forwarded by reference)."""
        ctx = self._coll_context("Reduce")
        hier = self._hier_reduce(root)
        # ops are functional (no in-place accumulation), so the initial
        # accumulator can reference sendbuf on the rendezvous path
        acc = self._stage(np.ascontiguousarray(sendbuf))
        if hier is None:
            size = self.size
            vrank = (self._rank - root) % size
            mask = 1
            while mask < size:
                if vrank & mask:
                    dst = (vrank - mask + root) % size
                    self._xsend(self.proc, dst, 8, ("b", acc),
                                acc.nbytes, ctx, "Reduce")
                    break
                if vrank + mask < size:
                    src = (vrank + mask + root) % size
                    _s, _t, body, _n = self._recv_body(self.proc, src, 8,
                                                       ctx)
                    acc = op(acc, body[1])
                mask <<= 1
        else:
            sm, si, leader, is_leader = hier
            members = sm.members[si]
            acc = self._seq_reduce(members, members.index(leader), acc,
                                   op, 32, ctx, "Reduce", local=True,
                                   buffered=True)
            if is_leader:
                acc = self._seq_reduce(sm.leaders(root),
                                       sm.site_of[root], acc, op, 33,
                                       ctx, "Reduce", local=False,
                                       buffered=True)
        if self._rank == root:
            if recvbuf is None:
                raise MpiError("root must supply recvbuf")
            out = np.asarray(recvbuf)
            np.copyto(out, acc.reshape(out.shape))
            self._count_delivery(out.nbytes)

    @_collective("Allreduce")
    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op: ReduceOp) -> None:
        """Buffer-path reduce to rank 0 followed by broadcast."""
        out = np.asarray(recvbuf)
        if self._rank == 0:
            self.Reduce(sendbuf, out, op, root=0)
        else:
            self.Reduce(sendbuf, None, op, root=0)
        self.Bcast(out, root=0)

    # ------------------------------------------------------------------
    # communicator management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int = 0) -> "Comm | None":
        """Partition the communicator by ``color``; order ranks by
        ``(key, old rank)``.  Returns None for ``color=None``
        (MPI_UNDEFINED)."""
        triples = self.allgather((color, key, self._rank))
        seq = self._coll_seq  # advanced identically on every rank
        if color is None:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color)
        group = [self._group[r] for _k, r in members]
        my_index = [r for _k, r in members].index(self._rank)
        ctx = f"{self._context}/split{seq}:{color}"
        sub = Comm(self._circuit, group, my_index, ctx,
                   tuning=self._tuning)
        sub.bind(self.proc)
        return sub

    def Create_cart(self, dims, periods=None) -> "Comm":
        """Cartesian topology view (see :mod:`repro.mpi.cartesian`)."""
        from repro.mpi.cartesian import create_cart

        return create_cart(self, dims, periods)

    def dup(self) -> "Comm":
        """Duplicate with a fresh context (isolated traffic)."""
        triples = self.allgather(0)  # synchronise context generation
        del triples
        ctx = f"{self._context}/dup{self._coll_seq}"
        dup = Comm(self._circuit, list(self._group), self._rank, ctx,
                   tuning=self._tuning)
        dup.bind(self.proc)
        return dup
