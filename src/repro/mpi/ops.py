"""MPI reduction operations.

Each op is a binary callable working on scalars, sequences and numpy
arrays (elementwise via numpy when both operands are arrays)."""

from __future__ import annotations

from typing import Any, Callable

import numpy as np


class ReduceOp:
    """A named, associative binary reduction operator."""

    def __init__(self, name: str, scalar: Callable[[Any, Any], Any],
                 ufunc: np.ufunc | None = None):
        self.name = name
        self._scalar = scalar
        self._ufunc = ufunc

    def __call__(self, a: Any, b: Any) -> Any:
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            if self._ufunc is None:
                raise TypeError(f"{self.name} is not defined on arrays")
            return self._ufunc(a, b)
        return self._scalar(a, b)

    def __repr__(self) -> str:
        return f"<ReduceOp {self.name}>"


SUM = ReduceOp("SUM", lambda a, b: a + b, np.add)
PROD = ReduceOp("PROD", lambda a, b: a * b, np.multiply)
MAX = ReduceOp("MAX", max, np.maximum)
MIN = ReduceOp("MIN", min, np.minimum)
LAND = ReduceOp("LAND", lambda a, b: bool(a) and bool(b), np.logical_and)
LOR = ReduceOp("LOR", lambda a, b: bool(a) or bool(b), np.logical_or)
BAND = ReduceOp("BAND", lambda a, b: a & b, np.bitwise_and)
BOR = ReduceOp("BOR", lambda a, b: a | b, np.bitwise_or)

#: value-with-location reductions operate on ``(value, location)`` pairs
MAXLOC = ReduceOp("MAXLOC", lambda a, b: a if a[0] >= b[0] else b)
MINLOC = ReduceOp("MINLOC", lambda a, b: a if a[0] <= b[0] else b)
