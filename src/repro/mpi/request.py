"""Nonblocking-communication request handles."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.kernel import SimKernel, SimProcess
from repro.sim.sync import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.communicator import Comm


class Request:
    """Handle for an in-flight ``isend``/``irecv`` operation.

    Completion is driven by a helper thread (a Marcel thread in the real
    runtime); :meth:`wait` blocks the owner rank until done.
    """

    def __init__(self, comm: "Comm"):
        self._comm = comm
        self._event = SimEvent(comm.kernel)
        self._value: Any = None
        self._error: Exception | None = None

    # -- completion (called by the helper thread) -------------------------
    def _complete(self, value: Any = None,
                  error: Exception | None = None) -> None:
        self._value = value
        self._error = error
        self._event.set()

    # -- user API ----------------------------------------------------------
    def test(self) -> bool:
        """Non-blocking completion check."""
        return self._event.is_set

    def wait(self) -> Any:
        """Block the owning rank until the operation completes.

        Returns the received object for ``irecv`` requests, None for
        sends.  Re-raises any transport error.
        """
        self._event.wait(self._comm.proc)
        if self._error is not None:
            raise self._error
        return self._value

    @staticmethod
    def waitall(requests: list["Request"]) -> list[Any]:
        """Wait on every request; returns their values in order."""
        return [r.wait() for r in requests]
