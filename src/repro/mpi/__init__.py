"""MPI on PadicoTM — a faithful MPICH/Madeleine-style implementation.

The paper ports MPICH/Madeleine onto PadicoTM "with very few changes";
we implement the MPI subset grid middleware actually needs, directly on
the Circuit abstraction, following the mpi4py API conventions the HPC
community expects:

- **lowercase** methods (``send``/``recv``/``bcast``...) communicate
  arbitrary Python objects by pickling them — convenient, but the
  serialisation copy costs CPU time on both sides (charged to the
  virtual clock);
- **uppercase** methods (``Send``/``Recv``/``Bcast``...) communicate
  numpy buffers on the zero-copy fast path (Madeleine DMA in the paper),
  which is how MPI reaches 240 MB/s in Figure 7.

Entry points: :func:`create_world` builds a world over PadicoTM
processes; :func:`spmd` runs one function per rank.
"""

from repro.mpi.cartesian import PROC_NULL, CartComm
from repro.mpi.coll import CollStats, CollTuning
from repro.mpi.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    MpiError,
    Status,
)
from repro.mpi.ops import BAND, BOR, LAND, LOR, MAX, MAXLOC, MIN, MINLOC, PROD, SUM
from repro.mpi.request import Request
from repro.mpi.world import MpiModule, World, create_world, spmd

__all__ = [
    "Comm",
    "CollTuning",
    "CollStats",
    "Status",
    "Request",
    "MpiError",
    "ANY_SOURCE",
    "PROC_NULL",
    "CartComm",
    "ANY_TAG",
    "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR",
    "MAXLOC", "MINLOC",
    "World",
    "create_world",
    "spmd",
    "MpiModule",
]
