"""Cartesian process topologies (MPI_Cart_create and friends).

Stencil-based SPMD codes — exactly the numerical kernels the paper's
coupling scenarios encapsulate — address neighbours through a Cartesian
view of the communicator.  :meth:`repro.mpi.communicator.Comm.Create_cart`
returns a :class:`CartComm` adding coordinate arithmetic and neighbour
shifts on top of the plain communicator."""

from __future__ import annotations

import math
from typing import Sequence

from repro.mpi.communicator import Comm, MpiError

#: rank value meaning "no neighbour" (non-periodic boundary)
PROC_NULL = -1


class CartComm(Comm):
    """A communicator with an attached Cartesian topology."""

    def __init__(self, circuit, group, rank, context,
                 dims: Sequence[int], periods: Sequence[bool],
                 tuning=None):
        super().__init__(circuit, group, rank, context, tuning=tuning)
        self.dims = list(dims)
        self.periods = list(periods)

    # -- coordinate arithmetic -------------------------------------------
    def Get_coords(self, rank: int) -> list[int]:
        """Row-major coordinates of ``rank``."""
        if not 0 <= rank < self.size:
            raise MpiError(f"rank {rank} out of range")
        coords = []
        remainder = rank
        for extent in reversed(self.dims):
            coords.append(remainder % extent)
            remainder //= extent
        return list(reversed(coords))

    @property
    def coords(self) -> list[int]:
        return self.Get_coords(self.rank)

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        """Rank at ``coords`` (periodic dimensions wrap; out-of-range on
        a non-periodic dimension returns :data:`PROC_NULL`)."""
        if len(coords) != len(self.dims):
            raise MpiError(f"expected {len(self.dims)} coordinates")
        normalised = []
        for c, extent, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                return PROC_NULL
            normalised.append(c)
        rank = 0
        for c, extent in zip(normalised, self.dims):
            rank = rank * extent + c
        return rank

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """``(source, dest)`` for a shift of ``disp`` along ``direction``
        — the ranks to receive from and send to in a halo exchange."""
        if not 0 <= direction < len(self.dims):
            raise MpiError(f"no dimension {direction}")
        here = self.coords
        up = list(here)
        up[direction] += disp
        down = list(here)
        down[direction] -= disp
        return self.Get_cart_rank(down), self.Get_cart_rank(up)

    def Get_topo(self) -> tuple[list[int], list[bool], list[int]]:
        return list(self.dims), list(self.periods), self.coords


def create_cart(comm: Comm, dims: Sequence[int],
                periods: Sequence[bool] | None = None) -> CartComm:
    """Build a Cartesian view over ``comm`` (collective).

    ``math.prod(dims)`` must equal the communicator size; ranks keep
    their identity (no reordering — the simulated network is uniform)."""
    dims = list(dims)
    if any(d < 1 for d in dims):
        raise MpiError(f"dimensions must be >= 1, got {dims}")
    if math.prod(dims) != comm.size:
        raise MpiError(
            f"grid {dims} has {math.prod(dims)} slots for "
            f"{comm.size} ranks")
    periods = list(periods) if periods is not None else [False] * len(dims)
    if len(periods) != len(dims):
        raise MpiError("periods must match dims in length")
    comm.allgather(0)  # synchronise the context generation
    ctx = f"{comm._context}/cart{comm._coll_seq}"
    cart = CartComm(comm._circuit, list(comm._group), comm.rank, ctx,
                    dims, periods, tuning=comm._tuning)
    cart.bind(comm.proc)
    return cart
