"""TraceRecorder: the attachable observability sink.

The recorder speaks two duck-typed hook surfaces at once:

* the **runtime monitor** protocol (``runtime.observe(recorder)``):
  every instrumented layer calls ``monitor.on_span_start`` /
  ``on_span_end`` / ``on_counter`` / ``on_flow_start`` / ... when a
  monitor is attached, and pays nothing when none is;
* the **kernel tracer** protocol (``kernel.attach_tracer``): the
  recorder counts context switches and fired events.

Attachment is handled by ``on_attach(runtime)`` / ``on_detach(runtime)``
— called by :meth:`PadicoRuntime.observe` / ``unobserve`` — which bind
the kernel clock and install/remove the kernel tracer.  A recorder can
also be used standalone against a bare kernel via ``bind(kernel)``.

Every hook is pure bookkeeping: no sleeps, no scheduling, no wall
clock.  Attaching a recorder therefore never perturbs the simulated
schedule — the run's result and final ``kernel.now`` are bit-for-bit
identical with and without it (enforced by the zero-perturbation
tests).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.spans import CounterSample, FlowRecord, Span


class TraceRecorder:
    """Collects spans, counters, gauges, flows and driver I/O totals."""

    def __init__(self, kernel: Any = None):
        self._kernel = kernel
        self.spans: list[Span] = []
        #: per-simulated-thread stacks of open span indices, keyed by
        #: id(SimProcess).  Lookup-only — never iterated for output, so
        #: id reuse or hash order cannot leak into the trace.
        self._stacks: dict[int, list[int]] = {}
        self.counters: dict[str, float] = {}
        self.counter_series: list[CounterSample] = []
        self.gauges: dict[str, float] = {}
        self.gauge_series: list[CounterSample] = []
        self.flows: dict[int, FlowRecord] = {}
        self._flow_order: list[int] = []
        #: (driver, direction) -> [calls, bytes]
        self.driver_io: dict[tuple[str, str], list[float]] = {}
        self.fabric_bytes: dict[str, float] = {}
        self.context_switches = 0
        self.events_fired = 0

    # -- attachment ---------------------------------------------------------
    def bind(self, kernel: Any) -> "TraceRecorder":
        """Bind the virtual clock without installing any hooks."""
        self._kernel = kernel
        return self

    def on_attach(self, runtime: Any) -> None:
        """Runtime attach hook: bind the kernel and trace its scheduler."""
        self._kernel = runtime.kernel
        runtime.kernel.attach_tracer(self)

    def on_detach(self, runtime: Any) -> None:
        runtime.kernel.detach_tracer(self)

    # -- clock / identity ---------------------------------------------------
    @property
    def now(self) -> float:
        return 0.0 if self._kernel is None else self._kernel.now

    def _where(self) -> tuple[Any, str, str]:
        """(current process, pid label, tid label) for span stamping."""
        proc = None if self._kernel is None else self._kernel.current
        if proc is None:
            return None, "sim", "main"
        owner = getattr(proc, "padico_process", None)
        pid = getattr(owner, "name", None) or "sim"
        return proc, pid, getattr(proc, "name", "?") or "?"

    # -- spans --------------------------------------------------------------
    def on_span_start(self, name: str, cat: str = "", **attrs: Any) -> Span:
        proc, pid, tid = self._where()
        stack = self._stacks.setdefault(id(proc), [])
        parent = stack[-1] if stack else None
        span = Span(index=len(self.spans), name=name, cat=cat,
                    pid=pid, tid=tid, start=self.now,
                    parent=parent, depth=len(stack), attrs=dict(attrs))
        self.spans.append(span)
        stack.append(span.index)
        return span

    def on_span_end(self, name: str, **attrs: Any) -> None:
        proc, _pid, _tid = self._where()
        stack = self._stacks.get(id(proc))
        if not stack:
            return
        # with try/finally discipline the top matches; tolerate skipped
        # ends by closing intermediates at the same instant
        while stack:
            span = self.spans[stack.pop()]
            span.end = self.now
            if span.name == name:
                span.attrs.update(attrs)
                return

    @contextmanager
    def span(self, name: str, cat: str = "app",
             **attrs: Any) -> Iterator[Span]:
        """``with recorder.span("phase"):`` — a manual user-level span."""
        opened = self.on_span_start(name, cat=cat, **attrs)
        try:
            yield opened
        finally:
            self.on_span_end(name)

    # -- counters / gauges --------------------------------------------------
    def counter(self, name: str, delta: float = 1.0) -> float:
        """Bump a cumulative counter; returns the new value."""
        value = self.counters.get(name, 0.0) + delta
        self.counters[name] = value
        self.counter_series.append(CounterSample(self.now, name, value))
        return value

    # hook-surface alias so instrumentation sites read uniformly
    on_counter = counter

    def gauge(self, name: str, value: float) -> None:
        """Record the current value of a point-in-time quantity."""
        self.gauges[name] = value
        self.gauge_series.append(CounterSample(self.now, name, value))

    on_gauge = gauge

    # -- network flows ------------------------------------------------------
    def on_flow_start(self, fid: int, src: str, dst: str, nbytes: float,
                      fabric: str) -> None:
        self.flows[fid] = FlowRecord(fid, src, dst, nbytes, fabric,
                                     start=self.now)
        self._flow_order.append(fid)

    def on_flow_end(self, fid: int, ok: bool = True,
                    progress: float = 1.0) -> None:
        rec = self.flows.get(fid)
        if rec is None:
            return
        self.flows[fid] = FlowRecord(rec.fid, rec.src, rec.dst, rec.nbytes,
                                     rec.fabric, rec.start,
                                     end=self.now, ok=ok, progress=progress)
        if ok:
            total = self.fabric_bytes.get(rec.fabric, 0.0) + rec.nbytes
            self.fabric_bytes[rec.fabric] = total

    def flow_records(self) -> list[FlowRecord]:
        return [self.flows[fid] for fid in self._flow_order]

    # -- driver I/O ---------------------------------------------------------
    def on_driver_io(self, driver: str, direction: str,
                     nbytes: float) -> None:
        cell = self.driver_io.setdefault((driver, direction), [0.0, 0.0])
        cell[0] += 1
        cell[1] += nbytes

    # -- kernel tracer hooks ------------------------------------------------
    # the kernel calls the full surface on a lone tracer, so the unused
    # hooks exist as no-ops
    def on_fire(self, timer: Any) -> None:
        self.events_fired += 1

    def on_switch(self, proc: Any) -> None:
        self.context_switches += 1

    def on_schedule(self, timer: Any) -> None:
        pass

    def on_exit(self, proc: Any) -> None:
        pass

    def on_join(self, proc: Any, target: Any) -> None:
        pass

    def hb_release(self, obj: Any) -> None:
        pass

    def hb_acquire(self, obj: Any) -> None:
        pass

    # -- inspection ---------------------------------------------------------
    def closed_spans(self) -> list[Span]:
        return [s for s in self.spans if s.closed]

    def roots(self) -> list[Span]:
        return [s for s in self.spans if s.parent is None]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent == span.index]

    def render_tree(self) -> str:
        """Indented text rendering of the span forest (tests, REPL)."""
        lines: list[str] = []

        def walk(span: Span) -> None:
            lines.append(span.render())
            for child in self.children(span):
                walk(child)

        for root in self.roots():
            walk(root)
        return "\n".join(lines)
