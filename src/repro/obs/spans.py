"""The span model: one timed region of simulated work.

A :class:`Span` is a ``[start, end]`` interval on the *virtual* clock
(``kernel.now``), tagged with the process/thread that executed it and an
arbitrary attribute dict.  Spans form a forest: each span remembers the
span that was open on the same simulated thread when it started, so a
single CORBA call renders as personality → abstraction → arbitration →
link nesting without any of the layers knowing about each other.

Everything here is deterministic bookkeeping — no wall clock, no
randomness, no I/O.  Timestamps are whatever the simulation kernel says
they are, which is the whole point: two runs of the same scenario
produce byte-identical traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class Span:
    """One timed region of simulated work.

    ``index`` is the span's position in the recorder's start-ordered
    list and doubles as its stable id; ``parent`` is the index of the
    enclosing span on the same simulated thread (or ``None`` for a
    root).  ``end`` stays ``None`` while the span is open.
    """

    index: int
    name: str
    cat: str
    pid: str
    tid: str
    start: float
    end: float | None = None
    parent: int | None = None
    depth: int = 0
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated seconds spent in this span (0.0 while open)."""
        return 0.0 if self.end is None else self.end - self.start

    def render(self) -> str:
        state = f"{self.duration:.9f}s" if self.closed else "open"
        return (f"{'  ' * self.depth}{self.name} [{self.cat}] "
                f"{self.pid}/{self.tid} {state}")


@dataclass(frozen=True)
class CounterSample:
    """One point of a cumulative counter or gauge time-series."""

    time: float
    name: str
    value: float


@dataclass(frozen=True)
class FlowRecord:
    """One FlowNetwork flow, as an async begin/end pair.

    Flows are not spans: they start in the sending process but finish in
    a kernel completion callback, so they carry no thread identity and
    export as Chrome async ("b"/"e") events instead.
    """

    fid: int
    src: str
    dst: str
    nbytes: float
    fabric: str
    start: float
    end: float | None = None
    ok: bool = True
    #: fraction transferred when the flow ended (1.0 unless aborted)
    progress: float = 1.0
