"""repro.obs — deterministic observability for the PadicoTM simulation.

Spans, counters and flows stamped with the *virtual* clock
(``kernel.now``), recorded by a :class:`TraceRecorder` attached through
``runtime.observe(recorder)`` or ``with runtime.trace() as tr:``, and
exported as Chrome ``trace_event`` JSON (:func:`write_chrome_trace`), a
flat metrics dict (:func:`metrics`) or bench documents
(:class:`BenchResult`, :func:`write_bench_json`).

Zero perturbation when uninstalled: every instrumentation site in the
stack guards on ``monitor is not None``, so a run with no recorder
attached executes exactly the pre-instrumentation schedule.
"""

from repro.obs.bench import (BENCH_SCHEMA, WALLCLOCK_SCHEMA, BenchResult,
                             BenchSchemaError, bench_document,
                             validate_bench_doc, write_bench_json)
from repro.obs.export import chrome_trace, metrics, write_chrome_trace
from repro.obs.recorder import TraceRecorder
from repro.obs.spans import CounterSample, FlowRecord, Span

__all__ = [
    "BENCH_SCHEMA",
    "WALLCLOCK_SCHEMA",
    "BenchResult",
    "BenchSchemaError",
    "CounterSample",
    "FlowRecord",
    "Span",
    "TraceRecorder",
    "bench_document",
    "chrome_trace",
    "metrics",
    "validate_bench_doc",
    "write_bench_json",
    "write_chrome_trace",
]
