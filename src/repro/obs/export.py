"""Exporters: Chrome ``trace_event`` JSON and a flat metrics dict.

The Chrome format (load the file in ``chrome://tracing`` or Perfetto)
wants microsecond timestamps and integer pid/tid; we map process and
thread *names* to small integers in order of first appearance, which is
deterministic because the span list is start-ordered.  Each "X" event
carries ``span``/``parent`` indices in its ``args`` so downstream tools
(the ``padico-trace`` CLI) can rebuild the exact tree without guessing
from timestamps.

Everything serialises with ``sort_keys=True`` — a trace of a
deterministic run is itself byte-deterministic.
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.recorder import TraceRecorder

#: synthetic process labels for events with no simulated thread
_METRICS_PID = "metrics"
_NET_PID = "net"


def _us(t: float) -> float:
    """Virtual seconds → trace microseconds, stable across platforms."""
    return round(t * 1e6, 3)


class _IdMap:
    """Name → small int, allocated in first-appearance order."""

    def __init__(self) -> None:
        self._ids: dict[Any, int] = {}

    def __getitem__(self, key: Any) -> int:
        got = self._ids.get(key)
        if got is None:
            got = len(self._ids) + 1
            self._ids[key] = got
        return got

    def items(self) -> list[tuple[Any, int]]:
        return list(self._ids.items())


def chrome_trace(recorder: TraceRecorder) -> dict[str, Any]:
    """The full trace document as a plain dict (see module docstring)."""
    pids = _IdMap()
    tids = _IdMap()
    events: list[dict[str, Any]] = []

    for span in recorder.closed_spans():
        pid = pids[span.pid]
        tid = tids[(span.pid, span.tid)]
        args = dict(span.attrs)
        args["span"] = span.index
        if span.parent is not None:
            args["parent"] = span.parent
        events.append({
            "ph": "X", "name": span.name, "cat": span.cat or "app",
            "ts": _us(span.start), "dur": _us(span.duration),
            "pid": pid, "tid": tid, "args": args,
        })

    for rec in recorder.flow_records():
        if rec.end is None:
            continue
        pid = pids[_NET_PID]
        tid = tids[(_NET_PID, rec.fabric)]
        name = f"{rec.src}->{rec.dst}"
        common = {"cat": "net.flow", "id": rec.fid, "pid": pid, "tid": tid}
        events.append({"ph": "b", "name": name, "ts": _us(rec.start),
                       "args": {"nbytes": rec.nbytes, "fabric": rec.fabric},
                       **common})
        # aborted flows carry how far they got; successful ones stay
        # two-key so previously committed traces remain byte-identical
        end_args = ({"ok": rec.ok} if rec.ok
                    else {"ok": rec.ok, "progress": rec.progress})
        events.append({"ph": "e", "name": name, "ts": _us(rec.end),
                       "args": end_args, **common})

    pid = pids[_METRICS_PID] if recorder.counter_series else None
    for sample in recorder.counter_series:
        events.append({
            "ph": "C", "name": sample.name, "ts": _us(sample.time),
            "pid": pid, "tid": 0, "args": {"value": sample.value},
        })

    # metadata events name the integer pids/tids for the viewer
    meta_events: list[dict[str, Any]] = []
    for name, pid in pids.items():
        meta_events.append({"ph": "M", "name": "process_name", "pid": pid,
                            "tid": 0, "args": {"name": name}})
    for (pname, tname), tid in tids.items():
        meta_events.append({"ph": "M", "name": "thread_name",
                            "pid": pids[pname], "tid": tid,
                            "args": {"name": tname}})

    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
        "otherData": {"padicoMetrics": metrics(recorder),
                      "schema": "padico-trace/1"},
    }


def write_chrome_trace(recorder: TraceRecorder, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(recorder), fh, sort_keys=True, indent=1)
        fh.write("\n")


def metrics(recorder: TraceRecorder) -> dict[str, Any]:
    """Flat, JSON-ready roll-up of everything the recorder saw."""
    span_agg: dict[str, dict[str, float]] = {}
    for span in recorder.closed_spans():
        cell = span_agg.setdefault(span.name, {"count": 0, "total": 0.0})
        cell["count"] += 1
        cell["total"] += span.duration
    driver = {f"{drv}.{direction}": {"calls": calls, "bytes": nbytes}
              for (drv, direction), (calls, nbytes)
              in sorted(recorder.driver_io.items())}
    return {
        "spans": {name: span_agg[name] for name in sorted(span_agg)},
        "counters": {k: recorder.counters[k]
                     for k in sorted(recorder.counters)},
        "gauges": {k: recorder.gauges[k] for k in sorted(recorder.gauges)},
        "driver_io": driver,
        "fabric_bytes": {k: recorder.fabric_bytes[k]
                         for k in sorted(recorder.fabric_bytes)},
        "context_switches": recorder.context_switches,
        "events_fired": recorder.events_fired,
        "flows": len(recorder.flows),
    }
