"""BenchResult: the uniform shape every benchmark returns.

``benchmarks/harness.py`` used to hand back ad-hoc dicts — a
``{size: seconds}`` here, a ``{"corba": mbps, "mpi": mbps}`` there —
that never landed anywhere durable.  A :class:`BenchResult` is a frozen
(x, value) point series with a unit and free-form metadata, read like a
mapping (``result[1024]``, ``result.values()``) and serialised with
:meth:`to_json`.  A set of results rolls up into a ``padico-bench/1``
document (``BENCH_padico.json``) via :func:`bench_document`, and
:func:`validate_bench_doc` is the schema gate CI runs against it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

BENCH_SCHEMA = "padico-bench/1"
#: wall-clock series (benchmarks/wallclock.py) share the envelope but
#: carry a distinct schema tag: their numbers vary across machines, so
#: they must never be confused with the byte-reproducible virtual-time
#: document
WALLCLOCK_SCHEMA = "padico-wallclock/1"


@dataclass(frozen=True)
class BenchResult:
    """One benchmark series: ordered (x, value) points plus a unit.

    ``x`` is whatever the series varies over — a message size, a node
    count, or a label like ``"corba"`` for categorical comparisons.
    """

    name: str
    unit: str
    points: tuple[tuple[Any, float], ...]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "points",
                           tuple((x, float(v)) for x, v in self.points))

    # -- mapping-style access ----------------------------------------------
    def __getitem__(self, x: Any) -> float:
        for px, value in self.points:
            if px == x:
                return value
        raise KeyError(x)

    def __contains__(self, x: Any) -> bool:
        return any(px == x for px, _v in self.points)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.xs)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def xs(self) -> tuple[Any, ...]:
        return tuple(x for x, _v in self.points)

    def values(self) -> tuple[float, ...]:
        return tuple(v for _x, v in self.points)

    def items(self) -> tuple[tuple[Any, float], ...]:
        return self.points

    # -- serialisation ------------------------------------------------------
    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "unit": self.unit,
            "points": [[x, v] for x, v in self.points],
            "meta": {k: self.meta[k] for k in sorted(self.meta)},
        }

    @classmethod
    def from_json(cls, doc: Mapping[str, Any]) -> "BenchResult":
        return cls(name=doc["name"], unit=doc["unit"],
                   points=tuple((x, v) for x, v in doc["points"]),
                   meta=dict(doc.get("meta", {})))

    def render(self) -> str:
        pts = ", ".join(f"{x}={v:g}" for x, v in self.points)
        return f"{self.name} [{self.unit}]: {pts}"


def bench_document(results: list[BenchResult],
                   meta: Mapping[str, Any] | None = None,
                   schema: str = BENCH_SCHEMA) -> dict[str, Any]:
    """Wrap results in a bench envelope (``padico-bench/1`` by default)."""
    return {
        "schema": schema,
        "meta": {k: meta[k] for k in sorted(meta)} if meta else {},
        "results": [r.to_json() for r in results],
    }


def write_bench_json(path: str, results: list[BenchResult],
                     meta: Mapping[str, Any] | None = None,
                     schema: str = BENCH_SCHEMA) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench_document(results, meta, schema=schema), fh,
                  sort_keys=True, indent=1)
        fh.write("\n")


class BenchSchemaError(ValueError):
    """The document does not conform to ``padico-bench/1``."""


def _fail(msg: str) -> None:
    raise BenchSchemaError(msg)


def validate_bench_doc(doc: Any, schema: str = BENCH_SCHEMA) -> list[str]:
    """Validate a loaded BENCH document; returns the result names.

    Hand-rolled on purpose: the container ships no jsonschema and the
    envelope is four keys deep.
    """
    if not isinstance(doc, dict):
        _fail(f"document must be an object, got {type(doc).__name__}")
    if doc.get("schema") != schema:
        _fail(f"schema must be {schema!r}, got {doc.get('schema')!r}")
    if not isinstance(doc.get("meta"), dict):
        _fail("meta must be an object")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        _fail("results must be a non-empty list")
    names: list[str] = []
    for i, entry in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(entry, dict):
            _fail(f"{where} must be an object")
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            _fail(f"{where}.name must be a non-empty string")
        if not isinstance(entry.get("unit"), str):
            _fail(f"{where}.unit must be a string")
        if not isinstance(entry.get("meta", {}), dict):
            _fail(f"{where}.meta must be an object")
        points = entry.get("points")
        if not isinstance(points, list) or not points:
            _fail(f"{where}.points must be a non-empty list")
        for j, point in enumerate(points):
            if (not isinstance(point, list)) or len(point) != 2:
                _fail(f"{where}.points[{j}] must be an [x, value] pair")
            if not isinstance(point[1], (int, float)) \
                    or isinstance(point[1], bool):
                _fail(f"{where}.points[{j}][1] must be a number")
        names.append(name)
    return names
