"""ORB implementation profiles.

The paper benchmarks four C++ ORBs over PadicoTM (Figure 7 + §4.4
latency numbers).  We run one ORB core under four *profiles* whose cost
constants are calibrated to the paper's observations:

============  ===========  ==============  =================
ORB           marshalling  one-way latency peak bandwidth
============  ===========  ==============  =================
omniORB 3     zero-copy    20 µs           240 MB/s (96 %)
omniORB 4     zero-copy    ~19 µs          240 MB/s
ORBacus 4.0   copying      54 µs           63 MB/s
Mico 2.3      copying      62 µs           55 MB/s
============  ===========  ==============  =================

Latency decomposition (one-way, empty request over Myrinet):
``client_overhead + 11 µs PadicoTM/Madeleine wire path +
server_overhead``.  Peak bandwidth decomposition: the copying ORBs add
``copy_cost_per_byte`` serial CPU seconds per byte on *each* side
(marshal at the client, unmarshal at the server), so throughput
saturates at ``1 / (2·copy_cost + 1/240e6)`` — 7.0 ns/B yields Mico's
55 MB/s, 5.85 ns/B yields ORBacus' 63 MB/s."""

from __future__ import annotations

from dataclasses import dataclass

from repro.padicotm.modules import PadicoModule


@dataclass(frozen=True)
class OrbProfile:
    """Cost model of one ORB product."""

    name: str
    version: str
    zero_copy: bool
    client_overhead: float        # per-invocation client CPU, seconds
    server_overhead: float        # per-invocation server CPU, seconds
    copy_cost_per_byte: float     # marshalling copy cost, s/B per side
    collocated_overhead: float = 2.0e-6  # same-process short-circuit
    #: Madeleine-style eager/rendezvous cutover for zero-copy ORBs:
    #: bulk values below this many bytes are copied into the contiguous
    #: message (eager), larger ones ride as reference segments
    #: (rendezvous).  Mirrors cdr.ZERO_COPY_THRESHOLD; only consulted
    #: when ``zero_copy`` is true.
    rendezvous_threshold: int = 256

    @property
    def key(self) -> str:
        return f"{self.name}-{self.version}"

    def marshal_cost(self, copied_bytes: float) -> float:
        return copied_bytes * self.copy_cost_per_byte

    def unmarshal_cost(self, nbytes: float) -> float:
        # copying ORBs copy the whole message again on the way up
        return 0.0 if self.zero_copy else nbytes * self.copy_cost_per_byte


#: AT&T omniORB 3.0.2 — zero-copy marshalling, the paper's fast ORB.
OMNIORB3 = OrbProfile("omniORB", "3.0.2", zero_copy=True,
                      client_overhead=5.0e-6, server_overhead=4.0e-6,
                      copy_cost_per_byte=0.0)

#: omniORB 4.0.0 — slightly leaner call path.
OMNIORB4 = OrbProfile("omniORB", "4.0.0", zero_copy=True,
                      client_overhead=4.5e-6, server_overhead=3.5e-6,
                      copy_cost_per_byte=0.0)

#: Mico 2.3.7 — always copies on marshal and unmarshal.
MICO = OrbProfile("Mico", "2.3.7", zero_copy=False,
                  client_overhead=26.0e-6, server_overhead=25.0e-6,
                  copy_cost_per_byte=7.0e-9)

#: ORBacus 4.0.5 — copying, but a little faster than Mico.
ORBACUS = OrbProfile("ORBacus", "4.0.5", zero_copy=False,
                     client_overhead=22.0e-6, server_overhead=21.0e-6,
                     copy_cost_per_byte=5.85e-9)

#: OpenCCM's Java ORB stack (§4.4 Fast-Ethernet text: GridCCM on
#: OpenCCM scales 8.3 → 66.4 MB/s vs MicoCCM's 9.8 → 78.4): JVM-era
#: marshalling costs roughly double Mico's per-byte copy price.
OPENCCM_JAVA = OrbProfile("OpenCCM", "0.4-java", zero_copy=False,
                          client_overhead=45.0e-6,
                          server_overhead=45.0e-6,
                          copy_cost_per_byte=1.3e-8)

ALL_PROFILES = (OMNIORB3, OMNIORB4, MICO, ORBACUS, OPENCCM_JAVA)


class OrbModule(PadicoModule):
    """A CORBA ORB as a dynamically loadable PadicoTM module.

    The paper emphasises that the C++ ORBs run on PadicoTM *unmodified*
    thanks to link-stage wrappers; accordingly the module only declares
    the pthread policy the product was built against and lets PadicoTM
    adapt it to Marcel."""

    thread_policy = "pthread"

    def __init__(self, profile: OrbProfile):
        self.profile = profile
        self.name = f"corba/{profile.key}"
