"""Interoperable Object References.

Our IOR carries what GIOP needs to reach a servant on the simulated
grid: the repository id, the PadicoTM process name (standing in for
host+port of an IIOP profile) and the POA object key.  The stringified
form mirrors ``corbaloc``."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class IOR:
    """Wire-level object reference."""

    type_id: str       # repository id, e.g. IDL:Demo/Adder:1.0
    process: str       # PadicoTM process name (transport address)
    port: str          # VLink port the ORB listens on
    object_key: str    # POA object key

    def __post_init__(self) -> None:
        for field_name in ("process", "port", "object_key"):
            value = getattr(self, field_name)
            if ":" in value or "/" in value or "#" in value:
                raise ValueError(
                    f"IOR {field_name} {value!r} may not contain ':', '/' "
                    f"or '#' (corbaloc delimiters)")

    def stringify(self) -> str:
        return (f"corbaloc:padico:{self.process}:{self.port}/"
                f"{self.object_key}#{self.type_id}")

    @classmethod
    def destringify(cls, text: str) -> "IOR":
        if not text.startswith("corbaloc:padico:"):
            raise ValueError(f"not a padico corbaloc: {text!r}")
        rest = text[len("corbaloc:padico:"):]
        addr, _, anchor = rest.partition("#")
        location, _, object_key = addr.partition("/")
        process, _, port = location.rpartition(":")
        if not (process and port and object_key and anchor):
            raise ValueError(f"malformed corbaloc: {text!r}")
        return cls(anchor, process, port, object_key)
