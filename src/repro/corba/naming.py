"""CORBA Naming Service (CosNaming subset).

The paper's CCM deployment model needs a way for components spread over
the grid to find each other; the standard CORBA answer is the Naming
Service.  Ours is an ordinary servant defined in our own IDL (below) and
hosted by any ORB — which also exercises the full stub/skeleton path in
every test that uses it."""

from __future__ import annotations

from repro.corba.idl.compiler import CompiledIdl, compile_idl
from repro.corba.orb import ObjectRef, Orb

NAMING_IDL = """
module CosNaming {
    exception NotFound { string name; };
    exception AlreadyBound { string name; };

    interface NamingContext {
        void bind(in string name, in Object obj) raises (AlreadyBound);
        void rebind(in string name, in Object obj);
        Object resolve(in string name) raises (NotFound);
        void unbind(in string name) raises (NotFound);
        sequence<string> list();
    };
};
"""

_naming_idl_cache: CompiledIdl | None = None


def naming_idl() -> CompiledIdl:
    """The compiled CosNaming IDL (shared, immutable)."""
    global _naming_idl_cache
    if _naming_idl_cache is None:
        _naming_idl_cache = compile_idl(NAMING_IDL)
    return _naming_idl_cache


class NamingService:
    """Server side: host a NamingContext servant on an ORB."""

    OBJECT_KEY = "NameService"

    def __init__(self, orb: Orb):
        if "CosNaming::NamingContext" not in orb.idl.interfaces:
            orb.idl.merge(compile_idl(NAMING_IDL))
        self.orb = orb
        idl = orb.idl
        not_found = idl.type("CosNaming::NotFound")
        already_bound = idl.type("CosNaming::AlreadyBound")
        base = orb.servant_base("CosNaming::NamingContext")
        bindings: dict[str, ObjectRef] = {}

        class _NamingServant(base):  # type: ignore[misc, valid-type]
            def bind(self, name: str, obj: ObjectRef) -> None:
                if name in bindings:
                    raise already_bound.make(name=name)
                bindings[name] = obj

            def rebind(self, name: str, obj: ObjectRef) -> None:
                bindings[name] = obj

            def resolve(self, name: str) -> ObjectRef:
                try:
                    return bindings[name]
                except KeyError:
                    raise not_found.make(name=name) from None

            def unbind(self, name: str) -> None:
                if name not in bindings:
                    raise not_found.make(name=name)
                del bindings[name]

            def list(self) -> list[str]:
                return sorted(bindings)

        self.bindings = bindings
        self.ref = orb.poa.activate_object(_NamingServant(),
                                           key=self.OBJECT_KEY)

    @property
    def url(self) -> str:
        return self.orb.object_to_string(self.ref)


class NamingContext:
    """Client-side convenience wrapper over a NamingContext reference."""

    def __init__(self, orb: Orb, url: str):
        if "CosNaming::NamingContext" not in orb.idl.interfaces:
            orb.idl.merge(compile_idl(NAMING_IDL))
        ref = orb.string_to_object(url)
        self._ctx = orb.narrow(ref, "CosNaming::NamingContext")
        self.orb = orb

    def bind(self, name: str, obj: ObjectRef) -> None:
        self._ctx.bind(name, obj)

    def rebind(self, name: str, obj: ObjectRef) -> None:
        self._ctx.rebind(name, obj)

    def resolve(self, name: str) -> ObjectRef:
        return self._ctx.resolve(name)

    def unbind(self, name: str) -> None:
        self._ctx.unbind(name)

    def list(self) -> list[str]:
        return self._ctx.list()
